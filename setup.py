"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` also works on minimal/offline environments whose
setuptools lacks the PEP 660 editable-wheel path (no ``wheel`` package):
pip falls back to the legacy ``setup.py develop`` route.
"""

from setuptools import setup

setup()
