"""Tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.opcodes import Opcode
from repro.isa.program import DATA_BASE, TEXT_BASE


class TestBasicParsing:
    def test_addresses_sequential(self):
        p = assemble("""
    .text
main:
    nop
    nop
    halt
""")
        assert [i.address for i in p.instructions] == [
            TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8
        ]

    def test_comments_stripped(self):
        p = assemble("""
    .text
main:
    add r1, r2, r3   ; semicolon comment
    halt             # hash comment
""")
        assert len(p) == 2

    def test_immediate_with_hash(self):
        p = assemble("""
    .text
main:
    add r1, #-42, r3
    halt
""")
        instr = p.instructions[0]
        assert instr.sources[1].imm == -42

    def test_register_aliases(self):
        p = assemble("""
    .text
main:
    add zero, sp, r1
    halt
""")
        instr = p.instructions[0]
        assert instr.sources[0].reg == 31
        assert instr.sources[1].reg == 30

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble(".text\nmain:\n    frobnicate r1, r2, r3\n")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="bad register"):
            assemble(".text\nmain:\n    add r1, r99, r3\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble(".text\nmain:\n    add r1, r2\n")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble(".text\nmain:\n    br nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble(".text\na:\n    nop\na:\n    halt\n")

    def test_instruction_outside_text(self):
        with pytest.raises(AssemblyError, match="outside .text"):
            assemble(".data\n    add r1, r2, r3\n")


class TestOperands:
    def test_mem_displacement(self):
        p = assemble(".text\nmain:\n    ldq r1, 16(r2)\n    halt\n")
        instr = p.instructions[0]
        assert instr.imm == 16
        assert instr.sources[0].reg == 2
        assert instr.dest == 1

    def test_store_operand_order(self):
        p = assemble(".text\nmain:\n    stq r5, 8(r6)\n    halt\n")
        instr = p.instructions[0]
        assert instr.dest is None
        assert [op.reg for op in instr.sources] == [5, 6]  # data, base

    def test_bare_label_as_address(self):
        p = assemble("""
    .data
buf:    .quad 7
    .text
main:
    lda r1, buf
    halt
""")
        instr = p.instructions[0]
        assert instr.imm == DATA_BASE
        assert instr.sources[0].reg == 31

    def test_label_with_base(self):
        p = assemble("""
    .data
buf:    .quad 7
    .text
main:
    ldq r1, buf(r2)
    halt
""")
        assert p.instructions[0].imm == DATA_BASE

    def test_mov_expansion(self):
        p = assemble(".text\nmain:\n    mov r3, r4\n    halt\n")
        instr = p.instructions[0]
        assert instr.opcode is Opcode.BIS
        assert [op.reg for op in instr.sources] == [3, 3]
        assert instr.dest == 4

    def test_cmov_has_dest_as_source(self):
        p = assemble(".text\nmain:\n    cmoveq r1, r2, r3\n    halt\n")
        instr = p.instructions[0]
        assert [op.reg for op in instr.sources] == [1, 2, 3]

    def test_jmp_parses_parenthesized_register(self):
        p = assemble(".text\nmain:\n    jmp (r7)\n    halt\n")
        assert p.instructions[0].sources[0].reg == 7

    def test_jmp_rejects_bare_register(self):
        with pytest.raises(AssemblyError):
            assemble(".text\nmain:\n    jmp r7\n")

    def test_jsr_writes_ra(self):
        p = assemble(".text\nmain:\n    jsr f\nf:\n    ret\n")
        assert p.instructions[0].dest == 26
        assert p.instructions[0].target == TEXT_BASE + 4
        # ret implicitly reads ra
        assert p.instructions[1].sources[0].reg == 26

    def test_branch_target_resolved(self):
        p = assemble(".text\nmain:\n    beq r1, done\ndone:\n    halt\n")
        assert p.instructions[0].target == TEXT_BASE + 4


class TestDataSection:
    def test_quad_values(self):
        p = assemble(".data\nx: .quad 1, 2, -1\n.text\nmain:\n    halt\n")
        assert p.data[:8] == (1).to_bytes(8, "little")
        assert p.data[16:24] == (2**64 - 1).to_bytes(8, "little")

    def test_quad_label_fixup(self):
        p = assemble("""
    .data
ptr:    .quad target
target: .quad 99
    .text
main:
    halt
""")
        stored = int.from_bytes(p.data[:8], "little")
        assert stored == DATA_BASE + 8

    def test_space_and_align(self):
        p = assemble(".data\n    .space 3\n    .align 8\nx: .byte 1\n.text\nmain:\n    halt\n")
        assert p.labels["x"] == DATA_BASE + 8

    def test_long_and_byte(self):
        p = assemble(".data\n    .long 258\n    .byte 5\n.text\nmain:\n    halt\n")
        assert p.data[:4] == (258).to_bytes(4, "little")
        assert p.data[4] == 5

    def test_bad_space(self):
        with pytest.raises(AssemblyError):
            assemble(".data\n  .space nope\n.text\nmain:\n    halt\n")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".data\n  .wibble 3\n.text\nmain:\n    halt\n")


class TestProgramContainer:
    def test_entry_is_main(self):
        p = assemble(".text\nstart:\n    nop\nmain:\n    halt\n")
        assert p.entry == TEXT_BASE + 4

    def test_entry_defaults_to_text_base(self):
        p = assemble(".text\nbegin:\n    halt\n")
        assert p.entry == TEXT_BASE

    def test_at_lookup(self):
        p = assemble(".text\nmain:\n    nop\n    halt\n")
        assert p.at(TEXT_BASE).opcode is Opcode.NOP
        assert p.at(TEXT_BASE + 100) is None

    def test_label_address_error(self):
        p = assemble(".text\nmain:\n    halt\n")
        with pytest.raises(KeyError):
            p.label_address("nope")


class TestProgramBuilder:
    def test_builds_through_the_two_pass_assembler(self):
        from repro.isa.assembler import ProgramBuilder

        pb = ProgramBuilder("built")
        pb.label("main")
        pb.emit("lda", "r1", "table")
        pb.comment("dependent add chain")
        pb.emit("add", "r1", "#1", "r2")
        skip = pb.fresh_label("skip")
        pb.emit("beq", "r2", skip)
        pb.emit("add", "r2", "r2", "r3")
        pb.label(skip)
        pb.emit("halt")
        pb.data_label("table")
        pb.quad(1, 2, 3)
        pb.space(8)
        program = pb.build()
        assert program.name == "built"
        assert len(program.instructions) == 5
        assert program.data[:8] == (1).to_bytes(8, "little")
        assert len(program.data) == 3 * 8 + 8

    def test_fresh_labels_are_unique(self):
        from repro.isa.assembler import ProgramBuilder

        pb = ProgramBuilder()
        names = {pb.fresh_label("loop") for _ in range(5)}
        assert len(names) == 5

    def test_bad_label_rejected(self):
        from repro.isa.assembler import ProgramBuilder

        pb = ProgramBuilder()
        with pytest.raises(AssemblyError):
            pb.label("1bad label")
