"""Assembler round-trip property: encode → decode → re-encode is a fixpoint.

A :class:`Program` carries everything needed to regenerate assembly
source — each instruction keeps its original statement text, labels keep
their resolved addresses, and the data image is plain bytes.  Rendering
that source and assembling it again must reproduce the program exactly
(and the rendering itself must be a fixpoint), over programs fuzzed
through :class:`ProgramBuilder` by every profile of the random-program
generator.  This pins the encoder and decoder against each other: a
change that shifts encoding (operand order, displacement handling, label
resolution) breaks the fixpoint even if both directions stay
individually self-consistent.
"""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.isa.program import INSTRUCTION_BYTES, Program
from repro.verify.fuzz import PROFILES, build_fuzz, fuzz_name

SEEDS = [0, 1, 7, 42]

CASES = [(profile, seed) for profile in sorted(PROFILES) for seed in SEEDS]


def render_program(program: Program) -> str:
    """Regenerate assembly source from an assembled program."""
    text_labels: dict[int, list[str]] = {}
    data_labels: dict[int, list[str]] = {}
    for name, address in program.labels.items():
        if address >= program.data_base:
            data_labels.setdefault(address - program.data_base, []).append(name)
        else:
            text_labels.setdefault(address, []).append(name)

    lines = ["    .text"]
    for instruction in program.instructions:
        for name in sorted(text_labels.pop(instruction.address, [])):
            lines.append(f"{name}:")
        lines.append(f"    {instruction.text}")
    for address in sorted(text_labels):  # labels at/after text end
        for name in sorted(text_labels[address]):
            lines.append(f"{name}:")

    if program.data or data_labels:
        lines.append("    .data")
        cuts = sorted(set(data_labels) | {0, len(program.data)})
        for start, end in zip(cuts, cuts[1:] + [len(program.data)]):
            for name in sorted(data_labels.get(start, [])):
                lines.append(f"{name}:")
            chunk = program.data[start:end]
            for offset in range(0, len(chunk), 16):
                row = chunk[offset:offset + 16]
                lines.append("    .byte " + ", ".join(str(b) for b in row))
    return "\n".join(lines) + "\n"


def assert_programs_identical(left: Program, right: Program) -> None:
    assert len(left.instructions) == len(right.instructions)
    for a, b in zip(left.instructions, right.instructions):
        assert a.address == b.address, (a, b)
        assert a.opcode == b.opcode, (a, b)
        assert a.dest == b.dest, (a, b)
        assert a.sources == b.sources, (a, b)
        assert a.imm == b.imm, (a, b)
        assert a.target == b.target, (a, b)
    assert left.labels == right.labels
    assert left.data == right.data
    assert left.data_base == right.data_base
    assert left.entry == right.entry


@pytest.mark.parametrize("profile, seed", CASES, ids=[f"{p}-{s}" for p, s in CASES])
def test_fuzzed_program_round_trips(profile, seed):
    program = build_fuzz(fuzz_name(profile, seed))
    rendered = render_program(program)
    decoded = assemble(rendered, program.name)
    assert_programs_identical(program, decoded)
    # Fixpoint: re-rendering the re-assembled program changes nothing.
    assert render_program(decoded) == rendered


@pytest.mark.parametrize("kernel", ["ijpeg", "li", "compress", "mcf", "crafty"])
def test_suite_kernels_round_trip(kernel):
    from repro.workloads.suite import build

    program = build(kernel)
    decoded = assemble(render_program(program), program.name)
    assert_programs_identical(program, decoded)
    assert render_program(decoded) == render_program(program)


def test_round_trip_catches_a_shifted_displacement():
    """The fixpoint is a real oracle: a perturbed program fails it."""
    program = build_fuzz(fuzz_name("memory", 3))
    rendered = render_program(program)
    decoded = assemble(rendered, program.name)
    victim = next(
        instr for instr in decoded.instructions if instr.imm not in (None, 0)
    )
    import dataclasses

    mutated = dataclasses.replace(
        victim, imm=victim.imm + INSTRUCTION_BYTES,
        text=victim.text,  # text unchanged: the drift is in the decode
    )
    tampered = Program(
        instructions=[
            mutated if instr is victim else instr for instr in decoded.instructions
        ],
        labels=dict(decoded.labels),
        data=decoded.data,
        data_base=decoded.data_base,
        entry=decoded.entry,
        name=decoded.name,
    )
    with pytest.raises(AssertionError):
        assert_programs_identical(program, tampered)
