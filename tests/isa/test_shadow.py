"""Tests for the shadow RB interpreter: the whole-program fidelity check."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.shadow import ShadowRBInterpreter, shadow_check
from repro.workloads.generators import (
    conversion_chain_program,
    dependent_chain_program,
)
from repro.workloads.suite import build


class TestSmallPrograms:
    def test_add_chain_forwards_redundant(self):
        report = shadow_check(dependent_chain_program(iterations=50, chain_length=4))
        assert report.clean
        assert report.rb_checks >= 200  # every add checked in RB form

    def test_conversion_chain_validates_converter(self):
        report = shadow_check(conversion_chain_program(iterations=50))
        assert report.clean
        assert report.conversion_checks >= 50

    def test_memory_addresses_via_sam(self):
        source = """
    .data
buf:    .space 128
    .text
main:
    lda r1, buf
    lda r3, 10(zero)
loop:
    stq r3, 8(r1)
    ldq r4, 8(r1)
    lda r1, 8(r1)
    sub r3, #1, r3
    bgt r3, loop
    halt
"""
        report = shadow_check(assemble(source, "mem"))
        assert report.clean
        assert report.sam_checks == 20

    def test_negative_displacement_addresses(self):
        source = """
    .data
buf:    .space 64
    .text
main:
    lda r1, buf
    lda r1, 32(r1)
    lda r2, 7(zero)
    stq r2, -8(r1)
    ldq r3, -8(r1)
    halt
"""
        report = shadow_check(assemble(source, "negdisp"))
        assert report.clean

    def test_unsigned_compares(self):
        source = """
    .text
main:
    lda r1, -1(zero)         ; unsigned max
    cmpult r1, #5, r2        ; 0
    cmpule r1, #-1, r3       ; 1
    lda r4, 3(zero)
    cmpult r4, #5, r5        ; 1
    halt
"""
        interpreter = ShadowRBInterpreter(assemble(source, "ucmp"))
        report = interpreter.run()
        assert report.clean
        assert interpreter.state.regs[2] == 0
        assert interpreter.state.regs[3] == 1
        assert interpreter.state.regs[5] == 1

    def test_branch_tests_checked(self):
        source = """
    .text
main:
    lda r1, -3(zero)
    blt r1, ok
    lda r9, 1(zero)
ok:
    blbs r1, ok2
    lda r9, 2(zero)
ok2:
    halt
"""
        report = shadow_check(assemble(source, "br"))
        assert report.clean
        assert report.test_checks >= 2

    def test_move_propagates_redundant_form(self):
        source = """
    .text
main:
    lda r1, 5(zero)
    add r1, #2, r2      ; redundant producer
    mov r2, r3          ; RB-transparent move
    add r3, #1, r4      ; consumes the forwarded redundant value
    halt
"""
        interpreter = ShadowRBInterpreter(assemble(source, "move"))
        report = interpreter.run()
        assert report.clean
        assert interpreter.rb_regs[3] is not None  # move kept the RB form

    def test_mismatch_reporting_shape(self):
        """Force a mismatch by corrupting the mirror, and check reporting."""
        source = """
    .text
main:
    lda r1, 5(zero)
    add r1, #1, r2
    and r2, #7, r3
    halt
"""
        interpreter = ShadowRBInterpreter(assemble(source, "corrupt"))
        interpreter.step()  # lda
        interpreter.step()  # add: rb_regs[2] now holds 6
        from repro.rb.convert import from_twos_complement
        interpreter.rb_regs[2] = from_twos_complement(99, 64)  # corrupt
        interpreter.step()  # and: converter check must fire
        report = interpreter.report
        assert not report.clean
        assert report.mismatches[0].kind == "conversion"


class TestNativeMultiplier:
    def test_muls_checked_through_partial_products(self):
        source = """
    .text
main:
    lda r1, -37(zero)
    lda r2, 113(zero)
    mul r1, r2, r3        ; redundant multiplier
    mul r3, r3, r4        ; consumes a redundant product
    add r4, #1, r5
    halt
"""
        interpreter = ShadowRBInterpreter(
            assemble(source, "muls"), check_multiplies=True
        )
        report = interpreter.run()
        assert report.clean
        assert report.rb_checks >= 3


class TestKernels:
    @pytest.mark.parametrize("name", ["ijpeg", "li", "crafty"])
    def test_kernels_shadow_clean(self, name):
        report = shadow_check(build(name))
        assert report.clean, report.mismatches[:3]
        assert report.total_checks() > 5_000

    @pytest.mark.slow
    def test_gap_carry_chains_clean(self):
        """gap's bignum loops are the densest add-chain stress."""
        report = shadow_check(build("gap"))
        assert report.clean
        assert report.rb_checks > 20_000
