"""Tests for the architectural interpreter (every opcode)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.program import STACK_TOP, TEXT_BASE
from repro.isa.semantics import ArchState, SemanticsError, run_program
from repro.utils.bitops import MASK64, to_signed, wrap64

u64 = st.integers(min_value=0, max_value=MASK64)


def run_snippet(body: str, data: str = "") -> ArchState:
    source = ""
    if data:
        source += "    .data\n" + data
    source += "    .text\nmain:\n" + body + "    halt\n"
    return run_program(assemble(source))


class TestArithmetic:
    def test_add_sub_mul(self):
        st_ = run_snippet("""
    lda r1, 7(zero)
    lda r2, 5(zero)
    add r1, r2, r3
    sub r1, r2, r4
    mul r1, r2, r5
""")
        assert st_.regs[3] == 12
        assert st_.regs[4] == 2
        assert st_.regs[5] == 35

    def test_wraparound(self):
        st_ = run_snippet("""
    lda r1, -1(zero)
    add r1, #1, r2
""")
        assert st_.regs[2] == 0
        assert st_.regs[1] == MASK64

    def test_scaled_ops(self):
        st_ = run_snippet("""
    lda r1, 3(zero)
    s4add r1, #1, r2
    s8add r1, #1, r3
    s4sub r1, #1, r4
    s8sub r1, #1, r5
""")
        assert st_.regs[2] == 13
        assert st_.regs[3] == 25
        assert st_.regs[4] == 11
        assert st_.regs[5] == 23

    def test_lda_ldah(self):
        st_ = run_snippet("""
    lda  r1, 100(zero)
    ldah r2, 2(r1)
""")
        assert st_.regs[2] == 100 + (2 << 16)

    def test_zero_register_immutable(self):
        st_ = run_snippet("    lda r31, 99(zero)\n    add zero, #0, r1\n")
        assert st_.regs[31] == 0
        assert st_.regs[1] == 0


class TestLogicalAndShifts:
    def test_logicals(self):
        st_ = run_snippet("""
    lda r1, 12(zero)
    lda r2, 10(zero)
    and r1, r2, r3
    bis r1, r2, r4
    xor r1, r2, r5
    bic r1, r2, r6
    ornot r1, r2, r7
    eqv r1, r2, r8
    not r1, r9
""")
        assert st_.regs[3] == 12 & 10
        assert st_.regs[4] == 12 | 10
        assert st_.regs[5] == 12 ^ 10
        assert st_.regs[6] == 12 & ~10 & MASK64
        assert st_.regs[7] == (12 | ~10) & MASK64
        assert st_.regs[8] == ~(12 ^ 10) & MASK64
        assert st_.regs[9] == ~12 & MASK64

    def test_shifts(self):
        st_ = run_snippet("""
    lda r1, -8(zero)
    sll r1, #2, r2
    srl r1, #2, r3
    sra r1, #2, r4
""")
        assert st_.regs[2] == wrap64(-32)
        assert st_.regs[3] == wrap64(-8) >> 2
        assert st_.regs[4] == wrap64(-2)

    def test_shift_amount_masked(self):
        st_ = run_snippet("""
    lda r1, 1(zero)
    sll r1, #65, r2
""")
        assert st_.regs[2] == 2  # 65 & 63 == 1


class TestCompares:
    def test_signed_compares(self):
        st_ = run_snippet("""
    lda r1, -5(zero)
    cmplt r1, #3, r2
    cmple r1, #-5, r3
    cmpeq r1, #-5, r4
    cmpult r1, #3, r5
    cmpule r1, #-5, r6
""")
        assert st_.regs[2] == 1      # -5 < 3 signed
        assert st_.regs[3] == 1
        assert st_.regs[4] == 1
        assert st_.regs[5] == 0      # unsigned: huge value not < 3
        assert st_.regs[6] == 1


class TestCmovs:
    @pytest.mark.parametrize("op,test_value,moves", [
        ("cmoveq", 0, True), ("cmoveq", 1, False),
        ("cmovne", 0, False), ("cmovne", 2, True),
        ("cmovlt", -1, True), ("cmovlt", 1, False),
        ("cmovge", 0, True), ("cmovge", -1, False),
        ("cmovle", 0, True), ("cmovgt", 1, True),
        ("cmovlbs", 3, True), ("cmovlbc", 3, False),
    ])
    def test_conditions(self, op, test_value, moves):
        st_ = run_snippet(f"""
    lda r1, {test_value}(zero)
    lda r2, 111(zero)
    lda r3, 42(zero)
    {op} r1, r2, r3
""")
        assert st_.regs[3] == (111 if moves else 42)


class TestByteOps:
    def test_extb_insb_mskb(self):
        st_ = run_snippet("""
    lda r1, 0x4142(zero)
    extb r1, #1, r2
    lda r3, 0x77(zero)
    insb r3, #2, r4
    mskb r1, #0, r5
""")
        assert st_.regs[2] == 0x41
        assert st_.regs[4] == 0x77 << 16
        assert st_.regs[5] == 0x4100

    def test_zap(self):
        st_ = run_snippet("""
    lda r1, -1(zero)
    zap r1, #1, r2
""")
        assert st_.regs[2] == MASK64 ^ 0xFF


class TestCounts:
    def test_counts(self):
        st_ = run_snippet("""
    lda r1, 40(zero)      ; 0b101000
    ctlz r1, r2
    cttz r1, r3
    ctpop r1, r4
""")
        assert st_.regs[2] == 64 - 6
        assert st_.regs[3] == 3
        assert st_.regs[4] == 2


class TestMemory:
    def test_ldq_stq_round_trip(self):
        st_ = run_snippet("""
    lda r1, buf
    lda r2, -12345(zero)
    stq r2, 8(r1)
    ldq r3, 8(r1)
""", data="buf: .space 32\n")
        assert st_.regs[3] == wrap64(-12345)

    def test_ldl_sign_extends(self):
        st_ = run_snippet("""
    lda r1, buf
    lda r2, -1(zero)
    stl r2, 0(r1)
    stq zero, 8(r1)
    ldl r3, 0(r1)
""", data="buf: .space 16\n")
        assert st_.regs[3] == MASK64

    def test_stl_stores_only_4_bytes(self):
        st_ = run_snippet("""
    lda r1, buf
    lda r2, -1(zero)
    stq zero, 0(r1)
    stl r2, 0(r1)
    ldq r3, 0(r1)
""", data="buf: .space 16\n")
        assert st_.regs[3] == 0xFFFF_FFFF

    def test_data_image_loaded(self):
        st_ = run_snippet("    lda r1, vals\n    ldq r2, 8(r1)\n",
                          data="vals: .quad 10, 20, 30\n")
        assert st_.regs[2] == 20


class TestControl:
    def test_conditional_branches(self):
        st_ = run_snippet("""
    lda r1, 0(zero)
    beq r1, taken1
    lda r9, 1(zero)
taken1:
    lda r2, -3(zero)
    blt r2, taken2
    lda r9, 2(zero)
taken2:
    lda r3, 5(zero)
    blbs r3, taken3
    lda r9, 3(zero)
taken3:
""")
        assert st_.regs[9] == 0

    def test_jsr_ret(self):
        st_ = run_snippet("""
    jsr helper
    br end
helper:
    lda r5, 77(zero)
    ret
end:
""")
        assert st_.regs[5] == 77
        assert st_.regs[26] == TEXT_BASE + 4

    def test_jmp_indirect(self):
        source = """
    .text
main:
    lda r1, target
    jmp (r1)
    lda r9, 1(zero)
target:
    halt
"""
        program = assemble(source)
        target = program.labels["target"]
        state = run_program(program)
        assert state.regs[9] == 0
        assert state.regs[1] == target

    def test_stack_pointer_initialized(self):
        st_ = run_snippet("    add sp, #0, r1\n")
        assert st_.regs[1] == STACK_TOP


class TestFpClass:
    def test_fadd_fmul_fdiv(self):
        st_ = run_snippet("""
    lda r1, 20(zero)
    lda r2, -6(zero)
    fadd r1, r2, r3
    fmul r1, r2, r4
    fdiv r1, r2, r5
    fdiv r1, #0, r6
""")
        assert st_.regs[3] == 14
        assert st_.regs[4] == wrap64(-120)
        assert to_signed(st_.regs[5]) == -3  # truncation toward zero
        assert st_.regs[6] == 0              # divide by zero yields 0


class TestRunner:
    def test_runaway_protection(self):
        program = assemble(".text\nmain:\n    br main\n")
        with pytest.raises(SemanticsError, match="exceeded"):
            run_program(program, max_instructions=100)

    def test_pc_escape_detected(self):
        program = assemble(".text\nmain:\n    lda r1, 4096(zero)\n    jmp (r1)\n")
        with pytest.raises(SemanticsError, match="outside text"):
            run_program(program)


class TestPropertyArithmetic:
    @given(a=u64, b=u64)
    @settings(max_examples=100, deadline=None)
    def test_add_matches_python(self, a, b):
        program = assemble(".text\nmain:\n    add r1, r2, r3\n    halt\n")
        state = ArchState(program)
        state.regs[1] = a
        state.regs[2] = b
        state.execute(program.instructions[0])
        assert state.regs[3] == wrap64(a + b)
