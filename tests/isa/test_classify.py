"""Tests for the Table 1 classification."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.classify import TABLE1_ROWS, FormatClass, classify, instruction_mix
from repro.isa.opcodes import OPCODE_SPECS, Opcode, OperandFormat, ResultFormat, spec_of


def _single(body: str):
    program = assemble(f".text\nmain:\n{body}\n    halt\n")
    return program.instructions[0]


class TestClassify:
    @pytest.mark.parametrize("body,expected", [
        ("    add r1, r2, r3", FormatClass.ARITH_RB_RB),
        ("    sll r1, #2, r3", FormatClass.ARITH_RB_RB),
        ("    lda r1, 4(r2)", FormatClass.ARITH_RB_RB),
        ("    cmovlt r1, r2, r3", FormatClass.CMOV_SIGN_RB_RB),
        ("    cmoveq r1, r2, r3", FormatClass.CMOV_ZERO_RB_RB),
        ("    ldq r1, 0(r2)", FormatClass.MEMORY_RB_TC),
        ("    stq r1, 0(r2)", FormatClass.MEMORY_RB_TC),
        ("    cmpeq r1, r2, r3", FormatClass.CMPEQ_RB_TC),
        ("    cmpult r1, r2, r3", FormatClass.CMP_REL_RB_TC),
        ("    beq r1, main", FormatClass.BRANCH_RB),
        ("    and r1, r2, r3", FormatClass.OTHER_TC_TC),
        ("    srl r1, #1, r3", FormatClass.OTHER_TC_TC),
        ("    extb r1, #0, r3", FormatClass.OTHER_TC_TC),
        ("    ctlz r1, r3", FormatClass.OTHER_TC_TC),
    ])
    def test_rows(self, body, expected):
        assert classify(_single(body)) == expected

    def test_move_idiom_is_rb_transparent(self):
        assert classify(_single("    mov r1, r2")) == FormatClass.ARITH_RB_RB
        assert classify(_single("    bis r1, r2, r3")) == FormatClass.OTHER_TC_TC


class TestInstructionMix:
    def test_excludes_unconditional_control(self):
        program = assemble("""
    .text
main:
    add r1, r2, r3
    jsr f
    br end
f:
    ret
end:
    nop
    halt
""")
        mix = instruction_mix(program.instructions)
        assert mix.total == 1
        assert mix.fraction(FormatClass.ARITH_RB_RB) == 1.0

    def test_paper_fractions_sum_to_one(self):
        assert sum(fraction for _, fraction in TABLE1_ROWS) == pytest.approx(1.0)


class TestOpcodeTableConsistency:
    """The opcode table's formats must be coherent with Table 1."""

    def test_rb_output_classes_marked_rb(self):
        for opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.LDA,
                       Opcode.S4ADD, Opcode.SLL, Opcode.CMOVGT):
            assert spec_of(opcode).result is ResultFormat.RB

    def test_tc_output_classes(self):
        for opcode in (Opcode.AND, Opcode.SRL, Opcode.EXTB, Opcode.CTLZ,
                       Opcode.LDQ, Opcode.LDL):
            assert spec_of(opcode).result is ResultFormat.TC

    def test_store_operand_formats(self):
        # store data must be TC; the address register may be redundant (SAM)
        spec = spec_of(Opcode.STQ)
        assert spec.operand_formats == (OperandFormat.TC_ONLY, OperandFormat.RB_OK)

    def test_loads_take_redundant_addresses(self):
        assert spec_of(Opcode.LDQ).operand_formats == (OperandFormat.RB_OK,)

    def test_branches_take_redundant_inputs(self):
        for opcode in (Opcode.BEQ, Opcode.BLT, Opcode.BLBS):
            spec = spec_of(opcode)
            assert spec.operand_formats == (OperandFormat.RB_OK,)
            assert spec.is_conditional

    def test_logicals_require_tc(self):
        for opcode in (Opcode.AND, Opcode.XOR, Opcode.BIC, Opcode.EQV):
            assert all(
                fmt is OperandFormat.TC_ONLY
                for fmt in spec_of(opcode).operand_formats
            )

    def test_every_opcode_has_consistent_flags(self):
        for opcode, spec in OPCODE_SPECS.items():
            assert not (spec.is_load and spec.is_store), opcode
            if spec.is_conditional:
                assert spec.is_branch, opcode
            if spec.result is ResultFormat.NONE:
                assert not spec.writes_reg, opcode
