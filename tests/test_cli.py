"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_machines_and_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rb-full" in out
        assert "gap" in out
        assert "spec2000" in out


class TestRun:
    def test_run_suite_workload(self, capsys):
        assert main(["run", "ijpeg", "--machine", "baseline", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "Baseline-4w" in out

    def test_run_limited_variant(self, capsys):
        assert main(["run", "ijpeg", "--machine", "ideal-no-2,3", "--width", "4"]) == 0
        assert "Ideal-No-2,3-4w" in capsys.readouterr().out

    def test_run_with_steering(self, capsys):
        assert main(["run", "ijpeg", "--machine", "rb-limited",
                     "--steering", "dependence"]) == 0
        out = capsys.readouterr().out
        assert "dependence" in out
        assert "cross-cluster" in out

    def test_run_assembly_file(self, tmp_path, capsys):
        source = ".text\nmain:\n    lda r1, 5(zero)\n    halt\n"
        path = tmp_path / "tiny.s"
        path.write_text(source)
        assert main(["run", str(path), "--machine", "ideal"]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_unknown_machine(self):
        with pytest.raises(SystemExit, match="unknown machine"):
            main(["run", "ijpeg", "--machine", "pentium4"])


class TestOtherCommands:
    def test_mix(self, capsys):
        assert main(["mix", "crafty"]) == 0
        assert "TC -> TC" in capsys.readouterr().out

    def test_delays(self, capsys):
        assert main(["delays"]) == 0
        out = capsys.readouterr().out
        assert "rb_to_tc_converter" in out

    def test_shadow_clean(self, capsys):
        assert main(["shadow", "ijpeg"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "ijpeg", "--machine", "rb-full",
                     "--width", "4", "--count", "6"]) == 0
        out = capsys.readouterr().out
        assert "Cycle:" in out
        assert "SCH" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
