"""Tests for the command-line interface."""

import json
import logging
from pathlib import Path

import pytest

from repro.cli import main


class TestList:
    def test_lists_machines_and_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rb-full" in out
        assert "gap" in out
        assert "spec2000" in out


class TestRun:
    def test_run_suite_workload(self, capsys):
        assert main(["run", "ijpeg", "--machine", "baseline", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "Baseline-4w" in out

    def test_run_limited_variant(self, capsys):
        assert main(["run", "ijpeg", "--machine", "ideal-no-2,3", "--width", "4"]) == 0
        assert "Ideal-No-2,3-4w" in capsys.readouterr().out

    def test_run_with_steering(self, capsys):
        assert main(["run", "ijpeg", "--machine", "rb-limited",
                     "--steering", "dependence"]) == 0
        out = capsys.readouterr().out
        assert "dependence" in out
        assert "cross-cluster" in out

    def test_run_assembly_file(self, tmp_path, capsys):
        source = ".text\nmain:\n    lda r1, 5(zero)\n    halt\n"
        path = tmp_path / "tiny.s"
        path.write_text(source)
        assert main(["run", str(path), "--machine", "ideal"]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_unknown_machine(self):
        with pytest.raises(SystemExit, match="unknown machine"):
            main(["run", "ijpeg", "--machine", "pentium4"])

    def test_run_json_output(self, capsys):
        assert main(["run", "ijpeg", "--machine", "ideal", "--width", "4",
                     "--json"]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["machine"] == "Ideal-4w"
        assert entry["instructions"] > 0
        assert entry["derived"]["ipc"] == pytest.approx(
            entry["instructions"] / entry["cycles"]
        )
        assert "counters" in entry["metrics"]
        assert "bypass.cases" in entry["metrics"]["distributions"]

    def test_verbose_flag_sets_info_level(self, capsys):
        try:
            assert main(["run", "ijpeg", "--machine", "ideal", "--width", "4",
                         "-v"]) == 0
            assert logging.getLogger("repro").level == logging.INFO
        finally:
            logging.getLogger("repro").setLevel(logging.WARNING)


class TestTrace:
    def test_trace_chrome_validates(self, tmp_path, capsys):
        from repro.obs.sinks import validate_chrome_trace
        out = tmp_path / "trace.json"
        assert main(["trace", "ijpeg", "--machine", "rb-limited", "--width", "4",
                     "--format", "chrome", "-o", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "events" in printed and "Perfetto" in printed or "perfetto" in printed
        total, retires = validate_chrome_trace(out)
        assert retires > 0

    def test_trace_jsonl_round_trips(self, tmp_path, capsys):
        from repro.obs.events import EventKind
        from repro.obs.sinks import read_jsonl
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "li", "--machine", "ideal", "--width", "4",
                     "--format", "jsonl", "-o", str(out)]) == 0
        meta, events = read_jsonl(out)
        assert meta["workload"] == "li"
        retires = [e for e in events if e.kind is EventKind.RETIRE]
        assert len(retires) == meta["instructions"]

    def test_trace_validate_module(self, tmp_path, capsys):
        from repro.obs.validate import main as validate_main
        out = tmp_path / "trace.json"
        assert main(["trace", "li", "--machine", "rb-full", "--width", "4",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        assert validate_main([str(out)]) == 0
        assert "OK" in capsys.readouterr().out
        assert validate_main([str(tmp_path / "missing.json")]) == 1


class TestTraceBounding:
    def test_small_buffer_drops_and_reports(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "li", "--machine", "baseline", "--width", "4",
                     "--format", "jsonl", "--buffer", "64", "-o", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "dropped" in printed
        from repro.obs.sinks import read_jsonl
        meta, events = read_jsonl(out)
        assert len(events) <= 64
        assert meta["dropped_events"] > 0

    def test_full_keeps_everything(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "li", "--machine", "baseline", "--width", "4",
                     "--format", "jsonl", "--buffer", "64", "--full",
                     "-o", str(out)]) == 0
        assert "dropped" not in capsys.readouterr().out


class TestExplain:
    def test_text_report(self, capsys):
        assert main(["explain", "li", "--machines", "baseline,rb-limited",
                     "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "CPI stack" in out
        assert "bypass-hole" in out
        assert "Critical-path report" in out

    def test_json_matches_schema(self, tmp_path, capsys):
        out = tmp_path / "explain.json"
        assert main(["explain", "li", "--machines", "baseline,rb-limited",
                     "--width", "4", "--json", "-o", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["report"] == "repro-explain"
        from repro.obs.validate import validate_json_schema
        schema = json.loads(
            Path(__file__).resolve().parents[1].joinpath(
                "schemas", "explain.schema.json").read_text())
        validate_json_schema(document, schema)

    def test_markdown_report(self, capsys):
        assert main(["explain", "li", "--machines", "ideal", "--width", "4",
                     "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("## CPI stacks:")

    def test_validate_module_schema_mode(self, tmp_path, capsys):
        from repro.obs.validate import main as validate_main
        out = tmp_path / "explain.json"
        assert main(["explain", "li", "--machines", "ideal", "--width", "4",
                     "--json", "-o", str(out)]) == 0
        capsys.readouterr()
        schema = str(Path(__file__).resolve().parents[1]
                     / "schemas" / "explain.schema.json")
        assert validate_main([str(out), "--schema", schema]) == 0
        assert "OK" in capsys.readouterr().out


class TestPareto:
    def test_table_and_schema_valid_export(self, tmp_path, capsys):
        out = tmp_path / "pareto.json"
        assert main(["pareto", "--widths", "4", "--workloads", "compress",
                     "--adders", "cla,rb", "--verify-width", "8",
                     "-o", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "Pareto-cla-4w" in printed
        assert "frontier:" in printed
        document = json.loads(out.read_text())
        from repro.obs.validate import validate_json_schema
        schema = json.loads(
            Path(__file__).resolve().parents[1].joinpath(
                "schemas", "pareto.schema.json").read_text())
        validate_json_schema(document, schema)
        assert document["version"] == 1
        assert document["verify_width"] == 8
        assert {p["machine"] for p in document["points"]} == {
            "Pareto-cla-4w", "Pareto-rb-4w"
        }
        assert set(document["verified"]) == {"cla", "rb", "rb_to_tc_converter"}

    def test_unknown_family_exits(self):
        # The formal gate rejects the name before the preset table does.
        with pytest.raises(SystemExit, match="unknown netlists"):
            main(["pareto", "--widths", "4", "--workloads", "compress",
                  "--adders", "booth"])


class TestOtherCommands:
    def test_mix(self, capsys):
        assert main(["mix", "crafty"]) == 0
        assert "TC -> TC" in capsys.readouterr().out

    def test_delays(self, capsys):
        assert main(["delays"]) == 0
        out = capsys.readouterr().out
        assert "rb_to_tc_converter" in out

    def test_shadow_clean(self, capsys):
        assert main(["shadow", "ijpeg"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "ijpeg", "--machine", "rb-full",
                     "--width", "4", "--count", "6"]) == 0
        out = capsys.readouterr().out
        assert "Cycle:" in out
        assert "SCH" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTimeline:
    def test_text_report(self, capsys):
        assert main(["timeline", "li", "--machine", "rb-limited",
                     "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "RB-limited-4w on li" in out
        assert "phases" in out
        assert "intervals" in out

    def test_json_matches_schema(self, tmp_path, capsys):
        from repro.obs.validate import validate_json_schema
        out_path = tmp_path / "timeline.json"
        assert main(["timeline", "li", "--machine", "rb-limited", "--width", "4",
                     "--json", "-o", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        schema = json.loads(
            (Path(__file__).resolve().parents[1] / "schemas"
             / "timeline.schema.json").read_text()
        )
        validate_json_schema(document, schema)
        assert document["machine"] == "RB-limited-4w"
        assert document["rows"]

    def test_diff_mode(self, capsys):
        assert main(["timeline", "li", "--machine", "baseline", "--width", "4",
                     "--diff", "rb-limited"]) == 0
        out = capsys.readouterr().out
        assert "timeline diff on li" in out
        assert "Baseline-4w (A) vs RB-limited-4w (B)" in out

    def test_diff_json(self, capsys):
        assert main(["timeline", "li", "--machine", "baseline", "--width", "4",
                     "--diff", "rb-limited", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["a_machine"] == "Baseline-4w"
        assert payload["b_machine"] == "RB-limited-4w"
        assert payload["summary"]["cycle_ratio"] < 1.0

    def test_no_skip_is_identical(self, capsys):
        assert main(["timeline", "li", "--machine", "rb-limited", "--width", "4",
                     "--json"]) == 0
        skipping = json.loads(capsys.readouterr().out)
        assert main(["timeline", "li", "--machine", "rb-limited", "--width", "4",
                     "--json", "--no-skip"]) == 0
        walking = json.loads(capsys.readouterr().out)
        assert skipping == walking


class TestWatch:
    def test_unreachable_service_exits_2(self, capsys):
        # TEST-NET-1 address / closed local port: connection must fail fast
        assert main(["watch", "li", "--machine", "rb-limited", "--width", "4",
                     "--host", "127.0.0.1", "--port", "9", "--timeout", "2"]) == 2
        assert "cannot submit" in capsys.readouterr().err
