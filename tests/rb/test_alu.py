"""Tests for the RBALU facade: semantics and format enforcement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rb.alu import RBALU, FormatError
from repro.utils.bitops import to_signed

WIDTH = 16
values = st.integers(min_value=-(1 << (WIDTH - 1)), max_value=(1 << (WIDTH - 1)) - 1)


#: RBALU is stateless, so one shared instance serves every test.
ALU = RBALU(width=WIDTH)


class TestArithmetic:
    @given(a=values, b=values)
    @settings(max_examples=200)
    def test_add_sub(self, a, b):
        ra, rb_operand = ALU.encode(a), ALU.encode(b)
        assert ALU.decode(ALU.add(ra, rb_operand).value) == to_signed(a + b, WIDTH)
        assert ALU.decode(ALU.sub(ra, rb_operand).value) == to_signed(a - b, WIDTH)

    @given(a=values, b=values)
    @settings(max_examples=150)
    def test_compare(self, a, b):
        result = ALU.compare(ALU.encode(a), ALU.encode(b))
        assert result == (0 if a == b else (1 if a > b else -1))

    @given(a=values)
    def test_compare_zero(self, a):
        assert ALU.compare_zero(ALU.encode(a)) == (0 if a == 0 else (1 if a > 0 else -1))

    @given(a=values, k=st.integers(min_value=0, max_value=8))
    @settings(max_examples=150)
    def test_shift_left(self, a, k):
        assert ALU.decode(ALU.shift_left(ALU.encode(a), k)) == to_signed(a << k, WIDTH)

    @given(a=values, b=values, scale=st.sampled_from([2, 3]))
    @settings(max_examples=150)
    def test_scaled_add(self, a, b, scale):
        result = ALU.scaled_add(ALU.encode(a), ALU.encode(b), scale)
        assert ALU.decode(result.value) == to_signed((a << scale) + b, WIDTH)

    @given(a=values)
    def test_predicates(self, a):
        n = ALU.encode(a)
        assert ALU.is_zero(n) == (a == 0)
        assert ALU.lsb_set(n) == (a % 2 != 0)

    def test_extract_longword(self):
        wide = ALU.encode(0x1234)
        low = ALU.extract_longword(wide, 8)
        assert low.value() == to_signed(0x34, 8)


class TestFormatEnforcement:
    def test_width_mismatch(self):
        from repro.rb.number import RBNumber
        with pytest.raises(FormatError):
            ALU.add(RBNumber.zero(4), RBNumber.zero(4))

    @pytest.mark.parametrize("mnemonic", ["AND", "xor", "SRL", "ctlz", "EXTB", "CTPOP"])
    def test_tc_only_operations_rejected(self, mnemonic):
        with pytest.raises(FormatError):
            ALU.require_tc(mnemonic)

    def test_non_tc_operation_is_an_error(self):
        with pytest.raises(ValueError):
            ALU.require_tc("ADD")

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            RBALU(width=0)
