"""Tests for the RBNumber value type (paper §3.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rb.number import RBNumber, digits_valid

digits_lists = st.lists(st.sampled_from([-1, 0, 1]), min_size=1, max_size=16)


class TestConstruction:
    def test_zero(self):
        z = RBNumber.zero(8)
        assert z.value() == 0
        assert z.digits() == [0] * 8

    def test_paper_example_three(self):
        # <0, 1, 0, -1> represents 2^2 - 2^0 = 3 (paper §3.1)
        n = RBNumber.from_msd_digits([0, 1, 0, -1])
        assert n.value() == 3
        alt = RBNumber.from_msd_digits([0, 0, 1, 1])
        assert alt.value() == 3
        assert n != alt  # redundancy: same value, different encodings

    def test_invalid_digit_rejected(self):
        with pytest.raises(ValueError):
            RBNumber.from_digits([0, 2])

    def test_conflicting_bits_rejected(self):
        with pytest.raises(ValueError):
            RBNumber(4, plus=0b0001, minus=0b0001)

    def test_width_overflow_rejected(self):
        with pytest.raises(ValueError):
            RBNumber(2, plus=0b100, minus=0)

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError):
            RBNumber(0, 0, 0)

    @given(digits_lists)
    def test_digits_round_trip(self, digits):
        n = RBNumber.from_digits(digits)
        assert n.digits() == digits
        assert n.width == len(digits)

    @given(digits_lists)
    def test_value_matches_definition(self, digits):
        n = RBNumber.from_digits(digits)
        assert n.value() == sum(d << i for i, d in enumerate(digits))


class TestAccessors:
    def test_digit_indexing(self):
        n = RBNumber.from_digits([1, 0, -1])
        assert n.digit(0) == 1
        assert n.digit(2) == -1
        with pytest.raises(IndexError):
            n.digit(3)

    def test_msd(self):
        assert RBNumber.from_digits([0, 0, -1]).msd() == -1

    def test_nonzero_digit_count(self):
        assert RBNumber.from_digits([1, 0, -1, 0]).nonzero_digit_count() == 2

    def test_plus_minus_components(self):
        n = RBNumber.from_digits([1, -1, 0, 1])
        assert n.plus == 0b1001
        assert n.minus == 0b0010


class TestTransforms:
    def test_negated(self):
        n = RBNumber.from_digits([1, 0, -1])
        assert n.negated().value() == -n.value()
        assert n.negated().negated() == n

    def test_with_digit(self):
        n = RBNumber.from_digits([0, 0, 0])
        assert n.with_digit(1, -1).value() == -2
        with pytest.raises(ValueError):
            n.with_digit(0, 5)
        with pytest.raises(IndexError):
            n.with_digit(9, 1)

    def test_truncated_preserves_value_mod(self):
        n = RBNumber.from_digits([1, -1, 1, 1])
        t = n.truncated(2)
        assert t.width == 2
        assert (t.value() - n.value()) % 4 == 0

    def test_truncated_validation(self):
        with pytest.raises(ValueError):
            RBNumber.zero(4).truncated(5)

    @given(digits_lists)
    def test_negation_value(self, digits):
        n = RBNumber.from_digits(digits)
        assert n.negated().value() == -n.value()


class TestEquality:
    def test_hashable(self):
        a = RBNumber.from_digits([1, 0])
        b = RBNumber.from_digits([1, 0])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_not_equal_other_types(self):
        assert RBNumber.zero(4) != 0

    def test_repr_msd_first(self):
        assert "1, 0, -1" in repr(RBNumber.from_digits([-1, 0, 1]))


def test_digits_valid():
    assert digits_valid([1, 0, -1])
    assert not digits_valid([2])
