"""Property tests for redundant binary multiplication."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.rb.convert import from_twos_complement
from repro.rb.multiply import partial_products, rb_multiply
from repro.rb.number import RBNumber
from repro.rb.ops import sign_of
from repro.utils.bitops import to_signed

WIDTH = 12
values = st.integers(min_value=-(1 << (WIDTH - 1)), max_value=(1 << (WIDTH - 1)) - 1)
digit_lists = st.lists(st.sampled_from([-1, 0, 1]), min_size=WIDTH, max_size=WIDTH)


class TestRbMultiply:
    @given(a=values, b=values)
    @settings(max_examples=300, deadline=None)
    def test_matches_wrapped_product(self, a, b):
        product = rb_multiply(
            from_twos_complement(a, WIDTH), from_twos_complement(b, WIDTH)
        )
        expected = to_signed(a * b, WIDTH)
        assert product.value() == expected
        # sign invariant maintained for downstream RB condition tests
        assert sign_of(product) == (0 if expected == 0 else
                                    (1 if expected > 0 else -1))

    @given(xd=digit_lists, yd=digit_lists)
    @settings(max_examples=200, deadline=None)
    def test_any_redundant_encodings(self, xd, yd):
        """Forwarded (non-canonical) operands multiply correctly too."""
        x = RBNumber.from_digits(xd)
        y = RBNumber.from_digits(yd)
        product = rb_multiply(x, y)
        assert product.value() == to_signed(x.value() * y.value(), WIDTH)

    @given(a=values)
    def test_identities(self, a):
        x = from_twos_complement(a, WIDTH)
        one = from_twos_complement(1, WIDTH)
        zero = RBNumber.zero(WIDTH)
        assert rb_multiply(x, one).value() == a
        assert rb_multiply(x, zero).value() == 0

    @given(a=values, b=values)
    @settings(max_examples=150, deadline=None)
    def test_commutative(self, a, b):
        x = from_twos_complement(a, WIDTH)
        y = from_twos_complement(b, WIDTH)
        assert rb_multiply(x, y).value() == rb_multiply(y, x).value()

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            rb_multiply(RBNumber.zero(4), RBNumber.zero(8))


class TestPartialProducts:
    def test_count_matches_nonzero_digits(self):
        y = RBNumber.from_digits([1, 0, -1, 0])
        x = from_twos_complement(3, 4)
        assert len(partial_products(x, y)) == 2

    @given(a=values, b=values)
    @settings(max_examples=100, deadline=None)
    def test_partials_sum_to_product(self, a, b):
        x = from_twos_complement(a, WIDTH)
        y = from_twos_complement(b, WIDTH)
        total = sum(p.value() for p in partial_products(x, y))
        assert (total - a * b) % (1 << WIDTH) == 0
