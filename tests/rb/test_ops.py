"""Tests for the non-add RB operations (paper §3.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rb.convert import from_twos_complement
from repro.rb.number import RBNumber
from repro.rb.ops import (
    count_trailing_zero_digits,
    extract_longword,
    is_negative,
    is_zero,
    lsb_set,
    scaled_add,
    shift_left_digits,
    sign_of,
)
from repro.utils.bitops import count_trailing_zeros, to_signed

WIDTH = 8
tc_values = st.integers(min_value=-(1 << (WIDTH - 1)), max_value=(1 << (WIDTH - 1)) - 1)
digit_lists = st.lists(st.sampled_from([-1, 0, 1]), min_size=WIDTH, max_size=WIDTH)


class TestShiftLeft:
    def test_paper_example(self):
        # <-1, 1, 0, 1> (-3) shifted left one digit becomes -6
        n = RBNumber.from_msd_digits([-1, 1, 0, 1])
        shifted, _ = shift_left_digits(n, 1)
        assert shifted.value() == -6

    @given(tc_values, st.integers(min_value=0, max_value=10))
    @settings(max_examples=300)
    def test_matches_tc_shift(self, value, amount):
        shifted, _ = shift_left_digits(from_twos_complement(value, WIDTH), amount)
        assert shifted.value() == to_signed(value << amount, WIDTH)

    @given(digit_lists, st.integers(min_value=0, max_value=9))
    @settings(max_examples=300)
    def test_any_encoding_wraps(self, digits, amount):
        n = RBNumber.from_digits(digits)
        shifted, _ = shift_left_digits(n, amount)
        assert (shifted.value() - (n.value() << amount)) % (1 << WIDTH) == 0
        half = 1 << (WIDTH - 1)
        assert -half <= shifted.value() < half

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            shift_left_digits(RBNumber.zero(4), -1)


class TestScaledAdd:
    @given(tc_values, tc_values, st.sampled_from([2, 3]))
    @settings(max_examples=300)
    def test_sxadd_semantics(self, a, b, scale):
        result = scaled_add(
            from_twos_complement(a, WIDTH), from_twos_complement(b, WIDTH), scale
        )
        assert result.value.value() == to_signed((a << scale) + b, WIDTH)


class TestCTTZ:
    @given(tc_values)
    def test_matches_tc_cttz(self, value):
        n = from_twos_complement(value, WIDTH)
        expected = count_trailing_zeros(value, WIDTH)
        assert count_trailing_zero_digits(n) == expected

    @given(digit_lists)
    def test_any_encoding(self, digits):
        """Trailing zero digits == trailing zero bits of the value: the
        lowest non-zero digit sets the lowest non-zero bit weight."""
        n = RBNumber.from_digits(digits)
        if n.value() == 0:
            assert count_trailing_zero_digits(n) == WIDTH
        else:
            low = n.value() & -n.value()
            assert count_trailing_zero_digits(n) == low.bit_length() - 1


class TestConditionTests:
    @given(digit_lists)
    def test_sign_matches_value(self, digits):
        n = RBNumber.from_digits(digits)
        value = n.value()
        assert sign_of(n) == (0 if value == 0 else (1 if value > 0 else -1))

    @given(digit_lists)
    def test_zero_unique_representation(self, digits):
        n = RBNumber.from_digits(digits)
        assert is_zero(n) == (n.value() == 0)
        if is_zero(n):
            assert all(d == 0 for d in n.digits())

    @given(digit_lists)
    def test_lsb_parity(self, digits):
        n = RBNumber.from_digits(digits)
        assert lsb_set(n) == (n.value() % 2 != 0)

    @given(tc_values)
    def test_is_negative(self, value):
        assert is_negative(from_twos_complement(value, WIDTH)) == (value < 0)


class TestExtractLongword:
    @given(st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
    @settings(max_examples=300)
    def test_quad_to_long(self, value):
        quad = from_twos_complement(value, 16)
        long, _ = extract_longword(quad, 8)
        assert long.width == 8
        assert long.value() == to_signed(value, 8)

    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=16, max_size=16))
    @settings(max_examples=300)
    def test_any_encoding_keeps_sign(self, digits):
        quad = RBNumber.from_digits(digits)
        long, _ = extract_longword(quad, 8)
        expected = to_signed(quad.value(), 8)
        assert long.value() == expected
        assert sign_of(long) == (0 if expected == 0 else (1 if expected > 0 else -1))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            extract_longword(RBNumber.zero(8), 8)
        with pytest.raises(ValueError):
            extract_longword(RBNumber.zero(8), 0)
