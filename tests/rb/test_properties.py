"""Seeded property tests for the RB↔TC boundary (paper §3.2, §3.5).

The differential suite pins the adders against whole-program behaviour;
these tests pin the *algebra* directly: for thousands of random 64-bit
operands and random redundant digit patterns,

    to_tc(to_rb(x) + to_rb(y)) == (x + y) mod 2**64

must hold exactly.  Plain ``random.Random`` with fixed seeds — every
failure is reproducible from the test source alone, and the suite takes
no new dependency.
"""

from __future__ import annotations

import random

import pytest

from repro.rb.adder import rb_add, rb_add_reference, rb_negate, rb_sub
from repro.rb.convert import (
    from_twos_complement,
    to_twos_complement,
    to_twos_complement_bits,
)
from repro.rb.number import RBNumber

WIDTH = 64
MASK = (1 << WIDTH) - 1
CASES_PER_SEED = 500
SEEDS = [0, 1, 2, 3]


def random_operand(rng: random.Random) -> int:
    """A 64-bit pattern biased toward carry-hostile shapes."""
    choice = rng.randrange(4)
    if choice == 0:
        return rng.getrandbits(WIDTH)
    if choice == 1:  # long runs of ones: maximal carry chains in TC
        start = rng.randrange(WIDTH)
        length = rng.randrange(1, WIDTH - start + 1)
        return (((1 << length) - 1) << start) & MASK
    if choice == 2:  # boundary values
        return rng.choice([0, 1, MASK, 1 << (WIDTH - 1), (1 << (WIDTH - 1)) - 1])
    return rng.getrandbits(8)  # small magnitudes


def random_rb(rng: random.Random) -> RBNumber:
    """A random digit pattern — not merely an encoding of a random TC value.

    ``from_twos_complement`` only ever produces one negative digit (the
    sign), so redundancy-heavy patterns (interleaved +1/-1 digits, many
    encodings of the same value) need direct construction.
    """
    plus = rng.getrandbits(WIDTH)
    minus = rng.getrandbits(WIDTH) & ~plus  # (1,1) is an invalid encoding
    return RBNumber(WIDTH, plus, minus)


@pytest.mark.parametrize("seed", SEEDS)
def test_tc_round_trip_through_rb_addition(seed):
    rng = random.Random(seed)
    for _ in range(CASES_PER_SEED):
        x, y = random_operand(rng), random_operand(rng)
        result = rb_add(from_twos_complement(x, WIDTH), from_twos_complement(y, WIDTH))
        assert to_twos_complement_bits(result.value) == (x + y) & MASK, (x, y)


@pytest.mark.parametrize("seed", SEEDS)
def test_addition_of_random_digit_patterns(seed):
    rng = random.Random(seed)
    for _ in range(CASES_PER_SEED):
        a, b = random_rb(rng), random_rb(rng)
        result = rb_add(a, b)
        expected = (to_twos_complement_bits(a) + to_twos_complement_bits(b)) & MASK
        assert to_twos_complement_bits(result.value) == expected, (a, b)


@pytest.mark.parametrize("seed", SEEDS)
def test_word_parallel_adder_matches_digit_serial_reference(seed):
    rng = random.Random(seed)
    for _ in range(CASES_PER_SEED):
        a, b = random_rb(rng), random_rb(rng)
        fast, slow = rb_add(a, b), rb_add_reference(a, b)
        assert fast.value.plus == slow.value.plus, (a, b)
        assert fast.value.minus == slow.value.minus, (a, b)
        assert fast.overflow == slow.overflow, (a, b)


@pytest.mark.parametrize("seed", SEEDS)
def test_overflow_flag_matches_signed_range(seed):
    rng = random.Random(seed)
    low, high = -(1 << (WIDTH - 1)), (1 << (WIDTH - 1)) - 1
    for _ in range(CASES_PER_SEED):
        x, y = random_operand(rng), random_operand(rng)
        sx = x - (1 << WIDTH) if x >> (WIDTH - 1) else x
        sy = y - (1 << WIDTH) if y >> (WIDTH - 1) else y
        result = rb_add(from_twos_complement(x, WIDTH), from_twos_complement(y, WIDTH))
        assert result.overflow == (not low <= sx + sy <= high), (x, y)


@pytest.mark.parametrize("seed", SEEDS)
def test_subtraction_and_negation_are_consistent(seed):
    rng = random.Random(seed)
    for _ in range(CASES_PER_SEED):
        a, b = random_rb(rng), random_rb(rng)
        assert to_twos_complement_bits(rb_negate(b)) == (-to_twos_complement_bits(b)) & MASK, b
        diff = rb_sub(a, b)
        expected = (to_twos_complement_bits(a) - to_twos_complement_bits(b)) & MASK
        assert to_twos_complement_bits(diff.value) == expected, (a, b)


def test_every_redundant_encoding_of_a_value_adds_identically():
    """Redundancy: distinct encodings of x collapse to the same TC sum."""
    rng = random.Random(99)
    for _ in range(200):
        a = random_rb(rng)
        bits = to_twos_complement_bits(a)
        canonical = from_twos_complement(bits, WIDTH)
        other = random_rb(rng)
        via_pattern = rb_add(a, other)
        via_canonical = rb_add(canonical, other)
        assert to_twos_complement_bits(via_pattern.value) == to_twos_complement_bits(
            via_canonical.value
        ), (a, other)
