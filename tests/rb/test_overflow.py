"""Tests for bogus-overflow correction and TC overflow detection (§3.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rb.number import RBNumber
from repro.rb.overflow import correct_bogus_overflow, normalize_msd


class TestBogusOverflow:
    def test_paper_identities(self):
        # <1, -1> == <0, 1> and <-1, 1> == <0, -1> at (carry, msd)
        assert correct_bogus_overflow(1, -1) == (0, 1)
        assert correct_bogus_overflow(-1, 1) == (0, -1)

    @pytest.mark.parametrize("carry,msd", [
        (0, 0), (0, 1), (0, -1), (1, 0), (1, 1), (-1, 0), (-1, -1),
    ])
    def test_other_patterns_untouched(self, carry, msd):
        assert correct_bogus_overflow(carry, msd) == (carry, msd)

    @pytest.mark.parametrize("carry,msd", [(2, 0), (0, 2), (-2, 0)])
    def test_invalid_digits_rejected(self, carry, msd):
        with pytest.raises(ValueError):
            correct_bogus_overflow(carry, msd)

    def test_correction_preserves_value(self):
        # carry*2^n + msd*2^(n-1): 1*16 + (-1)*8 = 8 == 0*16 + 1*8
        for carry, msd in [(1, -1), (-1, 1)]:
            fixed_carry, fixed_msd = correct_bogus_overflow(carry, msd)
            assert carry * 16 + msd * 8 == fixed_carry * 16 + fixed_msd * 8


class TestNormalizeMsd:
    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=6, max_size=6),
           st.sampled_from([-1, 0, 1]))
    @settings(max_examples=400)
    def test_contract(self, digits, carry):
        """Output is congruent mod 2^w, in TC range, and the overflow flag
        fires exactly when the true (carry-included) value was out of range."""
        n = RBNumber.from_digits(digits)
        # avoid the invalid bogus precondition combinations being double-handled:
        normalized, overflow = normalize_msd(n, carry)
        width = n.width
        true_value = n.value() + (carry << width)
        half = 1 << (width - 1)
        assert (normalized.value() - true_value) % (1 << width) == 0
        assert -half <= normalized.value() < half
        assert overflow == (not -half <= true_value < half)

    def test_event_msd_negative_rest_negative(self):
        # MSD -1 with a negative rest: value < -2^(n-1) -> flip MSD to +1
        n = RBNumber.from_msd_digits([-1, 0, 0, -1])  # -9 in 4 digits
        normalized, overflow = normalize_msd(n)
        assert overflow
        assert normalized.msd() == 1
        assert normalized.value() == 7  # -9 + 16

    def test_event_msd_positive_rest_nonneg(self):
        n = RBNumber.from_msd_digits([1, 0, 0, 0])  # +8 in 4 digits
        normalized, overflow = normalize_msd(n)
        assert overflow
        assert normalized.msd() == -1
        assert normalized.value() == -8

    def test_residual_carry_is_overflow(self):
        n = RBNumber.zero(4)
        _, overflow = normalize_msd(n, carry=1)
        assert overflow

    def test_in_range_untouched(self):
        n = RBNumber.from_msd_digits([0, 1, 0, -1])  # 3
        normalized, overflow = normalize_msd(n)
        assert normalized == n
        assert not overflow
