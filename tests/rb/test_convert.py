"""Tests for TC <-> RB conversion (paper §3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rb.convert import (
    from_twos_complement,
    to_twos_complement,
    to_twos_complement_bits,
)
from repro.rb.number import RBNumber


class TestFromTC:
    def test_paper_encoding_is_hardwired(self):
        """All bits except the sign go to X+; the sign bit goes to X-."""
        n = from_twos_complement(0b0110, 4)
        assert n.plus == 0b0110
        assert n.minus == 0

    def test_negative_sign_in_minus(self):
        n = from_twos_complement(-1, 4)  # bits 1111
        assert n.plus == 0b0111
        assert n.minus == 0b1000
        assert n.value() == -1

    def test_most_negative(self):
        n = from_twos_complement(-8, 4)
        assert n.value() == -8

    def test_accepts_unsigned_pattern(self):
        assert from_twos_complement(0xFF, 8) == from_twos_complement(-1, 8)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            from_twos_complement(0, 0)

    @given(st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
    def test_value_preserved(self, value):
        assert from_twos_complement(value, 16).value() == value


class TestToTC:
    @given(st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
    def test_round_trip(self, value):
        assert to_twos_complement(from_twos_complement(value, 16)) == value

    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=8, max_size=8))
    def test_any_encoding_wraps_mod_2n(self, digits):
        """The hardware subtractor computes X+ - X- mod 2^n; the signed
        result must be congruent to the true represented value."""
        n = RBNumber.from_digits(digits)
        tc = to_twos_complement(n)
        assert -128 <= tc <= 127
        assert (tc - n.value()) % 256 == 0

    def test_bits_view(self):
        n = from_twos_complement(-2, 8)
        assert to_twos_complement_bits(n) == 0xFE
