"""Property tests for the carry-free adder: the heart of the paper's §3.

The adder's contract: for any two fixed-width RB operands (each already in
two's-complement range), the result value equals the wrapped TC sum, the
overflow flag matches TC overflow, and the carry-free digit rule never
leaves {-1, 0, 1}.
"""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rb.adder import interim_digit, rb_add, rb_add_digits, rb_negate, rb_sub
from repro.rb.convert import from_twos_complement
from repro.rb.number import RBNumber
from repro.utils.bitops import to_signed

WIDTH = 8
LO, HI = -(1 << (WIDTH - 1)), (1 << (WIDTH - 1)) - 1

tc_values = st.integers(min_value=LO, max_value=HI)
digit_lists = st.lists(st.sampled_from([-1, 0, 1]), min_size=WIDTH, max_size=WIDTH)


class TestInterimDigit:
    @pytest.mark.parametrize("p", [-2, -1, 0, 1, 2])
    @pytest.mark.parametrize("prev_nonneg", [True, False])
    def test_split_is_exact(self, p, prev_nonneg):
        carry, interim = interim_digit(p, prev_nonneg)
        assert 2 * carry + interim == p
        assert carry in (-1, 0, 1)
        assert interim in (-1, 0, 1)

    def test_carry_sign_discipline(self):
        # both-nonneg below => never emit an interim that could collide with
        # a positive incoming carry; and vice versa.
        assert interim_digit(1, True) == (1, -1)
        assert interim_digit(1, False) == (0, 1)
        assert interim_digit(-1, True) == (0, -1)
        assert interim_digit(-1, False) == (-1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interim_digit(3, True)


class TestRawDigitAdd:
    @given(digit_lists, digit_lists)
    @settings(max_examples=300)
    def test_exact_sum_with_carry(self, xd, yd):
        x = RBNumber.from_digits(xd)
        y = RBNumber.from_digits(yd)
        digits, carry = rb_add_digits(x, y)
        assert all(d in (-1, 0, 1) for d in digits)
        assert carry in (-1, 0, 1)
        total = sum(d << i for i, d in enumerate(digits)) + (carry << WIDTH)
        assert total == x.value() + y.value()

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            rb_add_digits(RBNumber.zero(4), RBNumber.zero(5))


def _reference_add_digits(x: RBNumber, y: RBNumber) -> tuple[list[int], int]:
    """Digit-at-a-time adder built directly on :func:`interim_digit`.

    This is the textbook form of the §3.3 algorithm; the production
    implementation evaluates the same split over whole machine words with
    bitwise masks, and must stay digit-for-digit identical to this loop.
    """
    xd, yd = x.digits(), y.digits()
    carries, interims = [], []
    for i in range(x.width):
        prev_nonneg = i == 0 or (xd[i - 1] >= 0 and yd[i - 1] >= 0)
        carry, interim = interim_digit(xd[i] + yd[i], prev_nonneg)
        carries.append(carry)
        interims.append(interim)
    digits = [
        interims[i] + (carries[i - 1] if i > 0 else 0) for i in range(x.width)
    ]
    return digits, carries[-1]


class TestBitwiseMatchesReference:
    """The word-parallel (mask-based) adder vs the per-digit reference."""

    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive_small_widths(self, width):
        operands = [
            RBNumber.from_digits(list(digits))
            for digits in product((-1, 0, 1), repeat=width)
        ]
        for x in operands:
            for y in operands:
                assert rb_add_digits(x, y) == _reference_add_digits(x, y)

    @given(digit_lists, digit_lists)
    @settings(max_examples=300)
    def test_random_width8(self, xd, yd):
        x = RBNumber.from_digits(xd)
        y = RBNumber.from_digits(yd)
        assert rb_add_digits(x, y) == _reference_add_digits(x, y)


class TestWrappedAdd:
    @given(tc_values, tc_values)
    @settings(max_examples=500)
    def test_matches_twos_complement(self, a, b):
        result = rb_add(from_twos_complement(a, WIDTH), from_twos_complement(b, WIDTH))
        assert result.value.value() == to_signed(a + b, WIDTH)
        assert result.overflow == (not LO <= a + b <= HI)

    @given(tc_values, tc_values)
    @settings(max_examples=300)
    def test_subtraction(self, a, b):
        result = rb_sub(from_twos_complement(a, WIDTH), from_twos_complement(b, WIDTH))
        assert result.value.value() == to_signed(a - b, WIDTH)
        assert result.overflow == (not LO <= a - b <= HI)

    @given(st.lists(tc_values, min_size=1, max_size=30))
    @settings(max_examples=200)
    def test_chained_adds_stay_wrapped(self, addends):
        """Long chains (the paper's forwarding case) keep the invariant:
        the representation always equals the wrapped TC accumulator."""
        accumulator = from_twos_complement(0, WIDTH)
        expected = 0
        for addend in addends:
            accumulator = rb_add(accumulator, from_twos_complement(addend, WIDTH)).value
            expected = to_signed(expected + addend, WIDTH)
            assert accumulator.value() == expected

    def test_paper_increment_sequence(self):
        """§3.5's worked example: 1+1+1... produces exactly these digit
        patterns with the Figure 2 adder."""
        one = from_twos_complement(1, 4)
        value = one
        expected_patterns = [
            [0, 0, 1, 0],    # 2
            [0, 1, 0, -1],   # 3
            [1, -1, 0, 0],   # 4
            [1, -1, 1, -1],  # 5
        ]
        for pattern in expected_patterns:
            value = rb_add(value, one).value
            assert list(reversed(value.digits())) == pattern

    @given(tc_values)
    def test_negate_is_involution(self, a):
        n = from_twos_complement(a, WIDTH)
        assert rb_negate(rb_negate(n)) == n

    @given(tc_values, tc_values)
    @settings(max_examples=200)
    def test_commutative(self, a, b):
        x = from_twos_complement(a, WIDTH)
        y = from_twos_complement(b, WIDTH)
        assert rb_add(x, y).value.value() == rb_add(y, x).value.value()


class TestWiderWidths:
    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
           st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    @settings(max_examples=150)
    def test_64_digit_add(self, a, b):
        result = rb_add(from_twos_complement(a, 64), from_twos_complement(b, 64))
        assert result.value.value() == to_signed(a + b, 64)

    @given(st.integers(min_value=1, max_value=12))
    def test_add_zero_identity(self, width):
        zero = RBNumber.zero(width)
        assert rb_add(zero, zero).value.value() == 0
        assert not rb_add(zero, zero).overflow
