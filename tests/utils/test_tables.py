"""Tests for the text table/bar renderers."""

import pytest

from repro.utils.tables import format_bar_chart, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["longer", 2]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["h"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.235" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestBarChart:
    def test_renders_all_series(self):
        out = format_bar_chart(["w1"], {"m1": [1.0], "m2": [0.5]})
        assert "m1" in out and "m2" in out
        assert out.count("#") > 0

    def test_scaling_to_peak(self):
        out = format_bar_chart(["w"], {"big": [2.0], "small": [1.0]}, width=10)
        lines = [line for line in out.splitlines() if "#" in line]
        big_bar = lines[0].count("#")
        small_bar = lines[1].count("#")
        assert big_bar == 10
        assert small_bar == 5

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart(["w"], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart(["w1", "w2"], {"m": [1.0]})
