"""Tests for means and the categorical Distribution."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import Distribution, geometric_mean, harmonic_mean, mean


class TestMeans:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_harmonic_mean_known(self):
        assert harmonic_mean([1, 1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 2]) == pytest.approx(2.0)
        assert harmonic_mean([1, 2]) == pytest.approx(4 / 3)

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_geometric_mean_known(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20))
    def test_mean_inequality(self, values):
        # harmonic <= geometric <= arithmetic
        h = harmonic_mean(values)
        g = geometric_mean(values)
        a = mean(values)
        assert h <= g + 1e-9
        assert g <= a + 1e-9

    @given(st.floats(min_value=0.1, max_value=50), st.integers(min_value=1, max_value=10))
    def test_means_of_constant(self, value, count):
        values = [value] * count
        assert harmonic_mean(values) == pytest.approx(value)
        assert geometric_mean(values) == pytest.approx(value)
        assert mean(values) == pytest.approx(value)


class TestDistribution:
    def test_empty(self):
        d = Distribution()
        assert d.total == 0
        assert d.fraction("x") == 0.0
        assert d.fractions() == {}

    def test_record_and_fraction(self):
        d = Distribution()
        d.record("a")
        d.record("b", 3)
        assert d.total == 4
        assert d.count("b") == 3
        assert d.fraction("a") == pytest.approx(0.25)

    def test_fractions_sum_to_one(self):
        d = Distribution()
        for category, n in [("x", 5), ("y", 3), ("z", 2)]:
            d.record(category, n)
        assert sum(d.fractions().values()) == pytest.approx(1.0)

    def test_merge(self):
        a = Distribution()
        a.record("x", 2)
        b = Distribution()
        b.record("x")
        b.record("y")
        a.merge(b)
        assert a.count("x") == 3
        assert a.count("y") == 1

    def test_as_dict(self):
        d = Distribution()
        d.record(1, 7)
        assert d.as_dict() == {1: 7}

    def test_from_dict_round_trip(self):
        d = Distribution()
        d.record("x", 4)
        d.record("y")
        assert Distribution.from_dict(d.as_dict()) == d

    def test_from_dict_skips_zero_counts(self):
        d = Distribution.from_dict({"x": 0, "y": 2})
        assert d.as_dict() == {"y": 2}
        assert d.total == 2

    def test_from_dict_rejects_negative(self):
        with pytest.raises(ValueError):
            Distribution.from_dict({"x": -1})

    def test_equality(self):
        a = Distribution()
        a.record("x", 2)
        b = Distribution.from_dict({"x": 2})
        assert a == b
        b.record("x")
        assert a != b
        assert a != {"x": 2}

    def test_merge_then_as_dict_round_trip(self):
        a = Distribution.from_dict({"x": 1})
        a.merge(Distribution.from_dict({"x": 2, "y": 5}))
        assert Distribution.from_dict(a.as_dict()) == a
