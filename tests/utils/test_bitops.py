"""Unit and property tests for the 64-bit two's-complement helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    MASK64,
    bit,
    count_leading_zeros,
    count_trailing_zeros,
    extract_bits,
    popcount,
    sign_extend,
    to_signed,
    to_unsigned,
    wrap64,
)


class TestWrap64:
    def test_identity_in_range(self):
        assert wrap64(12345) == 12345

    def test_negative(self):
        assert wrap64(-1) == MASK64

    def test_overflow_wraps(self):
        assert wrap64(1 << 64) == 0
        assert wrap64((1 << 64) + 7) == 7

    @given(st.integers())
    def test_always_in_range(self, value):
        assert 0 <= wrap64(value) <= MASK64


class TestSignedness:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(MASK64) == -1
        assert to_signed(1 << 63) == -(1 << 63)

    def test_to_signed_small_width(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127

    def test_to_unsigned_round_trip_negative(self):
        assert to_unsigned(-1, 8) == 0xFF

    def test_width_validation(self):
        with pytest.raises(ValueError):
            to_signed(0, 0)
        with pytest.raises(ValueError):
            to_unsigned(0, -3)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_round_trip_64(self, value):
        assert to_signed(to_unsigned(value)) == value

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=1, max_value=16))
    def test_round_trip_any_width(self, value, width):
        masked = value & ((1 << width) - 1)
        assert to_unsigned(to_signed(masked, width), width) == masked


class TestSignExtend:
    def test_positive_stays(self):
        assert sign_extend(0x7F, 8) == 0x7F

    def test_negative_extends(self):
        assert sign_extend(0x80, 8) == wrap64(-128)

    def test_bad_widths(self):
        with pytest.raises(ValueError):
            sign_extend(0, 0)
        with pytest.raises(ValueError):
            sign_extend(0, 65)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_matches_to_signed(self, value):
        assert sign_extend(value, 32) == wrap64(to_signed(value, 32))


class TestBitHelpers:
    def test_bit(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0

    def test_extract_bits(self):
        assert extract_bits(0xABCD, 4, 8) == 0xBC

    def test_extract_bits_validates_count(self):
        with pytest.raises(ValueError):
            extract_bits(1, 0, 0)


class TestCounts:
    def test_clz_zero(self):
        assert count_leading_zeros(0) == 64
        assert count_leading_zeros(0, 8) == 8

    def test_clz_msb(self):
        assert count_leading_zeros(1 << 63) == 0

    def test_ctz_zero(self):
        assert count_trailing_zeros(0) == 64

    def test_ctz_values(self):
        assert count_trailing_zeros(0b1000) == 3
        assert count_trailing_zeros(1) == 0

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(MASK64) == 64
        assert popcount(0b1011) == 3

    @given(st.integers(min_value=1, max_value=MASK64))
    def test_clz_ctz_consistent(self, value):
        assert count_leading_zeros(value) == 64 - value.bit_length()
        low = value & -value
        assert count_trailing_zeros(value) == low.bit_length() - 1

    @given(st.integers(min_value=0, max_value=MASK64))
    def test_popcount_matches_builtin(self, value):
        assert popcount(value) == bin(value).count("1")
