"""Durability contract of :func:`repro.utils.files.atomic_write_text`."""

import os

import pytest

from repro.utils import files
from repro.utils.files import atomic_write_text


class TestAtomicWriteText:
    def test_roundtrip_and_overwrite(self, tmp_path):
        path = tmp_path / "nested" / "out.json"
        atomic_write_text(path, "one")
        assert path.read_text() == "one"
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert list(path.parent.iterdir()) == [path]  # no stray temp files

    def test_temp_file_fsynced_before_rename(self, tmp_path, monkeypatch):
        """The temp file must hit stable storage before it is renamed in.

        ``os.replace`` is atomic but says nothing about the *contents*
        being flushed; without an fsync first, a power loss just after
        the rename can surface an empty file under the final name — the
        one failure mode an "atomic" writer exists to prevent.
        """
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            events.append(("fsync", fd))
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("replace", src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(files.os, "fsync", spy_fsync)
        monkeypatch.setattr(files.os, "replace", spy_replace)
        path = tmp_path / "durable.json"
        atomic_write_text(path, "payload")
        kinds = [event[0] for event in events]
        assert "fsync" in kinds, "temp file was never fsync'd"
        assert kinds.index("fsync") < kinds.index("replace")
        assert path.read_text() == "payload"

    def test_failed_write_leaves_no_temp_file(self, tmp_path, monkeypatch):
        def exploding_fsync(fd):
            raise OSError("disk on fire")

        monkeypatch.setattr(files.os, "fsync", exploding_fsync)
        path = tmp_path / "out.json"
        with pytest.raises(OSError):
            atomic_write_text(path, "payload")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []
