"""Tests for the staggered-add machine (Figure 1 Configuration C, §2)."""

import pytest

from repro.backend.bypass import BypassModel
from repro.backend.formats import DataFormat
from repro.backend.latency import AdderStyle, LatencyModel
from repro.core import baseline, ideal, rb_full, simulate
from repro.core.presets import staggered
from repro.isa.opcodes import LatencyClass
from repro.workloads.generators import (
    conversion_chain_program,
    dependent_chain_program,
)


class TestLatencyModel:
    def test_adds_stagger(self):
        model = LatencyModel(AdderStyle.STAGGERED)
        assert model.exec_latency(LatencyClass.INT_ARITH) == 1
        assert model.tc_latency(LatencyClass.INT_ARITH) == 2
        assert model.produces_rb(LatencyClass.INT_ARITH)

    def test_other_classes_are_baseline(self):
        model = LatencyModel(AdderStyle.STAGGERED)
        base = LatencyModel(AdderStyle.BASELINE)
        for cls in (LatencyClass.INT_LOGICAL, LatencyClass.INT_COMPARE,
                    LatencyClass.SHIFT_LEFT, LatencyClass.INT_MUL):
            assert model.exec_latency(cls) == base.exec_latency(cls)
            assert model.tc_latency(cls) == base.tc_latency(cls)
            assert not model.produces_rb(cls)

    def test_templates(self):
        model = BypassModel(AdderStyle.STAGGERED)
        templates = model.templates(LatencyClass.INT_ARITH, True)
        assert templates[DataFormat.RB].first_offset == 1   # low half to adds
        assert templates[DataFormat.TC].first_offset == 2   # full result


class TestFigure1Configurations:
    """Figure 1: A = 1-cycle ALUs, B = 2-cycle pipelined, C = staggered."""

    @pytest.fixture(scope="class")
    def chain_ipc(self):
        program = dependent_chain_program(iterations=800, chain_length=4)
        return {
            "B": simulate(baseline(8), program).ipc,
            "C": simulate(staggered(8), program).ipc,
            "A": simulate(ideal(8), program).ipc,
        }

    def test_config_c_executes_dependent_adds_back_to_back(self, chain_ipc):
        """'Configuration C ... allows a dependent chain of instructions
        to execute in consecutive cycles.'"""
        assert chain_ipc["C"] == pytest.approx(chain_ipc["A"], rel=0.02)

    def test_config_b_cannot(self, chain_ipc):
        """'Dependent instructions cannot execute in back-to-back cycles
        in this configuration.'"""
        assert chain_ipc["B"] < chain_ipc["C"] * 0.7

    def test_intermediate_results_only_help_adds(self):
        """On an add->logical chain, the staggered forwarding is useless
        (the logical needs the full result), so C == B; and unlike the RB
        machine, C pays no conversion, so C beats RB here."""
        program = conversion_chain_program(iterations=800)
        b = simulate(baseline(8), program)
        c = simulate(staggered(8), program)
        rb = simulate(rb_full(8), program)
        assert c.cycles == pytest.approx(b.cycles, rel=0.01)
        assert c.ipc > rb.ipc

    def test_same_architectural_results(self):
        program = dependent_chain_program(iterations=100, chain_length=2)
        b = simulate(baseline(4), program)
        c = simulate(staggered(4), program)
        assert b.instructions == c.instructions
