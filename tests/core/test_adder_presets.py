"""Tests for the adder-derived machine presets (the Pareto axis).

The mapping under test: a formally proven netlist's critical path → a
pipeline depth the timing model understands (1 or 2 adder cycles) → a
clock period, packaged as a :class:`MachineConfig`.  The numbers here
are derived from the pinned delay table in
``tests/circuits/test_delays.py`` with τ0 = delay(cla, 64) / 2 = 11.5.
"""

import pytest

from repro.backend.bypass import BypassStyle
from repro.backend.latency import AdderStyle
from repro.core.config import MachineConfig
from repro.core.presets import (
    PARETO_ADDER_FAMILIES,
    adder_designs,
    adder_machine,
    pareto_machines,
)


class TestAdderDesigns:
    @pytest.fixture(scope="class")
    def designs(self):
        return adder_designs(data_width=64)

    def test_covers_every_family(self, designs):
        assert set(designs) == set(PARETO_ADDER_FAMILIES)

    def test_stage_time_is_half_the_cla(self, designs):
        assert all(d.stage_time == 11.5 for d in designs.values())

    def test_cla_is_the_baseline_point(self, designs):
        cla = designs["cla"]
        assert cla.cycles == 2
        assert cla.adder_style is AdderStyle.BASELINE
        assert cla.cycle_time == 11.5
        assert cla.slowdown == 1.0

    def test_rb_is_single_cycle_at_the_baseline_clock(self, designs):
        rb = designs["rb"]
        assert rb.cycles == 1
        assert rb.adder_style is AdderStyle.RB
        # Its 9.5-unit chain fits the 11.5-unit clock with slack; the
        # clock never runs faster than τ0.
        assert rb.cycle_time == 11.5
        assert rb.slowdown == 1.0

    @pytest.mark.parametrize("family,cycle_time", [
        ("ripple", 97.0),
        ("dual_bit", 50.75),
        ("early_output", 65.0),
        ("carry_select", 20.0),
        ("hybrid_select_cla", 14.0),
    ])
    def test_two_cycle_designs_stretch_the_clock(self, designs, family, cycle_time):
        design = designs[family]
        assert design.cycles == 2
        assert design.adder_style is AdderStyle.BASELINE
        assert design.cycle_time == cycle_time
        assert design.slowdown == cycle_time / 11.5

    def test_family_subset_and_validation(self):
        subset = adder_designs(64, families=("cla", "rb"))
        assert set(subset) == {"cla", "rb"}
        with pytest.raises(ValueError, match="unknown adder families"):
            adder_designs(64, families=("cla", "booth"))


class TestAdderMachines:
    def test_tc_machine_inherits_only_clock_and_style(self):
        design = adder_designs(64)["hybrid_select_cla"]
        machine = adder_machine(design, 4)
        assert machine.name == "Pareto-hybrid_select_cla-4w"
        assert machine.adder_style is AdderStyle.BASELINE
        assert machine.bypass_style is BypassStyle.FULL
        assert machine.cycle_time == 14.0

    def test_rb_machine_carries_the_paper_cost_model(self):
        machine = adder_machine(adder_designs(64)["rb"], 8)
        assert machine.adder_style is AdderStyle.RB
        assert machine.bypass_style is BypassStyle.RB_LIMITED
        assert machine.cycle_time == 11.5

    def test_grid_size(self):
        machines = pareto_machines(widths=(4, 8))
        assert len(machines) == 2 * len(PARETO_ADDER_FAMILIES)
        assert len({m.name for m in machines}) == len(machines)


class TestCycleTime:
    def test_default_is_unit_and_silent(self):
        config = MachineConfig("x", width=4, adder_style=AdderStyle.IDEAL)
        assert config.cycle_time == 1.0
        assert "clock" not in config.describe()

    def test_nonpositive_rejected(self):
        for bad in (0.0, -11.5):
            with pytest.raises(ValueError, match="cycle time"):
                MachineConfig("x", width=4, adder_style=AdderStyle.IDEAL,
                              cycle_time=bad)

    def test_describe_mentions_stretched_clock(self):
        config = MachineConfig("x", width=4, adder_style=AdderStyle.BASELINE,
                               cycle_time=14.0)
        assert "14τ clock" in config.describe()
