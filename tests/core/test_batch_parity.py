"""Batched lockstep simulation is bit-identical to solo runs.

:func:`~repro.core.engine.run_soa_batch` advances N independent machine
states over one decoded program, sharing the fetch probe, rename plans,
and steering columns.  Its contract is the same as the SoA engine's and
cycle skipping's: an implementation detail that changes no observable
output.  These tests audit that claim over mixed presets, mixed widths,
and mixed per-config ``cycle_skip`` settings, pin the ``run_batch``
convenience API and the ``batchable`` predicate, and keep two
regressions dead: the three-source CMOV overflow in the rename plan,
and the silent engine downgrade on an explicit ``engine="soa"``
request.
"""

import dataclasses
import logging

import pytest

from repro.core import machine as machine_module
from repro.core.engine import batchable, run_soa_batch
from repro.core.machine import Machine, run_batch
from repro.core.presets import (
    baseline,
    ideal,
    paper_matrix,
    rb_full,
    rb_limited,
)
from repro.verify.differential import diff_batch, first_divergence
from repro.verify.fuzz import fuzz_program
from repro.workloads.suite import build

PRESETS = (baseline, rb_limited, rb_full, ideal)
KERNELS = ("ijpeg", "li", "compress")

_programs: dict[str, object] = {}


def _program(name):
    if name not in _programs:
        _programs[name] = build(name)
    return _programs[name]


class TestBatchParity:
    """The ISSUE's acceptance grid: 4 presets x 3 kernels x 2 widths."""

    @pytest.mark.parametrize("width", (4, 8))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_mixed_preset_batch(self, kernel, width):
        configs = [preset(width) for preset in PRESETS]
        skips = [index % 2 == 0 for index in range(len(configs))]
        divergences = diff_batch(configs, _program(kernel), cycle_skip=skips)
        assert divergences == [], [d.describe() for d in divergences]

    def test_mixed_width_batch(self):
        configs = [baseline(4), baseline(8), rb_full(4), rb_full(8)]
        divergences = diff_batch(configs, _program("li"))
        assert divergences == [], [d.describe() for d in divergences]

    def test_three_source_cmov_parity(self):
        # Conditional moves read three registers (condition, value, old
        # destination); the rename plan packs (s0, s1) and spills the
        # rest to the sparse overflow column.  This program used to
        # raise "more than two renamed sources" instead of simulating.
        program = fuzz_program("mixed", 0)
        assert any(
            sum(1 for op in instr.sources if op.is_reg and op.reg != 0) > 2
            for instr in program.instructions
        ), "fixture lost its three-source instruction"
        divergences = diff_batch(
            [baseline(4), rb_full(8)], program, cycle_skip=[True, False]
        )
        assert divergences == [], [d.describe() for d in divergences]


class TestRunBatchApi:
    def test_matches_solo_runs(self):
        configs = [baseline(4), ideal(4)]
        batch = run_batch(configs, "compress")
        for config, stats in zip(configs, batch):
            solo = Machine(config).run(_program("compress"))
            assert first_divergence(solo.to_dict(), stats.to_dict()) is None

    def test_batch_seconds_recorded(self):
        stats = run_batch([baseline(4)], "compress")[0]
        assert stats.batch_seconds > 0

    def test_unbatchable_config_still_exact(self):
        # Dependence steering cannot be precomputed; run_soa_batch must
        # fall back to a solo run for it, not refuse the whole batch.
        steered = dataclasses.replace(
            baseline(4), name="dep-steer", steering_policy="dependence"
        )
        configs = [baseline(4), steered]
        batch = run_soa_batch(
            [Machine(config) for config in configs], _program("compress")
        )
        for config, stats in zip(configs, batch):
            solo = Machine(config).run(_program("compress"))
            assert first_divergence(solo.to_dict(), stats.to_dict()) is None

    def test_batchable_predicate(self):
        assert batchable(baseline(4))
        assert not batchable(
            dataclasses.replace(
                baseline(4), name="dep-steer", steering_policy="dependence"
            )
        )

    def test_paper_matrix_covers_both_widths(self):
        matrix = paper_matrix()
        assert len(matrix) == 8
        assert {config.width for config in matrix} == {4, 8}
        assert all(batchable(config) for config in matrix)


class TestExplicitSoaDowngrade:
    """engine="soa" + object-graph features must downgrade *loudly*."""

    def test_explicit_request_counts_downgrade(self, monkeypatch):
        monkeypatch.setattr(machine_module, "_DOWNGRADE_WARNED", True)
        stats = Machine(baseline(4)).run(
            _program("compress"), engine="soa", record_trace=True
        )
        counters = stats.to_dict()["metrics"]["counters"]
        assert counters["core.engine.downgraded"] == 1
        assert stats.trace is not None

    def test_warning_logged_once_per_process(self, monkeypatch, caplog):
        monkeypatch.setattr(machine_module, "_DOWNGRADE_WARNED", False)
        with caplog.at_level(logging.WARNING, logger="repro.core.machine"):
            for _ in range(2):
                Machine(baseline(4)).run(
                    _program("compress"), engine="soa", record_trace=True
                )
        warnings = [
            record for record in caplog.records
            if "running the object engine instead" in record.getMessage()
        ]
        assert len(warnings) == 1

    def test_implicit_selection_not_counted(self, monkeypatch):
        # engine=None resolving to the SoA default and then needing the
        # object graph is normal selection, not a downgrade of an
        # explicit request — no counter, no warning.
        monkeypatch.setattr(machine_module, "_DOWNGRADE_WARNED", True)
        stats = Machine(baseline(4)).run(
            _program("compress"), record_trace=True
        )
        counters = stats.to_dict()["metrics"]["counters"]
        assert "core.engine.downgraded" not in counters
