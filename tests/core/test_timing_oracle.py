"""Timing oracle: the simulator can never beat the dependence graph.

For any traced run, an independent dataflow lower bound is computed from
the retired trace: an instruction cannot be selected before each of its
producers' select cycles plus the *best-case* reachable offset for the
format it consumed (ignoring select contention, steering, holes, fetch
and memory stalls).  The simulator's actual select cycles must respect
that bound everywhere — a strong guard against optimistic-timing bugs
(e.g. a consumer sneaking a value before its producer made it).
"""

import pytest

from repro.core import baseline, ideal, ideal_limited, rb_full, rb_limited
from repro.core.machine import Machine
from repro.workloads.generators import (
    conversion_chain_program,
    dependent_chain_program,
)
from repro.workloads.suite import build

CONFIGS = [
    baseline(8), rb_limited(8), rb_full(8), ideal(8),
    ideal_limited(8, {1, 2}), rb_limited(4),
]

PROGRAMS = {
    "chain": lambda: dependent_chain_program(iterations=150, chain_length=3),
    "conv": lambda: conversion_chain_program(iterations=150),
    "ijpeg": lambda: build("ijpeg"),
}


def dataflow_lower_bounds(trace, cluster_delay):
    """Earliest legal select per instruction, from producers only."""
    bounds = {}
    for rec in trace:
        bound = 0
        for producer, fmt in rec.sources:
            adjust = cluster_delay if producer.cluster != rec.cluster else 0
            earliest = (producer.select_cycle + adjust
                        + producer.templates[fmt].first_offset)
            bound = max(bound, earliest)
        if rec.store_dep is not None:
            bound = max(bound, rec.store_dep.select_cycle + 1)
        bounds[rec.seq] = bound
    return bounds


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_simulator_never_beats_dataflow(config, program_name):
    program = PROGRAMS[program_name]()
    stats = Machine(config).run(program, record_trace=True)
    bounds = dataflow_lower_bounds(stats.trace, config.cluster_delay)
    for rec in stats.trace:
        assert rec.select_cycle >= bounds[rec.seq], rec

    # and the total cycle count can never beat the longest dataflow chain
    finish = max(rec.select_cycle for rec in stats.trace)
    critical = max(bounds.values())
    assert finish >= critical


def test_serial_chain_bound_is_tight_on_ideal():
    """On the Ideal machine with perfect prediction, a pure serial chain
    should run *at* the dataflow bound (each add exactly 1 apart)."""
    program = dependent_chain_program(iterations=200, chain_length=4)
    stats = Machine(ideal(8)).run(program, record_trace=True)
    adds = [rec for rec in stats.trace if rec.instr.text.startswith("add")]
    gaps = [b.select_cycle - a.select_cycle for a, b in zip(adds, adds[1:])]
    # within an iteration the chain is back-to-back
    assert all(gap >= 1 for gap in gaps)
    assert sum(gaps) / len(gaps) == pytest.approx(1.25, abs=0.3)
