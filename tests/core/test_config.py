"""Tests for machine configuration and presets."""

import pytest

from repro.backend.bypass import BypassStyle
from repro.backend.latency import AdderStyle
from repro.core.config import MachineConfig
from repro.core.presets import (
    FIG14_VARIANTS,
    all_paper_machines,
    baseline,
    ideal,
    ideal_limited,
    rb_full,
    rb_limited,
)


class TestMachineConfig:
    def test_eight_wide_paper_geometry(self):
        config = ideal(8)
        assert config.num_schedulers == 4
        assert config.scheduler_capacity == 32
        assert config.num_clusters == 2
        assert config.fetch_width == 8
        assert config.window_size == 128

    def test_four_wide_paper_geometry(self):
        config = ideal(4)
        assert config.num_schedulers == 2
        assert config.scheduler_capacity == 64
        assert config.num_clusters == 1

    def test_cluster_assignment(self):
        config = ideal(8)
        assert [config.cluster_of_scheduler(i) for i in range(4)] == [0, 0, 1, 1]

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig("x", width=5, adder_style=AdderStyle.IDEAL)

    def test_indivisible_window_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig("x", width=6, adder_style=AdderStyle.IDEAL,
                          window_size=100)

    def test_describe_mentions_bypass(self):
        text = ideal_limited(8, {1, 2}).describe()
        assert "no levels [1, 2]" in text


class TestPresets:
    def test_paper_machines_styles(self):
        machines = all_paper_machines(8)
        assert [m.adder_style for m in machines] == [
            AdderStyle.BASELINE, AdderStyle.RB, AdderStyle.RB, AdderStyle.IDEAL
        ]
        assert machines[1].bypass_style is BypassStyle.RB_LIMITED
        assert machines[2].bypass_style is BypassStyle.FULL

    def test_names_unique(self):
        names = {m.name for m in all_paper_machines(4) + all_paper_machines(8)}
        assert len(names) == 8

    def test_fig14_variants(self):
        assert frozenset({1}) in FIG14_VARIANTS
        assert frozenset({2, 3}) in FIG14_VARIANTS
        assert len(FIG14_VARIANTS) == 5

    def test_ideal_limited_name(self):
        assert ideal_limited(4, {2, 1}).name == "Ideal-No-1,2-4w"

    @pytest.mark.parametrize("factory", [baseline, rb_limited, rb_full, ideal])
    def test_both_widths_construct(self, factory):
        for width in (4, 8):
            config = factory(width)
            assert config.width == width
