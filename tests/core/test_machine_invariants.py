"""Machine-wide invariants, verified post-hoc on execution traces.

A random (but terminating) program generator drives the paper's machines;
the retired trace is then replayed against the model's own rules:

* every source operand was reachable, per its producer's availability
  template, at the consumer's select cycle (holes were respected);
* no scheduler ever selected more than 2 instructions per cycle;
* retirement is in order and within the retire width;
* the functional results match the plain interpreter exactly.
"""

import random

import pytest

from repro.backend.formats import DataFormat
from repro.core import baseline, ideal, ideal_limited, rb_full, rb_limited
from repro.core.machine import Machine
from repro.isa.assembler import assemble
from repro.isa.semantics import run_program

MACHINES = [
    baseline(8), rb_limited(8), rb_full(8), ideal(8),
    ideal_limited(8, {2, 3}), baseline(4), rb_full(4), ideal_limited(4, {1}),
]

_OPS3 = ["add", "sub", "and", "bis", "xor", "s4add", "cmplt", "cmpeq",
         "sll", "srl", "mul", "extb"]


def random_program(seed: int) -> str:
    """A loop over a random straight-line body with a couple of memory ops."""
    rng = random.Random(seed)
    lines = [
        "    .data",
        "buf:    .space 256",
        "    .text",
        "main:",
        "    lda r20, buf",
        "    lda r21, 120(zero)",   # loop counter
    ]
    for reg in range(1, 8):
        lines.append(f"    lda r{reg}, {rng.randint(0, 999)}(zero)")
    lines.append("loop:")
    for _ in range(rng.randint(6, 14)):
        op = rng.choice(_OPS3)
        a = rng.randint(1, 7)
        if rng.random() < 0.4:
            b = f"#{rng.randint(0, 63)}"
        else:
            b = f"r{rng.randint(1, 7)}"
        c = rng.randint(1, 7)
        lines.append(f"    {op} r{a}, {b}, r{c}")
    offset = rng.randrange(0, 31) * 8
    lines.append(f"    stq r{rng.randint(1, 7)}, {offset}(r20)")
    lines.append(f"    ldq r{rng.randint(1, 7)}, {offset}(r20)")
    lines.append("    sub r21, #1, r21")
    lines.append("    bgt r21, loop")
    lines.append("    halt")
    return "\n".join(lines)


def replay_and_check(machine: Machine, program) -> None:
    stats = machine.run(program, record_trace=True)
    trace = stats.trace
    config = machine.config
    cluster_delay = config.cluster_delay

    # (1) availability respected for every source at the select cycle
    for rec in trace:
        for producer, fmt in rec.sources:
            assert producer.select_cycle is not None
            assert producer.select_cycle <= rec.select_cycle
            adjust = cluster_delay if producer.cluster != rec.cluster else 0
            offset = rec.select_cycle - producer.select_cycle - adjust
            template = producer.templates[fmt]
            assert template.available(offset), (
                f"{rec.instr} consumed {producer.instr} at offset {offset}, "
                f"template {template}"
            )
        if rec.store_dep is not None:
            assert rec.select_cycle >= rec.store_dep.select_cycle + 1

    # (2) select bandwidth: <= 2 per scheduler per cycle
    per_slot: dict = {}
    for rec in trace:
        key = (rec.scheduler, rec.select_cycle)
        per_slot[key] = per_slot.get(key, 0) + 1
    assert all(count <= 2 for count in per_slot.values())

    # (3) seq order is program order, and the trace is complete
    assert [rec.seq for rec in trace] == sorted(rec.seq for rec in trace)
    assert len(trace) == stats.instructions

    # (4) the RB_OK/TC_ONLY split: TC consumers never observe an RB value
    # before its conversion completes
    for rec in trace:
        for producer, fmt in rec.sources:
            if fmt is DataFormat.TC and producer.produces_rb:
                adjust = cluster_delay if producer.cluster != rec.cluster else 0
                offset = rec.select_cycle - producer.select_cycle - adjust
                assert offset >= producer.lat_tc


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("machine_config", MACHINES, ids=lambda c: c.name)
def test_trace_invariants(machine_config, seed):
    program = assemble(random_program(seed), f"random{seed}")
    replay_and_check(Machine(machine_config), program)


@pytest.mark.parametrize("seed", range(6))
def test_functional_equivalence_across_machines(seed):
    """Every machine retires the same architectural results."""
    program = assemble(random_program(seed), f"random{seed}")
    reference = run_program(program)
    for config in (baseline(8), rb_limited(8), ideal_limited(4, {1, 2})):
        machine_stats = Machine(config).run(program, record_trace=True)
        assert machine_stats.instructions == reference.instructions_executed
        # final value of every register matches (trace replays state)
        last_writes = {}
        for rec in machine_stats.trace:
            if rec.instr.dest is not None and rec.result.dest_value is not None:
                last_writes[rec.instr.dest] = rec.result.dest_value
        for reg, value in last_writes.items():
            if reg != 31:
                assert reference.regs[reg] == value, f"r{reg}"
