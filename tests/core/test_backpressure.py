"""Backpressure and failure-injection tests: the machine under stress.

Shrunk structures (tiny windows, ROBs, queues) force every stall path to
fire; the invariants must hold anyway and the architectural results must
not change.
"""

from dataclasses import replace

import pytest

from repro.core import ideal, simulate
from repro.core.machine import Machine
from repro.isa.assembler import assemble
from repro.isa.semantics import run_program
from repro.mem.hierarchy import MemoryHierarchyConfig
from repro.workloads.generators import dependent_chain_program
from repro.workloads.suite import build


def tiny(config, **overrides):
    return replace(config, **overrides)


class TestWindowPressure:
    def test_tiny_scheduler_window_still_correct(self):
        program = build("ijpeg")
        reference = run_program(program)
        config = tiny(ideal(4), name="tiny-window", window_size=8, rob_size=16)
        stats = simulate(config, program)
        assert stats.instructions == reference.instructions_executed

    def test_tiny_window_costs_ipc(self):
        program = build("ijpeg")
        big = simulate(ideal(4), program).ipc
        small = simulate(
            tiny(ideal(4), name="tiny-window2", window_size=8, rob_size=16), program
        ).ipc
        assert small < big

    def test_rob_of_one_serializes(self):
        """ROB=1 degenerates to one instruction in flight at a time; it
        must still finish, slowly."""
        program = dependent_chain_program(iterations=30, chain_length=2)
        config = tiny(ideal(4), name="rob1", rob_size=1, window_size=8)
        stats = simulate(config, program)
        assert stats.instructions == run_program(program).instructions_executed
        assert stats.ipc < 0.2

    def test_tiny_fetch_queue(self):
        program = dependent_chain_program(iterations=100)
        config = tiny(ideal(8), name="fq1", fetch_queue_capacity=1)
        stats = simulate(config, program)
        assert stats.instructions == run_program(program).instructions_executed


class TestLongLatencyPressure:
    def test_serial_fdiv_chain_fills_window(self):
        """32-cycle divides back to back: retirement stalls, the window
        fills, rename stalls — and the machine drains cleanly."""
        source = """
    .text
main:
    lda r1, 20(zero)
    lda r2, 1000(zero)
loop:
    fdiv r2, #3, r2
    fdiv r2, #3, r2
    sub r1, #1, r1
    bgt r1, loop
    halt
"""
        program = assemble(source, "divchain")
        config = tiny(ideal(4), name="divpress", window_size=8, rob_size=8)
        stats = simulate(config, program)
        assert stats.instructions == run_program(program).instructions_executed
        # each iteration carries two serial 32-cycle divides
        assert stats.cycles > 20 * 2 * 32

    def test_slow_memory_pressure(self):
        """500-cycle DRAM under a dependent pointer chase: the machine
        must tolerate (not deadlock on) repeated full-window stalls."""
        from repro.workloads.generators import pointer_chase_program
        program = pointer_chase_program(nodes=48, laps=1)
        memory = MemoryHierarchyConfig(memory_latency=500)
        config = tiny(ideal(4), name="slowmem", memory=memory,
                      window_size=16, rob_size=16)
        stats = simulate(config, program)
        assert stats.instructions == run_program(program).instructions_executed
        assert stats.dcache_misses > 0


class TestDegenerateConfigs:
    def test_two_wide_machine(self):
        """width=2: one scheduler, select-2 — the narrowest legal machine."""
        config = replace(ideal(4), name="narrow", width=2)
        program = build("ijpeg")
        stats = simulate(config, program)
        assert stats.instructions == run_program(program).instructions_executed

    def test_single_blocks_per_cycle(self):
        config = replace(ideal(8), name="oneblock", max_blocks_per_cycle=1)
        program = build("li")
        stats = simulate(config, program)
        assert stats.instructions == run_program(program).instructions_executed

    def test_retire_width_one(self):
        program = dependent_chain_program(iterations=100, chain_length=1)
        config = replace(ideal(4), name="ret1", retire_width=1)
        stats = simulate(config, program)
        reference = run_program(program).instructions_executed
        assert stats.instructions == reference
        # retirement itself becomes the bottleneck: >= 1 cycle/instruction
        assert stats.cycles >= reference
