"""A reused :class:`Machine` must be indistinguishable from a fresh one.

The serial runner reuses one machine across a whole sweep while the pool
workers build a fresh machine per run; any state leaking across
:meth:`Machine.run` calls would make "parallel sweeps are identical to
serial" silently false.  Pinned here directly, and continuously fuzzed
by ``repro check``'s machine-reuse differential.
"""

from repro.core.machine import Machine
from repro.core.presets import all_paper_machines, rb_limited
from repro.verify.differential import diff_machine_reuse, first_divergence
from repro.verify.fuzz import fuzz_program
from repro.workloads.suite import build


class TestMachineReuse:
    def test_reused_machine_matches_fresh_on_suite_kernel(self):
        program = build("compress")
        warmup = build("li")
        for config in all_paper_machines(4):
            machine = Machine(config)
            machine.run(warmup)
            reused = machine.run(program)
            fresh = Machine(config).run(program)
            assert first_divergence(reused.to_dict(), fresh.to_dict()) is None, (
                config.name
            )

    def test_reuse_differential_on_fuzzed_kernels(self):
        config = rb_limited(4)
        programs = [fuzz_program("mixed", seed) for seed in (0, 1)]
        assert diff_machine_reuse(config, programs[0], programs[1]) is None
        assert diff_machine_reuse(config, programs[1], programs[0]) is None

    def test_back_to_back_runs_of_same_program_identical(self):
        config = rb_limited(4)
        program = build("ijpeg")
        machine = Machine(config)
        first = machine.run(program)
        second = machine.run(program)
        assert first.to_dict() == second.to_dict()
