"""Tests for SimStats bookkeeping and derived metrics."""

import pytest

from repro.core.statistics import BypassCase, BypassLevelUse, SimStats


class TestDerivedMetrics:
    def test_ipc(self):
        stats = SimStats(cycles=200, instructions=500)
        assert stats.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_misprediction_rate(self):
        stats = SimStats(branches=100, mispredictions=7)
        assert stats.misprediction_rate == pytest.approx(0.07)
        assert SimStats().misprediction_rate == 0.0

    def test_dcache_hit_rate(self):
        stats = SimStats(dcache_hits=90, dcache_misses=10)
        assert stats.dcache_hit_rate == pytest.approx(0.9)

    def test_bypass_fractions(self):
        stats = SimStats(instructions=100, instructions_with_bypass=60)
        stats.bypass_cases.record(BypassCase.TC_TO_TC, 3)
        stats.bypass_cases.record(BypassCase.RB_TO_TC, 1)
        assert stats.bypassed_instruction_fraction() == pytest.approx(0.6)
        assert stats.conversion_bypass_fraction() == pytest.approx(0.25)

    def test_scheduler_occupancy(self):
        stats = SimStats(scheduler_occupancy_samples=4, scheduler_occupancy_sum=40)
        assert stats.mean_scheduler_occupancy() == 10.0
        assert SimStats().mean_scheduler_occupancy() == 0.0

    def test_summary_renders(self):
        stats = SimStats(machine="M", workload="W", cycles=10, instructions=20,
                         branches=4, mispredictions=1)
        stats.bypass_levels.record(BypassLevelUse.FIRST_LEVEL)
        text = stats.summary()
        assert "M on W" in text
        assert "IPC 2.000" in text
