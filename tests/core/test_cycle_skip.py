"""Cycle-skipping fast-forward must be invisible in every statistic.

``Machine.run`` jumps over quiescent stretches (nothing to retire,
select, dispatch, or fetch until a known future cycle), replaying the
per-cycle bookkeeping — stall attribution, occupancy series, frontend
stall counters — in closed form.  These tests pin the invariant: every
field of ``SimStats`` (and the event stream, and the CPI stack built
from it) is bit-identical with the fast-forward on and off, while
``--no-skip`` stays available as an escape hatch.
"""

import json

import pytest

from repro.core import simulate
from repro.core.machine import Machine
from repro.core.presets import baseline, ideal, rb_limited, staggered
from repro.obs.events import EventBus
from repro.obs.explain import CPIStack
from repro.obs.sinks import CollectorSink
from repro.workloads.suite import build

PAIRS = [
    (baseline(4), "ijpeg"),
    (rb_limited(4), "parser"),
    (staggered(4), "li"),
    (ideal(8), "compress"),
]


def _ids(pair):
    config, workload = pair
    return f"{config.name}-{workload}"


@pytest.fixture(scope="module", params=PAIRS, ids=_ids)
def skip_vs_noskip(request):
    config, workload = request.param
    program = build(workload)
    machine = Machine(config)
    skipped = machine.run(program, cycle_skip=True)
    skipped_cycles = machine.skipped_cycles
    plain = machine.run(program, cycle_skip=False)
    return skipped, plain, skipped_cycles


class TestEquivalence:
    def test_full_stats_identical(self, skip_vs_noskip):
        skipped, plain, _ = skip_vs_noskip
        assert skipped.to_dict() == plain.to_dict()

    def test_cycles_ipc_identical(self, skip_vs_noskip):
        skipped, plain, _ = skip_vs_noskip
        assert skipped.cycles == plain.cycles
        assert skipped.ipc == plain.ipc

    def test_cpi_stack_identical(self, skip_vs_noskip):
        """The repro-explain CPI stack survives the fast-forward exactly."""
        skipped, plain, _ = skip_vs_noskip
        for stats in (skipped, plain):
            CPIStack.from_stats(stats).validate()
        stack_a = CPIStack.from_stats(skipped)
        stack_b = CPIStack.from_stats(plain)
        assert stack_a.components == stack_b.components

    def test_skipping_actually_engages(self, skip_vs_noskip):
        _, _, skipped_cycles = skip_vs_noskip
        assert skipped_cycles > 0


class TestEventStream:
    def test_traced_runs_identical(self):
        """With an event bus attached the skip path replays per-cycle events."""
        config, workload = rb_limited(4), "ijpeg"
        program = build(workload)
        digests = {}
        for cycle_skip in (True, False):
            sink = CollectorSink()
            Machine(config).run(program, bus=EventBus([sink]), cycle_skip=cycle_skip)
            digests[cycle_skip] = json.dumps(
                [(e.cycle, e.kind.value, e.seq, e.text, e.args) for e in sink.events],
                sort_keys=True,
            )
        assert digests[True] == digests[False]


class TestEscapeHatch:
    def test_simulate_kwarg_passthrough(self):
        config, workload = baseline(4), "compress"
        program = build(workload)
        with_skip = simulate(config, program, cycle_skip=True)
        without = simulate(config, program, cycle_skip=False)
        assert with_skip.to_dict() == without.to_dict()

    def test_skip_is_default(self):
        machine = Machine(ideal(4))
        machine.run(build("compress"))
        assert machine.skipped_cycles > 0
