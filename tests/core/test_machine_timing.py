"""Timing behaviour of the core: micro-kernels with known bottlenecks.

These tests assert the *mechanisms*: a serial add chain runs at the adder
latency, conversions appear exactly where Table 3 charges them, holes
delay dependents, loads see the 3-cycle L1 path, mispredictions cost a
refill, and the pipeline depth shows up in tiny programs.
"""

import pytest

from repro.core import baseline, ideal, rb_full, rb_limited, simulate
from repro.core.machine import Machine, SimulationError
from repro.isa import assemble
from repro.workloads.generators import (
    conversion_chain_program,
    dependent_chain_program,
    independent_chains_program,
)

ITERS = 800


class TestAdderLatency:
    @pytest.fixture(scope="class")
    def chain_cycles(self):
        program = dependent_chain_program(iterations=ITERS, chain_length=4)
        return {
            name: simulate(config, program).cycles
            for name, config in [
                ("base", baseline(8)), ("rb", rb_full(8)), ("ideal", ideal(8)),
            ]
        }

    def test_baseline_is_two_cycles_per_add(self, chain_cycles):
        """4 serial adds/iteration: ~8 cycles on Baseline, ~4 on Ideal."""
        ratio = chain_cycles["base"] / chain_cycles["ideal"]
        assert 1.7 <= ratio <= 2.1

    def test_rb_matches_ideal_on_pure_adds(self, chain_cycles):
        """No conversions on the critical path: RB == Ideal (within noise)."""
        assert chain_cycles["rb"] == pytest.approx(chain_cycles["ideal"], rel=0.02)

    def test_absolute_cycle_count_ideal(self, chain_cycles):
        """~5 serial cycles per iteration (4 adds + predicted loop overhead
        absorbed); allow pipeline fill slack."""
        per_iter = chain_cycles["ideal"] / ITERS
        assert 4.0 <= per_iter <= 6.0


class TestConversionCost:
    def test_rb_pays_conversions_on_mixed_chains(self):
        """add -> and -> add -> xor serial chain: Ideal 4 cycles/iter,
        Baseline 6 (2+1+2+1), RB 8 (1+conv 2+1)*2 — the one case where the
        RB machine loses to the Baseline (paper §5.2 discussion of format
        conversions on the critical path)."""
        program = conversion_chain_program(iterations=ITERS)
        cycles = {
            name: simulate(config, program).cycles
            for name, config in [
                ("base", baseline(8)), ("rb", rb_full(8)), ("ideal", ideal(8)),
            ]
        }
        assert cycles["ideal"] < cycles["base"] < cycles["rb"]

    def test_conversion_fraction_reported(self):
        program = conversion_chain_program(iterations=200)
        stats = simulate(rb_full(8), program)
        assert stats.conversion_bypass_fraction() > 0.2


class TestBandwidthBoundCode:
    def test_parallel_chains_close_the_gap(self):
        """With 6 independent chains the Baseline's pipelined adders keep
        the units busy: the Ideal advantage shrinks well below 2x."""
        program = independent_chains_program(iterations=ITERS, chains=6)
        base = simulate(baseline(8), program).cycles
        ideal_cycles = simulate(ideal(8), program).cycles
        assert base / ideal_cycles < 1.4


class TestLimitedBypassHoles:
    def test_rb_limited_never_beats_rb_full(self):
        for program in (
            dependent_chain_program(iterations=300, chain_length=2),
            conversion_chain_program(iterations=300),
        ):
            full = simulate(rb_full(8), program).ipc
            limited = simulate(rb_limited(8), program).ipc
            assert limited <= full + 1e-9

    def test_hole_delays_two_apart_consumers(self):
        """Producer P and a consumer whose other source arrives 2 cycles
        later: on RB-full the consumer reads P at offset 2; on RB-limited
        offset 2 is inside the 2-cycle hole, so the consumer slips to the
        register-file offset (4).  Asserted on the select-cycle trace."""
        source = """
    .text
main:
    lda r2, 0(zero)
    lda r4, 0(zero)
    add r2, #1, r2       ; producer P
    add r4, #1, r4       ; serial fillers pace the consumer's other source
    add r4, #1, r4
    add r4, r2, r4       ; consumer B: earliest wake is 2 cycles after P
    halt
"""
        program = assemble(source, "hole_probe")

        def select_offsets(config):
            stats = Machine(config).run(program, record_trace=True)
            producer = stats.trace[2]
            consumer = stats.trace[5]
            assert producer.instr.text.startswith("add r2")
            assert consumer.instr.text.startswith("add r4, r2")
            return consumer.select_cycle - producer.select_cycle

        # The round-robin steering puts P and B in different clusters at
        # 8-wide, so the full-bypass offset is 2 (+1 cluster hop).  On the
        # limited network B must find a cycle where BOTH its sources are
        # outside their holes: P reachable (cross-cluster) from offset 5,
        # its filler source from its own offset 4 — first joint cycle is
        # P+6.  The 8-wide select trace pins this exactly.
        assert select_offsets(rb_full(8)) == 3
        assert select_offsets(rb_limited(8)) == 6


class TestMemoryTiming:
    def test_load_to_use_three_cycles(self):
        """A load-to-load pointer chase in the L1: ~3+1 cycles per hop
        (1-cycle SAM agen + 2-cycle D-cache, plus the serial add)."""
        source = """
    .data
cell:   .quad 0
    .text
main:
    lda r1, cell
    stq r1, 0(r1)        ; cell points to itself
    lda r3, 400(zero)
loop:
    ldq r1, 0(r1)        ; serial load chain, always hits
    sub r3, #1, r3
    bgt r3, loop
    halt
"""
        program = assemble(source, "l1_chase")
        stats = simulate(ideal(8), program)
        per_hop = stats.cycles / 400
        assert 2.5 <= per_hop <= 4.5

    def test_store_load_ordering(self):
        """A load may not issue before an older store to the same address;
        the functional result is always correct and the timing serializes."""
        source = """
    .data
slot:   .quad 0
    .text
main:
    lda r1, slot
    lda r3, 300(zero)
    lda r2, 0(zero)
loop:
    add r2, #3, r2
    stq r2, 0(r1)
    ldq r4, 0(r1)        ; must observe the store
    add r4, #0, r2
    sub r3, #1, r3
    bgt r3, loop
    halt
"""
        program = assemble(source, "st_ld")
        stats = simulate(ideal(8), program)
        # the store->load->add serial loop cannot run faster than ~6/iter
        assert stats.cycles >= 300 * 5


class TestBranchCosts:
    def test_unpredictable_branches_hurt(self):
        predictable = """
    .text
main:
    lda r3, 600(zero)
loop:
    sub r3, #1, r3
    bgt r3, loop
    halt
"""
        unpredictable = """
    .text
main:
    lda r3, 600(zero)
    lda r5, 12345(zero)
loop:
    mul r5, #25173, r5
    add r5, #13849, r5
    srl r5, #9, r6
    blbs r6, skip
    nop
skip:
    sub r3, #1, r3
    bgt r3, loop
    halt
"""
        good = simulate(ideal(8), assemble(predictable, "pred"))
        bad = simulate(ideal(8), assemble(unpredictable, "unpred"))
        assert good.misprediction_rate < 0.05
        assert bad.misprediction_rate > 0.2

    def test_minimum_pipeline_depth(self):
        """A one-instruction program still pays the ~13-cycle pipeline."""
        stats = simulate(ideal(8), assemble(".text\nmain:\n    halt\n"))
        assert stats.cycles >= 13


class TestRobustness:
    def test_deterministic(self):
        program = dependent_chain_program(iterations=200)
        a = simulate(ideal(8), program)
        b = simulate(ideal(8), program)
        assert (a.cycles, a.instructions) == (b.cycles, b.instructions)

    def test_all_instructions_retired(self):
        program = conversion_chain_program(iterations=100)
        stats = simulate(baseline(4), program)
        from repro.isa.semantics import run_program
        assert stats.instructions == run_program(program).instructions_executed

    def test_long_latency_ops_do_not_wedge(self):
        source = """
    .text
main:
    lda r1, 60(zero)
    lda r2, 7(zero)
loop:
    fdiv r2, #3, r2
    fadd r2, #5, r2
    mul r2, #3, r2
    sub r1, #1, r1
    bgt r1, loop
    halt
"""
        stats = simulate(baseline(4), assemble(source, "longlat"))
        assert stats.instructions == 2 + 60 * 5 + 1

    def test_cycle_budget_enforced(self):
        program = dependent_chain_program(iterations=2000)
        with pytest.raises(SimulationError, match="exceeded"):
            Machine(ideal(8)).run(program, max_cycles=50)
