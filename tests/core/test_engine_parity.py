"""The SoA engine is bit-identical to the object engine, and selectable.

The structure-of-arrays fast path (:mod:`repro.core.engine`) claims the
same contract as cycle skipping: an implementation detail that changes
no observable output.  These tests audit that claim from the outside —
serialized stats, CPI stacks, and timeline rows over curated kernels and
fuzz programs, crossed with both cycle-skip settings — and pin down the
selection machinery (argument > environment > default, the fallbacks
that need the object graph, and the error on unknown names).
"""

import pytest

from repro.core.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    ENGINES,
    resolve_engine,
)
from repro.core.machine import Machine
from repro.core.presets import baseline, ideal, rb_full, rb_limited
from repro.obs.events import EventBus
from repro.verify.differential import diff_engines, first_divergence
from repro.verify.fuzz import fuzz_program
from repro.workloads.suite import build


def _run(config, program, engine, cycle_skip=True, **kwargs):
    return Machine(config).run(
        program, cycle_skip=cycle_skip, engine=engine, **kwargs
    )


class TestEngineSelection:
    def test_engines_registry(self):
        assert ENGINES == ("soa", "objects")
        assert DEFAULT_ENGINE in ENGINES

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "objects")
        assert resolve_engine("soa") == "soa"

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "objects")
        assert resolve_engine(None) == "objects"
        monkeypatch.setenv(ENGINE_ENV, "  SoA  ")
        assert resolve_engine(None) == "soa"

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine(None) == DEFAULT_ENGINE
        monkeypatch.setenv(ENGINE_ENV, "")
        assert resolve_engine(None) == DEFAULT_ENGINE

    @pytest.mark.parametrize("bogus", ["fast", "SOA2", "object"])
    def test_unknown_engine_raises(self, monkeypatch, bogus):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine(bogus)
        monkeypatch.setenv(ENGINE_ENV, bogus)
        with pytest.raises(ValueError, match="unknown engine"):
            Machine(ideal(4)).run(build("li"), engine=None)

    def test_env_selects_engine_end_to_end(self, monkeypatch):
        """REPRO_ENGINE routes a plain ``run`` through either engine with
        identical results."""
        program = build("li")
        config = ideal(4)
        by_env = {}
        for name in ENGINES:
            monkeypatch.setenv(ENGINE_ENV, name)
            by_env[name] = Machine(config).run(program).to_dict()
        assert by_env["soa"] == by_env["objects"]


class TestObjectGraphFallbacks:
    """Runs that need DynInstr records always use the object engine."""

    def test_record_trace_still_carries_records(self):
        stats = _run(ideal(4), build("li"), "soa", record_trace=True)
        assert stats.trace, "record_trace must still produce DynInstr records"
        assert stats.trace[0].seq == 0

    def test_bus_run_emits_events(self):
        bus = EventBus()
        _run(ideal(4), build("li"), "soa", bus=bus)
        assert bus.events, "bus runs must still emit events"

    def test_fallback_matches_soa_stats(self):
        """The traced (object-engine) run agrees with the SoA run.

        Modulo the one deliberate marker: downgrading an *explicit*
        ``engine="soa"`` request is counted in
        ``core.engine.downgraded`` (see ``tests/core/test_batch_parity``
        for the counter's own contract).
        """
        program = build("li")
        traced = _run(ideal(4), program, "soa", record_trace=True)
        plain = _run(ideal(4), program, "soa")
        traced_entry = traced.to_dict()
        assert traced_entry["metrics"]["counters"].pop(
            "core.engine.downgraded"
        ) == 1
        assert traced_entry == plain.to_dict()


@pytest.mark.parametrize("cycle_skip", [True, False], ids=["skip", "no-skip"])
class TestEngineParity:
    """diff_engines over kernels × machines × both cycle-skip settings."""

    @pytest.mark.parametrize("kernel", ["ijpeg", "li", "compress"])
    def test_kernels(self, kernel, cycle_skip):
        found = diff_engines(rb_limited(4), build(kernel), cycle_skip=cycle_skip)
        assert found is None, found.describe()

    @pytest.mark.parametrize(
        "preset", [baseline, rb_limited, rb_full, ideal],
        ids=lambda p: p.__name__,
    )
    def test_machines(self, preset, cycle_skip):
        found = diff_engines(preset(8), build("ijpeg"), cycle_skip=cycle_skip)
        assert found is None, found.describe()

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_programs(self, seed, cycle_skip):
        profile = ("mixed", "branchy", "serial")[seed % 3]
        program = fuzz_program(profile, seed)
        config = (rb_limited(4), ideal(8))[seed % 2]
        found = diff_engines(config, program, cycle_skip=cycle_skip)
        assert found is None, found.describe()


class TestTimelineIdentity:
    def test_timeline_rows_identical(self):
        """Row-by-row timeline equality, not just aggregate stats."""
        program = build("compress")
        config = baseline(8)
        soa = _run(config, program, "soa")
        objects = _run(config, program, "objects")
        assert soa.timeline is not None and objects.timeline is not None
        assert first_divergence(
            soa.timeline.to_dict(), objects.timeline.to_dict()
        ) is None

    def test_timeline_off_both_engines(self):
        for engine in ENGINES:
            stats = _run(ideal(4), build("li"), engine, timeline=False)
            assert getattr(stats, "timeline", None) is None

    def test_timeline_sink_sees_same_rows(self):
        program = build("li")
        rows = {}
        for engine in ENGINES:
            seen = []
            _run(ideal(4), program, engine, timeline_sink=seen.append)
            rows[engine] = [row.to_dict() for row in seen]
        assert rows["soa"] == rows["objects"]
        assert rows["soa"], "sink must observe at least one row"
