"""Unit tests for the reorder buffer and in-flight instruction records."""

import pytest

from repro.core.window import DynInstr, ReorderBuffer
from repro.isa.assembler import assemble
from repro.isa.semantics import ExecResult


def make_record(seq: int, complete: int | None = None) -> DynInstr:
    program = assemble(".text\nmain:\n    add r1, r2, r3\n    halt\n")
    rec = DynInstr(seq, program.instructions[0], ExecResult(0), fetch_cycle=0,
                   mispredicted=False)
    rec.complete_cycle = complete
    return rec


class TestReorderBuffer:
    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.push(make_record(0))
        assert rob.has_room()
        rob.push(make_record(1))
        assert not rob.has_room()
        with pytest.raises(RuntimeError):
            rob.push(make_record(2))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)

    def test_retires_in_order_only(self):
        rob = ReorderBuffer(4)
        head = make_record(0, complete=None)   # oldest not done
        done = make_record(1, complete=1)
        rob.push(head)
        rob.push(done)
        assert rob.retire_ready(cycle=10, width=4) == []
        head.complete_cycle = 5
        retired = rob.retire_ready(cycle=10, width=4)
        assert [r.seq for r in retired] == [0, 1]

    def test_retire_after_writeback_cycle(self):
        rob = ReorderBuffer(4)
        rob.push(make_record(0, complete=7))
        assert rob.retire_ready(cycle=7, width=4) == []   # WB this cycle
        assert len(rob.retire_ready(cycle=8, width=4)) == 1

    def test_retire_width_cap(self):
        rob = ReorderBuffer(8)
        for i in range(5):
            rob.push(make_record(i, complete=0))
        assert len(rob.retire_ready(cycle=5, width=3)) == 3
        assert len(rob.retire_ready(cycle=5, width=3)) == 2
        assert not rob

    def test_counters(self):
        rob = ReorderBuffer(4)
        rob.push(make_record(0, complete=0))
        rob.retire_ready(cycle=1, width=1)
        assert rob.retired == 1
        assert rob.occupancy == 0
        assert len(rob) == 0


class TestDynInstr:
    def test_initial_state(self):
        rec = make_record(7)
        assert rec.select_cycle is None
        assert rec.scheduler == -1
        assert rec.sources == []
        assert rec.store_dep is None
        assert not rec.produces_rb

    def test_repr_mentions_seq(self):
        assert "#7" in repr(make_record(7))

    def test_slots_reject_arbitrary_attributes(self):
        rec = make_record(0)
        with pytest.raises(AttributeError):
            rec.bogus = 1
