"""Tests for the Table 2 memory hierarchy timing."""

import pytest

from repro.mem.hierarchy import MemoryHierarchy, MemoryHierarchyConfig


@pytest.fixture()
def hierarchy():
    return MemoryHierarchy()


class TestDataPath:
    def test_l1_hit_latency(self, hierarchy):
        hierarchy.dcache.fill(0x2000)
        assert hierarchy.data_access(0x2000, cycle=100) == 102

    def test_l2_hit_path(self, hierarchy):
        hierarchy.l2.fill(0x2000)
        ready = hierarchy.data_access(0x2000, cycle=100)
        # L1 miss (2) then L2 hit (8)
        assert ready == 100 + 2 + 8

    def test_memory_path(self, hierarchy):
        ready = hierarchy.data_access(0x2000, cycle=100)
        # L1 (2) + L2 tag check (8) + DRAM (100)
        assert ready == 100 + 2 + 8 + 100

    def test_miss_fills_upward(self, hierarchy):
        hierarchy.data_access(0x2000, cycle=0)
        assert hierarchy.dcache.contains(0x2000)
        assert hierarchy.l2.contains(0x2000)
        assert hierarchy.data_access(0x2000, cycle=500) == 502

    def test_l2_bank_contention(self, hierarchy):
        hierarchy.l2.fill(0x0000)
        hierarchy.l2.fill(0x2000)  # same bank (both even lines? ensure below)
        bank_a = hierarchy.l2_banks.bank_of(0x0000, 6)
        bank_b = hierarchy.l2_banks.bank_of(0x2000, 6)
        assert bank_a == bank_b
        first = hierarchy.data_access(0x0000, cycle=0)
        second = hierarchy.data_access(0x2000, cycle=0)
        assert second > first - (first - 0)  # sanity
        # the second access starts after the first bank occupancy expires
        assert second - first == hierarchy.config.l2_bank_occupancy

    def test_different_banks_no_contention(self, hierarchy):
        hierarchy.l2.fill(0x0000)
        hierarchy.l2.fill(0x0040)  # adjacent line: other bank
        first = hierarchy.data_access(0x0000, cycle=0)
        second = hierarchy.data_access(0x0040, cycle=0)
        assert first == second


class TestFetchPath:
    def test_icache_hit(self, hierarchy):
        hierarchy.icache.fill(0x1_0000)
        assert hierarchy.fetch_access(0x1_0000, cycle=0) == 2

    def test_icache_miss_goes_to_l2(self, hierarchy):
        hierarchy.l2.fill(0x1_0000)
        assert hierarchy.fetch_access(0x1_0000, cycle=0) == 2 + 8

    def test_icache_and_dcache_are_separate(self, hierarchy):
        hierarchy.fetch_access(0x3000, cycle=0)
        assert hierarchy.icache.contains(0x3000)
        assert not hierarchy.dcache.contains(0x3000)


class TestConfigOverride:
    def test_custom_latencies(self):
        config = MemoryHierarchyConfig(memory_latency=10)
        hierarchy = MemoryHierarchy(config)
        assert hierarchy.data_access(0, 0) == 2 + 8 + 10

    def test_reset(self, hierarchy):
        hierarchy.data_access(0x40, 0)
        hierarchy.reset()
        assert not hierarchy.dcache.contains(0x40)
        assert not hierarchy.l2.contains(0x40)
