"""Property test: the cache against a reference LRU model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache, CacheConfig


class ReferenceLRU:
    """Straightforward per-set ordered-dict LRU, the executable spec."""

    def __init__(self, num_sets: int, ways: int, line_shift: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.line_shift = line_shift
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def _locate(self, address):
        line = address >> self.line_shift
        return self.sets[line % self.num_sets], line

    def lookup(self, address) -> bool:
        ways, tag = self._locate(address)
        if tag in ways:
            ways.move_to_end(tag)
            return True
        return False

    def fill(self, address):
        ways, tag = self._locate(address)
        if tag in ways:
            return None
        ways[tag] = True
        ways.move_to_end(tag)
        if len(ways) > self.ways:
            victim, _ = ways.popitem(last=False)
            return victim << self.line_shift
        return None


@given(st.lists(
    st.tuples(st.sampled_from(["lookup", "fill"]),
              st.integers(min_value=0, max_value=4095)),
    min_size=1, max_size=300,
))
@settings(max_examples=150, deadline=None)
def test_cache_matches_reference_lru(operations):
    cache = Cache(CacheConfig("dut", size_bytes=512, associativity=2,
                              line_bytes=64, hit_latency=1))
    # 512B / (2 ways * 64B) = 4 sets
    reference = ReferenceLRU(num_sets=4, ways=2, line_shift=6)
    for op, address in operations:
        if op == "lookup":
            assert cache.lookup(address) == reference.lookup(address)
        else:
            assert cache.fill(address) == reference.fill(address)
    # final residency agrees everywhere that was touched
    for _, address in operations:
        ways, tag = reference._locate(address)
        assert cache.contains(address) == (tag in ways)
