"""Tests for the functional paged memory."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.memory import PAGE_SIZE, PagedMemory


class TestBasics:
    def test_reads_zero_when_untouched(self):
        memory = PagedMemory()
        assert memory.read(0x1234, 8) == 0
        assert memory.read_byte(99) == 0

    def test_byte_round_trip(self):
        memory = PagedMemory()
        memory.write_byte(5, 0xAB)
        assert memory.read_byte(5) == 0xAB

    def test_little_endian(self):
        memory = PagedMemory()
        memory.write(0x100, 0x0102030405060708, 8)
        assert memory.read_byte(0x100) == 0x08
        assert memory.read_byte(0x107) == 0x01

    def test_cross_page_access(self):
        memory = PagedMemory()
        address = PAGE_SIZE - 3
        memory.write(address, 0x1122334455667788, 8)
        assert memory.read(address, 8) == 0x1122334455667788
        assert memory.touched_pages() == 2

    def test_write_truncates_to_size(self):
        memory = PagedMemory()
        memory.write(0, 0x1FF, 1)
        assert memory.read(0, 1) == 0xFF

    def test_load_image(self):
        memory = PagedMemory()
        memory.load_image(PAGE_SIZE - 2, b"\x01\x02\x03\x04")
        assert memory.read(PAGE_SIZE - 2, 4) == 0x04030201

    def test_address_wraps_64_bits(self):
        memory = PagedMemory()
        memory.write(2**64 + 8, 0x55, 1)
        assert memory.read(8, 1) == 0x55


class TestProperties:
    @given(
        address=st.integers(min_value=0, max_value=2**20),
        value=st.integers(min_value=0, max_value=2**64 - 1),
        size=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=200)
    def test_round_trip(self, address, value, size):
        memory = PagedMemory()
        memory.write(address, value, size)
        assert memory.read(address, size) == value & ((1 << (size * 8)) - 1)

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=4096),
                  st.integers(min_value=0, max_value=255)),
        min_size=1, max_size=50,
    ))
    def test_model_equivalence(self, writes):
        """Byte-level writes must match a plain dict model."""
        memory = PagedMemory()
        model = {}
        for address, value in writes:
            memory.write_byte(address, value)
            model[address] = value
        for address, value in model.items():
            assert memory.read_byte(address) == value
