"""Tests for the set-associative LRU cache timing model."""

import pytest

from repro.mem.cache import Cache, CacheConfig


def make_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig("test", size, assoc, line, hit_latency=2))


class TestConfig:
    def test_geometry(self):
        config = CacheConfig("c", 8 * 1024, 2, 64, 2)
        assert config.num_sets == 64
        assert config.line_shift == 6

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig("c", 1000, 3, 64, 1)
        with pytest.raises(ValueError):
            CacheConfig("c", 0, 1, 64, 1)
        with pytest.raises(ValueError):
            CacheConfig("c", 1024, 2, 48, 1)  # line not a power of two


class TestLookupFill:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_same_line_same_entry(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.lookup(0x1004)  # same 64B line
        assert cache.lookup(0x103F)

    def test_lru_eviction(self):
        cache = make_cache(size=256, assoc=2, line=64)  # 2 sets
        # set 0 holds lines 0, 2, 4... (line address % 2 == 0)
        cache.fill(0 * 64)
        cache.fill(2 * 64)
        cache.lookup(0 * 64)          # touch line 0: line 2 becomes LRU
        victim = cache.fill(4 * 64)   # evicts line 2
        assert victim == 2 * 64
        assert cache.contains(0 * 64)
        assert not cache.contains(2 * 64)

    def test_fill_existing_no_eviction(self):
        cache = make_cache()
        cache.fill(0x40)
        assert cache.fill(0x40) is None

    def test_invalidate_all(self):
        cache = make_cache()
        cache.fill(0)
        cache.invalidate_all()
        assert not cache.contains(0)

    def test_hit_rate(self):
        cache = make_cache()
        cache.lookup(0)
        cache.fill(0)
        cache.lookup(0)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_working_set_within_capacity_all_hits(self):
        cache = make_cache(size=4096, assoc=4, line=64)
        lines = [i * 64 for i in range(64)]  # exactly capacity
        for address in lines:
            cache.fill(address)
        for address in lines:
            assert cache.lookup(address)

    def test_set_conflicts_beyond_associativity(self):
        cache = make_cache(size=256, assoc=2, line=64)  # 2 sets, 2 ways
        # three lines in the same set thrash
        a, b, c = 0, 2 * 64, 4 * 64
        for address in (a, b, c, a, b, c):
            cache.lookup(address)
            cache.fill(address)
        assert cache.hits == 0
