"""Tests for the bank contention model."""

import pytest

from repro.mem.banks import BankedResource


class TestBankedResource:
    def test_validation(self):
        with pytest.raises(ValueError):
            BankedResource(0, 1)
        with pytest.raises(ValueError):
            BankedResource(2, 0)

    def test_bank_mapping_interleaved(self):
        banks = BankedResource(2, occupancy=2)
        assert banks.bank_of(0x000, 6) == 0
        assert banks.bank_of(0x040, 6) == 1
        assert banks.bank_of(0x080, 6) == 0

    def test_no_conflict_when_spread(self):
        banks = BankedResource(2, occupancy=4)
        assert banks.schedule(0, 10) == 10
        assert banks.schedule(1, 10) == 10
        assert banks.conflict_cycles == 0

    def test_conflict_delays_to_bank_free(self):
        banks = BankedResource(2, occupancy=4)
        assert banks.schedule(0, 10) == 10
        assert banks.schedule(0, 11) == 14  # bank busy until 14
        assert banks.conflict_cycles == 3

    def test_back_to_back_spacing(self):
        banks = BankedResource(1, occupancy=2)
        starts = [banks.schedule(0, 0) for _ in range(4)]
        assert starts == [0, 2, 4, 6]

    def test_idle_gap_no_penalty(self):
        banks = BankedResource(1, occupancy=2)
        banks.schedule(0, 0)
        assert banks.schedule(0, 100) == 100

    def test_out_of_range_bank(self):
        banks = BankedResource(2, occupancy=1)
        with pytest.raises(ValueError):
            banks.schedule(2, 0)

    def test_reset(self):
        banks = BankedResource(1, occupancy=10)
        banks.schedule(0, 0)
        banks.reset()
        assert banks.schedule(0, 0) == 0
        assert banks.accesses == 1
