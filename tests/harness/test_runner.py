"""Tests for the result cache and simulation runner."""

import json
import logging

import pytest

from repro.core.presets import ideal
from repro.core.statistics import BypassCase, SimStats
from repro.harness.runner import RESULTS_VERSION, ResultCache, SimulationRunner


@pytest.fixture
def repro_log_propagates():
    """Let caplog see ``repro`` records even if setup_logging() disabled
    propagation earlier in the session."""
    logger = logging.getLogger("repro")
    saved = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = saved


class TestResultCache:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        stats = SimStats(machine="M", workload="W", cycles=10, instructions=20,
                         branches=3, mispredictions=1)
        stats.bypass_cases.record(BypassCase.RB_TO_TC, 5)
        cache.put(stats)
        cache.save()

        reloaded = ResultCache(path).get("M", "W")
        assert reloaded is not None
        assert reloaded.cycles == 10
        assert reloaded.ipc == 2.0
        assert reloaded.bypass_cases.count(BypassCase.RB_TO_TC) == 5

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        assert cache.get("M", "W") is None

    def test_version_mismatch_discards(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        cache.put(SimStats(machine="M", workload="W", cycles=1, instructions=1))
        cache.save()
        text = path.read_text().replace(
            f'"version": {RESULTS_VERSION}', '"version": -1'
        )
        path.write_text(text)
        assert ResultCache(path).get("M", "W") is None

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = ResultCache(path)
        assert len(cache) == 0

    def test_memory_only(self):
        cache = ResultCache(None)
        cache.put(SimStats(machine="M", workload="W", cycles=1, instructions=1))
        cache.save()  # no-op, must not raise
        assert cache.get("M", "W") is not None

    def test_metrics_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        stats = SimStats(machine="M", workload="W", cycles=5, instructions=5)
        stats.metrics.counter("scheduler.sched0.selected").inc(9)
        stats.metrics.histogram("bypass.source_level").record(1, 4)
        cache.put(stats)
        cache.save()
        reloaded = ResultCache(path).get("M", "W")
        assert reloaded.metrics.counter("scheduler.sched0.selected").value == 9
        assert reloaded.metrics.histogram("bypass.source_level").counts == {1: 4}

    def test_hit_miss_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        assert cache.get("M", "W") is None
        cache.put(SimStats(machine="M", workload="W", cycles=1, instructions=1))
        assert cache.get("M", "W") is not None
        assert cache.metrics.counter("cache.misses").value == 1
        assert cache.metrics.counter("cache.hits").value == 1

    def test_corrupt_file_warns_and_counts(self, tmp_path, caplog, repro_log_propagates):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        with caplog.at_level(logging.WARNING, logger="repro"):
            cache = ResultCache(path)
        assert cache.metrics.counter("cache.invalidations").value == 1
        assert any("unreadable" in r.message for r in caplog.records)
        assert any(str(path) in r.message for r in caplog.records)

    def test_version_mismatch_warns_and_counts(self, tmp_path, caplog, repro_log_propagates):
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        cache.put(SimStats(machine="M", workload="W", cycles=1, instructions=1))
        cache.save()
        text = path.read_text().replace(
            f'"version": {RESULTS_VERSION}', '"version": -1'
        )
        path.write_text(text)
        with caplog.at_level(logging.WARNING, logger="repro"):
            reloaded = ResultCache(path)
        assert reloaded.metrics.counter("cache.invalidations").value == 1
        assert any("version" in r.message for r in caplog.records)


class TestRunner:
    def test_run_uses_cache(self, tmp_path):
        runner = SimulationRunner(cache_path=tmp_path / "cache.json")
        config = ideal(4)
        first = runner.run(config, "ijpeg")
        assert first.instructions > 0

        # a second runner sharing the file must not resimulate: poison the
        # machine table to prove the result comes from disk
        runner2 = SimulationRunner(cache_path=tmp_path / "cache.json")
        runner2._machines["poisoned"] = None
        second = runner2.run(config, "ijpeg")
        assert second.cycles == first.cycles
        assert second.ipc == first.ipc

    def test_run_matrix_shape(self, tmp_path):
        runner = SimulationRunner(cache_path=tmp_path / "cache.json")
        results = runner.run_matrix([ideal(4)], ["ijpeg"])
        assert set(results) == {("Ideal-4w", "ijpeg")}

    def test_bench_artifact_written(self, tmp_path):
        runner = SimulationRunner(cache_path=tmp_path / "cache.json")
        runner.run(ideal(4), "ijpeg")
        bench_path = tmp_path / "BENCH_obs.json"
        # persistence is batched: nothing hits disk until flush()
        assert not bench_path.exists()
        runner.flush()
        assert bench_path.exists()
        payload = json.loads(bench_path.read_text())
        run = payload["runs"][0]
        assert run["machine"] == "Ideal-4w"
        assert run["workload"] == "ijpeg"
        assert run["wall_seconds"] > 0
        assert run["sim_instr_per_sec"] > 0
        assert payload["cache"]["cache.misses"] == 1

        # cached rerun adds no new bench entry but counts the hit
        runner.run(ideal(4), "ijpeg")
        runner.flush()
        assert len(json.loads(bench_path.read_text())["runs"]) == 1
        assert runner.metrics.counter("cache.hits").value == 1

    def test_run_matrix_flushes_once(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        runner = SimulationRunner(cache_path=cache_path)
        runner.run_matrix([ideal(4)], ["ijpeg"])
        assert cache_path.exists()
        assert (tmp_path / "BENCH_obs.json").exists()
        # clean flush afterwards is a no-op (nothing dirty)
        mtime = cache_path.stat().st_mtime_ns
        runner.flush()
        assert cache_path.stat().st_mtime_ns == mtime

    def test_context_manager_flushes(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        with SimulationRunner(cache_path=cache_path) as runner:
            runner.run(ideal(4), "ijpeg")
            assert not cache_path.exists()
        assert cache_path.exists()
        assert ResultCache(cache_path).get("Ideal-4w", "ijpeg") is not None

    def test_save_is_atomic(self, tmp_path):
        """save() never leaves temp droppings and replaces in one step."""
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        cache.put(SimStats(machine="M", workload="W", cycles=1, instructions=1))
        cache.save()
        cache.put(SimStats(machine="M2", workload="W", cycles=2, instructions=2))
        cache.save()
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]
        reloaded = ResultCache(path)
        assert len(reloaded) == 2

    def test_truncated_cache_starts_empty(self, tmp_path):
        """A file cut off mid-write (pre-atomic-save scenario) is survivable."""
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        cache.put(SimStats(machine="M", workload="W", cycles=1, instructions=1))
        cache.save()
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        reloaded = ResultCache(path)
        assert len(reloaded) == 0
        assert reloaded.metrics.counter("cache.invalidations").value == 1


class TestTimelinePersistence:
    def test_cache_round_trips_the_timeline(self, tmp_path):
        path = tmp_path / "cache.json"
        runner = SimulationRunner(cache_path=path)
        config = ideal(4)
        first = runner.run(config, "li")
        assert first.timeline.rows
        runner.cache.save()

        reloaded = ResultCache(path).get(config.name, "li")
        assert reloaded is not None
        timeline = getattr(reloaded, "timeline", None)
        assert timeline is not None
        assert timeline.to_dict() == first.timeline.to_dict()

    def test_timeline_stays_out_of_the_stats_document(self, tmp_path):
        """The timeline rides next to the stats entry, never inside it —
        SimStats.to_dict() (goldens, serve responses) must not change."""
        runner = SimulationRunner(cache_path=tmp_path / "cache.json")
        stats = runner.run(ideal(4), "li")
        assert "timeline" not in stats.to_dict()

    def test_parallel_results_carry_timelines(self, tmp_path):
        runner = SimulationRunner(cache_path=tmp_path / "cache.json")
        results = runner.run_matrix(
            [ideal(4)], ["li", "fuzz:serial:7"], jobs=2, force_pool=True
        )
        for stats in results.values():
            timeline = getattr(stats, "timeline", None)
            assert timeline is not None and timeline.rows

    def test_parallel_timelines_match_serial(self, tmp_path):
        serial = SimulationRunner(cache_path=tmp_path / "serial.json")
        parallel = SimulationRunner(cache_path=tmp_path / "parallel.json")
        a = serial.run_matrix([ideal(4)], ["li"])
        b = parallel.run_matrix([ideal(4)], ["li"], jobs=2, force_pool=True)
        key = ("Ideal-4w", "li")
        assert a[key].timeline.to_dict() == b[key].timeline.to_dict()
