"""Tests for the result cache and simulation runner."""

from repro.core.presets import ideal
from repro.core.statistics import BypassCase, SimStats
from repro.harness.runner import RESULTS_VERSION, ResultCache, SimulationRunner


class TestResultCache:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        stats = SimStats(machine="M", workload="W", cycles=10, instructions=20,
                         branches=3, mispredictions=1)
        stats.bypass_cases.record(BypassCase.RB_TO_TC, 5)
        cache.put(stats)
        cache.save()

        reloaded = ResultCache(path).get("M", "W")
        assert reloaded is not None
        assert reloaded.cycles == 10
        assert reloaded.ipc == 2.0
        assert reloaded.bypass_cases.count(BypassCase.RB_TO_TC) == 5

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        assert cache.get("M", "W") is None

    def test_version_mismatch_discards(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path)
        cache.put(SimStats(machine="M", workload="W", cycles=1, instructions=1))
        cache.save()
        text = path.read_text().replace(
            f'"version": {RESULTS_VERSION}', '"version": -1'
        )
        path.write_text(text)
        assert ResultCache(path).get("M", "W") is None

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = ResultCache(path)
        assert len(cache) == 0

    def test_memory_only(self):
        cache = ResultCache(None)
        cache.put(SimStats(machine="M", workload="W", cycles=1, instructions=1))
        cache.save()  # no-op, must not raise
        assert cache.get("M", "W") is not None


class TestRunner:
    def test_run_uses_cache(self, tmp_path):
        runner = SimulationRunner(cache_path=tmp_path / "cache.json")
        config = ideal(4)
        first = runner.run(config, "ijpeg")
        assert first.instructions > 0

        # a second runner sharing the file must not resimulate: poison the
        # machine table to prove the result comes from disk
        runner2 = SimulationRunner(cache_path=tmp_path / "cache.json")
        runner2._machines["poisoned"] = None
        second = runner2.run(config, "ijpeg")
        assert second.cycles == first.cycles
        assert second.ipc == first.ipc

    def test_run_matrix_shape(self, tmp_path):
        runner = SimulationRunner(cache_path=tmp_path / "cache.json")
        results = runner.run_matrix([ideal(4)], ["ijpeg"])
        assert set(results) == {("Ideal-4w", "ijpeg")}
