"""Tests for the append-only perf history and the bench --compare gate."""

import json
import logging

import pytest

from repro.cli import main
from repro.harness.perfhistory import (
    HISTORY_FILENAME,
    append_history,
    compare,
    fingerprint_key,
    history_record,
    host_fingerprint,
    load_history,
)


@pytest.fixture(autouse=True)
def _restore_repro_logging():
    """``main()`` configures the ``repro`` logger (handler bound to the
    captured stderr, ``propagate=False``); undo it so later caplog-based
    tests see a pristine logger."""
    logger = logging.getLogger("repro")
    saved = logger.propagate
    yield
    for handler in [h for h in logger.handlers
                    if getattr(h, "_repro_handler", False)]:
        logger.removeHandler(handler)
    logger.propagate = saved


def run_payload(rate: float, host: dict | None = None) -> dict:
    """A minimal BENCH_perf-shaped payload with one throughput pair."""
    return {
        "version": 1,
        "timestamp": 1000.0,
        "host": host if host is not None else host_fingerprint(),
        "throughput": [{
            "machine": "Ideal-8w", "workload": "ijpeg",
            "skip": {"instr_per_sec": rate, "seconds": 1.0, "cycles_per_sec": rate},
            "no_skip": {"instr_per_sec": rate / 2, "seconds": 2.0,
                        "cycles_per_sec": rate / 2},
            "instructions": 19050, "cycles": 9000, "skipped_cycles": 100,
            "skip_speedup": 2.0,
        }],
        "sweep": {
            "pairs": 2, "jobs": 1, "serial_seconds": 1.0,
            "parallel_seconds": 1.0, "speedup": 1.5, "results_identical": True,
        },
        "sampler_overhead": {
            "machine": "RB-limited-4w", "workload": "ijpeg", "rows": 87,
            "stride": 256, "pairs": 3, "timeline_seconds": 1.0,
            "no_timeline_seconds": 1.0, "overhead_fraction": 0.005,
        },
        "reference": {
            "machine": "Ideal-8w", "workload": "ijpeg", "instr_per_sec": 12800,
        },
    }


class TestHistoryFile:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / HISTORY_FILENAME
        for rate in (100.0, 110.0):
            append_history(path, history_record(run_payload(rate)))
        records = load_history(path)
        assert [r["throughput"]["Ideal-8w::ijpeg"] for r in records] == [100.0, 110.0]
        assert all(r["version"] == 1 for r in records)
        assert records[0]["sweep_speedup"] == 1.5

    def test_append_only(self, tmp_path):
        path = tmp_path / HISTORY_FILENAME
        append_history(path, history_record(run_payload(100.0)))
        first = path.read_text()
        append_history(path, history_record(run_payload(200.0)))
        assert path.read_text().startswith(first)

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / HISTORY_FILENAME
        append_history(path, history_record(run_payload(100.0)))
        with path.open("a") as fh:
            fh.write("{broken json\n")
            fh.write('{"not": "a record"}\n')
            fh.write("\n")
        append_history(path, history_record(run_payload(120.0)))
        assert len(load_history(path)) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []


class TestCompare:
    def history(self, rates, host=None):
        return [history_record(run_payload(rate, host)) for rate in rates]

    def test_no_baseline_passes(self):
        report = compare(history_record(run_payload(50.0)), [])
        assert report.ok
        assert report.comparisons[0].baseline is None
        assert "no baseline" in report.summary()

    def test_within_tolerance_passes(self):
        report = compare(
            history_record(run_payload(90.0)), self.history([100, 105, 95])
        )
        assert report.ok
        assert report.comparisons[0].baseline == 100.0
        assert "PASS" in report.summary()

    def test_regression_fails(self):
        report = compare(
            history_record(run_payload(50.0)), self.history([100, 105, 95]),
            tolerance=0.25,
        )
        assert not report.ok
        assert "REGRESSED" in report.summary()
        assert "FAIL" in report.summary()

    def test_window_limits_baseline(self):
        # Old fast runs age out of the window; only the recent slow ones gate.
        history = self.history([1000, 1000, 1000, 100, 100, 100])
        report = compare(history_record(run_payload(90.0)), history, window=3)
        assert report.ok
        assert report.comparisons[0].baseline == 100.0

    def test_other_hosts_ignored(self):
        other = {"python": "9.9.9", "platform": "elsewhere", "cpus": 1}
        report = compare(
            history_record(run_payload(50.0)), self.history([1000, 1000], other)
        )
        assert report.ok  # no same-fingerprint baseline
        assert report.baseline_runs == 0

    def test_fingerprint_key_distinguishes_hosts(self):
        assert fingerprint_key(host_fingerprint()) != fingerprint_key(
            {"python": "9.9.9", "platform": "elsewhere", "cpus": 1}
        )

    def test_parameter_validation(self):
        record = history_record(run_payload(50.0))
        with pytest.raises(ValueError):
            compare(record, [], tolerance=0.0)
        with pytest.raises(ValueError):
            compare(record, [], window=0)

    def test_as_dict_is_json_ready(self):
        report = compare(
            history_record(run_payload(90.0)), self.history([100.0])
        )
        entry = json.loads(json.dumps(report.as_dict()))
        assert entry["ok"] is True
        assert entry["comparisons"][0]["pair"] == "Ideal-8w::ijpeg"


class TestBenchCompareCLI:
    """Exit-code acceptance: nonzero on an injected synthetic regression,
    zero on a healthy run — without running the real benchmarks."""

    def _patch_bench(self, monkeypatch, rate):
        from repro.harness import perfbench

        def fake(path=None, jobs=2, kernels=None, history_path=None,
                 batched_workload="vortex"):
            payload = run_payload(rate)
            if history_path is not None:
                append_history(history_path, history_record(payload))
            return payload

        monkeypatch.setattr(perfbench, "write_bench_perf", fake)

    def test_healthy_run_exits_zero(self, tmp_path, monkeypatch, capsys):
        history = tmp_path / HISTORY_FILENAME
        for rate in (100.0, 102.0, 98.0):
            append_history(history, history_record(run_payload(rate)))
        self._patch_bench(monkeypatch, 97.0)
        code = main(["bench", "--compare", "--history", str(history)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        history = tmp_path / HISTORY_FILENAME
        for rate in (100.0, 102.0, 98.0):
            append_history(history, history_record(run_payload(rate)))
        self._patch_bench(monkeypatch, 40.0)  # synthetic 60% regression
        code = main(["bench", "--compare", "--history", str(history)])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_only_gates_newest_row(self, tmp_path, capsys):
        history = tmp_path / HISTORY_FILENAME
        for rate in (100.0, 101.0, 99.0, 30.0):  # newest row regressed
            append_history(history, history_record(run_payload(rate)))
        assert main(["bench", "--compare-only", "--history", str(history)]) == 1
        capsys.readouterr()
        append_history(history, history_record(run_payload(100.0)))
        assert main(["bench", "--compare-only", "--history", str(history)]) == 0

    def test_compare_only_without_history_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "absent.jsonl"
        assert main(["bench", "--compare-only", "--history", str(missing)]) == 2


class TestWriteBenchPerfHistory:
    def test_snapshot_overwrites_but_history_appends(self, tmp_path, monkeypatch):
        """The satellite fix: BENCH_perf.json stays a latest-run snapshot
        while BENCH_history.jsonl accumulates one row per run."""
        from repro.harness import perfbench

        rates = iter([100.0, 200.0])

        def fake_throughput(pairs=None, repeats=2):
            return run_payload(next(rates))["throughput"]

        monkeypatch.setattr(perfbench, "throughput_benchmark", fake_throughput)
        monkeypatch.setattr(
            perfbench, "sweep_benchmark",
            lambda configs=None, workloads=None, jobs=2: {"speedup": 1.0},
        )
        monkeypatch.setattr(
            perfbench, "sampler_overhead_benchmark",
            lambda config=None, workload="ijpeg", repeats=3, bench_path=None:
                run_payload(100.0)["sampler_overhead"],
        )
        snapshot = tmp_path / "BENCH_perf.json"
        for _ in range(2):
            perfbench.write_bench_perf(path=snapshot, jobs=1)
        payload = json.loads(snapshot.read_text())
        assert payload["throughput"][0]["skip"]["instr_per_sec"] == 200.0
        history = load_history(tmp_path / HISTORY_FILENAME)
        assert [r["throughput"]["Ideal-8w::ijpeg"] for r in history] == [100.0, 200.0]
