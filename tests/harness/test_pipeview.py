"""Tests for the pipeline-diagram renderer, including the paper's worked
example (the Figure 4 dependency graph under full vs limited bypass)."""

import pytest

from repro.core import rb_full, rb_limited
from repro.core.machine import Machine
from repro.harness.pipeview import instruction_stages, pipeline_diagram, select_offsets
from repro.isa.assembler import assemble

#: The paper's Figure 4 dependency graph, at 4-wide (single cluster) so the
#: schedule matches the figures' intent: SLL feeds ADD and AND; ADD and SLL
#: feed SUB.
FIGURE4 = """
    .text
main:
    lda r1, 3(zero)
    lda r2, 5(zero)
    sll r1, #2, r3       ; SLL (RB producer)
    and r3, #15, r4      ; AND (TC consumer of SLL)
    add r3, r2, r5       ; ADD (RB consumer of SLL)
    sub r5, r3, r6       ; SUB (RB consumer of ADD and SLL)
    halt
"""


def _trace(config):
    program = assemble(FIGURE4, "figure4")
    stats = Machine(config).run(program, record_trace=True)
    return stats.trace


def _select_cycle(trace, prefix):
    for rec in trace:
        if rec.instr.text.startswith(prefix):
            return rec.select_cycle
    raise AssertionError(f"no instruction starting with {prefix!r}")


class TestFigure4Schedules:
    def test_full_bypass_schedule(self):
        """Figure 5's schedule, at Table 3 latencies (the paper's worked
        figures assume 1-cycle shifts; the evaluated machines use the
        3-cycle shifter): ADD catches the SLL's redundant result on BYP-1
        at the shift latency, SUB follows the ADD back-to-back, and the
        AND waits out the SLL's 2-cycle format conversion."""
        trace = _trace(rb_full(4))
        sll = _select_cycle(trace, "sll")
        assert _select_cycle(trace, "add r3") == sll + 3   # BYP-1 of a 3-cycle op
        assert _select_cycle(trace, "sub") == sll + 4      # ADD + 1 (RB)
        assert _select_cycle(trace, "and") == sll + 5      # TC after conversion

    def test_limited_bypass_delays_sub(self):
        """Figure 7: with BYP-2 removed, the SUB cannot catch the SLL at
        offset 2 and slips to the register file; the paper's text: 'The
        SUB is delayed by three cycles.'"""
        full = _trace(rb_full(4))
        limited = _trace(rb_limited(4))
        sll_full = _select_cycle(full, "sll")
        sll_limited = _select_cycle(limited, "sll")
        sub_full = _select_cycle(full, "sub") - sll_full
        sub_limited = _select_cycle(limited, "sub") - sll_limited
        assert sub_limited - sub_full == 3
        # the AND is unaffected: BYP-3 and the register file still serve it
        assert (_select_cycle(limited, "and") - sll_limited
                == _select_cycle(full, "and") - sll_full)


class TestRendering:
    def test_diagram_contains_stages(self):
        trace = _trace(rb_full(4))
        text = pipeline_diagram(trace)
        assert "Cycle:" in text
        assert "SCH" in text
        assert "EXE" in text
        assert "CV" in text        # RB producers show their conversion
        assert "sll r1, #2, r3" in text

    def test_frontend_included_on_request(self):
        trace = _trace(rb_full(4))
        text = pipeline_diagram(trace, include_frontend=True)
        assert "REN" in text or "F" in text

    def test_stage_map_shape(self):
        trace = _trace(rb_full(4))
        rec = next(r for r in trace if r.instr.text.startswith("add r3"))
        stages = instruction_stages(rec)
        assert list(stages.values()).count("RF") == 2
        assert "EXE" in stages.values()
        assert "WB" in stages.values()

    def test_select_offsets_helper(self):
        trace = _trace(rb_full(4))
        offsets = dict(select_offsets(trace))
        assert offsets["sll r1, #2, r3"] >= 0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            pipeline_diagram([], first=0, count=5)

    def test_cycle_window_capped(self):
        trace = _trace(rb_full(4))
        text = pipeline_diagram(trace, max_cycles=8)
        header = text.splitlines()[0]
        assert "8" not in header.split()  # relative cycles 0..7 only
