"""Tests for the Pareto sweep: frontier math and the gated experiment."""

import pytest

from repro.harness.experiments import pareto_experiment, pareto_frontier


def _point(name, cycle_time, ipc):
    return {"machine": name, "cycle_time": cycle_time, "ipc_hmean": ipc}


class TestParetoFrontier:
    def test_dominated_points_removed(self):
        points = [
            _point("fast-low", 10.0, 1.0),
            _point("slow-high", 20.0, 2.0),
            _point("dominated", 20.0, 0.9),   # slower AND lower IPC
            _point("also-dominated", 25.0, 2.0),  # same IPC, slower clock
        ]
        frontier = pareto_frontier(points)
        assert [p["machine"] for p in frontier] == ["fast-low", "slow-high"]

    def test_duplicate_points_both_survive(self):
        points = [_point("a", 10.0, 1.0), _point("b", 10.0, 1.0)]
        assert len(pareto_frontier(points)) == 2

    def test_sorted_fastest_clock_first(self):
        points = [_point("b", 20.0, 2.0), _point("a", 10.0, 1.0)]
        assert [p["machine"] for p in pareto_frontier(points)] == ["a", "b"]

    def test_single_point_is_its_own_frontier(self):
        assert pareto_frontier([_point("only", 1.0, 1.0)]) == [
            _point("only", 1.0, 1.0)
        ]

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestParetoExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        # Smallest grid that still exercises both machine branches (a TC
        # design and the RB design) and the formal gate.
        return pareto_experiment(
            widths=(4,), workloads=("compress",),
            families=("cla", "rb"), verify_width=8,
        )

    def test_points_cover_the_grid(self, result):
        points = result.series["points"]
        assert {p["machine"] for p in points} == {
            "Pareto-cla-4w", "Pareto-rb-4w"
        }
        for point in points:
            assert point["ipc"]["compress"] > 0
            assert point["ipc_hmean"] == point["ipc"]["compress"]
            assert point["performance"] == pytest.approx(
                point["ipc_hmean"] / point["cycle_time"]
            )
            assert isinstance(point["frontier"], bool)

    def test_frontier_consistency(self, result):
        names = result.series["frontier"]
        assert names  # at least one non-dominated point
        flagged = {
            p["machine"] for p in result.series["points"] if p["frontier"]
        }
        assert set(names) == flagged

    def test_gate_ran_and_proved_the_converter_too(self, result):
        verified = result.series["verified"]
        # RB in the sweep drags its format converter through the gate.
        assert set(verified) == {"cla", "rb", "rb_to_tc_converter"}
        for record in verified.values():
            assert record["equivalent"] is True
            assert record["width"] == 8

    def test_text_renders(self, result):
        text = result.text()
        assert "Pareto" in text
        assert "frontier" in text

    def test_needs_a_workload(self):
        with pytest.raises(ValueError, match="at least one workload"):
            pareto_experiment(widths=(4,), workloads=(), families=("cla",))
