"""Tests for the experiment definitions (cheap ones run live; the IPC
sweeps are covered by the integration tests and benchmarks)."""

import pytest

from repro.harness.experiments import (
    dynamic_mix,
    sec34_adder_delays,
    table1_mix,
    table3_latencies,
)
from repro.isa.classify import FormatClass


class TestTable3Experiment:
    def test_rows_render(self):
        result = table3_latencies()
        text = result.text()
        assert "integer arithmetic" in text
        assert "1 (3)" in text

    def test_series_match_paper(self):
        series = table3_latencies().series
        assert series["INT_ARITH"] == (2, 1, 3, 1)
        assert series["SHIFT_LEFT"] == (3, 3, 5, 3)
        assert series["INT_MUL"] == (10, 10, 10, 10)


class TestSec34Experiment:
    def test_shape_claims(self):
        result = sec34_adder_delays(widths=(8, 64))
        ratios = result.series["ratios_vs_rb"]
        assert ratios["cla"] >= 2.0
        assert ratios["ripple"] > ratios["carry_select"] > ratios["cla"]
        delays = result.series["delays"]
        assert delays["rb"][8] == delays["rb"][64]


class TestDynamicMix:
    def test_single_workload_mix(self):
        mix = dynamic_mix("ijpeg")
        assert mix.total > 10_000
        assert mix.fraction(FormatClass.ARITH_RB_RB) > 0.2
        assert mix.fraction(FormatClass.MEMORY_RB_TC) > 0.1

    @pytest.mark.slow
    def test_table1_covers_all_rows(self):
        result = table1_mix()
        ours = result.series["ours"]
        assert all(value > 0 for value in ours.values())
        assert sum(ours.values()) == pytest.approx(1.0)
        # the directional Table 1 claims: memory + branches are heavy,
        # cmovs are rare
        assert ours["MEMORY_RB_TC"] > 0.10
        assert ours["BRANCH_RB"] > 0.08
        assert ours["CMOV_SIGN_RB_RB"] < 0.05


class TestTimelineExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.harness.experiments import timeline_experiment
        return timeline_experiment(workload="li")

    def test_rows_and_total(self, result):
        text = result.text()
        assert "TOTAL" in text
        assert result.rows[-1][0] == "TOTAL"
        # every non-total row names its aligned row span
        assert all(str(row[0]).startswith("rows ") for row in result.rows[:-1])

    def test_series_shape(self, result):
        series = result.series
        assert series["workload"] == "li"
        assert series["a_machine"] == "Baseline-4w"
        assert series["b_machine"] == "RB-limited-4w"
        assert series["summary"]["cycle_ratio"] < 1.0
        assert series["phases"]

    def test_notes_point_at_the_cli(self, result):
        assert any("repro timeline" in note for note in result.notes)
