"""Benchmark plumbing: honest sweep ratios and the batched history row.

The sweep benchmark once published a pool-vs-serial "speedup" of 0.868
measured on a host where the pool arm had silently fallen back to
serial dispatch — two timings of the same code path.  These tests pin
the fix (the ratio is only computed when the pool arm actually pooled,
otherwise ``None`` plus a note), the dispatch record that makes the
policy auditable, and the batched-sweep row's entry into the
``BENCH_history.jsonl`` regression gate.
"""

import json

from repro.core.machine import Machine
from repro.core.presets import baseline, ideal
from repro.harness.perfbench import sweep_benchmark
from repro.harness.perfhistory import history_record
from repro.harness.runner import SimulationRunner
from repro.workloads.suite import build


class TestSweepDispatchPolicy:
    def test_speedup_none_on_narrow_host(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        entry = sweep_benchmark(
            configs=[baseline(4), ideal(4)], workloads=["compress"], jobs=2
        )
        assert entry["speedup"] is None
        assert "2-cpu host" in entry["speedup_note"]
        assert entry["dispatch"]["parallel"]["policy"] == "serial"
        assert entry["dispatch"]["serial"]["policy"] == "serial"
        assert entry["results_identical"] is True


class TestRunnerDispatchRecord:
    def test_serial_matrix_records_batch_groups(self, tmp_path):
        runner = SimulationRunner(
            cache_path=tmp_path / "cache.json",
            bench_path=tmp_path / "bench.json",
        )
        configs = [baseline(4), ideal(4)]
        results = runner.run_matrix(configs, ["compress"])
        dispatch = runner.last_dispatch
        assert dispatch["policy"] == "serial"
        # Both configs are batchable and share the workload: one group.
        assert dispatch["batched_groups"] == 1
        assert dispatch["batched_jobs"] == 2
        program = build("compress")
        for config in configs:
            solo = Machine(config).run(program)
            batched = results[(config.name, "compress")]
            assert json.dumps(solo.to_dict(), sort_keys=True) == json.dumps(
                batched.to_dict(), sort_keys=True
            )


class TestBatchedHistoryRow:
    def test_history_record_includes_batched_pair(self):
        payload = {
            "throughput": [],
            "batched_sweep": {
                "workload": "vortex",
                "instr_per_sec": 123456.0,
                "speedup": 1.71,
            },
        }
        row = history_record(payload)
        assert row["throughput"]["batched-sweep::vortex"] == 123456.0
        assert row["batched_sweep_speedup"] == 1.71

    def test_history_record_without_batched_sweep(self):
        row = history_record({"throughput": []})
        assert "batched_sweep_speedup" in row
        assert row["batched_sweep_speedup"] is None
        assert not any(
            pair.startswith("batched-sweep") for pair in row["throughput"]
        )
