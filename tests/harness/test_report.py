"""Tests for the report renderer (the sweep itself is exercised by the
benchmarks; these cover rendering with synthetic results)."""

from repro.harness.experiments import ExperimentResult
from repro.harness.report import _bar_chart_for, _render


def fig_result():
    return ExperimentResult(
        experiment="fig9",
        title="Figure 9 (synthetic)",
        headers=["benchmark", "M1", "M2"],
        rows=[["bzip2", 1.0, 1.2], ["gap", 2.0, 2.4], ["MEAN", 1.5, 1.8]],
        series={
            "machines": ["M1", "M2"],
            "ipc": {"M1": [1.0, 2.0], "M2": [1.2, 2.4]},
            "means": {"M1": 1.5, "M2": 1.8},
        },
    )


class TestRender:
    def test_table_and_chart_in_markdown(self):
        text = _render(fig_result())
        assert text.startswith("## Figure 9 (synthetic)")
        assert "benchmark" in text
        assert "#" in text            # bars present
        assert text.count("```") == 4  # table block + chart block

    def test_bar_chart_for_figures(self):
        chart = _bar_chart_for(fig_result())
        assert "bzip2" in chart
        assert "M2" in chart
        # MEAN row excluded from bars
        assert "MEAN" not in chart

    def test_fig14_chart(self):
        result = ExperimentResult(
            experiment="fig14", title="t", headers=["n", "4", "8"],
            rows=[["full", 1.2, 1.1]],
            series={"full": {4: 1.2, 8: 1.1}, "No-1": {4: 1.0, 8: 0.9}},
        )
        chart = _bar_chart_for(result)
        assert "No-1" in chart
        assert "4-wide" in chart

    def test_non_figure_gets_no_chart(self):
        result = ExperimentResult(
            experiment="table3", title="t", headers=["a"], rows=[["x"]],
        )
        assert _bar_chart_for(result) is None

    def test_notes_rendered(self):
        result = ExperimentResult(
            experiment="x", title="t", headers=["a"], rows=[["v"]],
            notes=["important caveat"],
        )
        assert "important caveat" in result.text()
