"""Parallel ``run_matrix`` must be indistinguishable from the serial path.

The process-pool fan-out returns serialized stats/profiles that the
parent merges into the shared cache and bench log; these tests pin down
that the merged results, the on-disk cache, and the cache counters all
match a serial sweep bit for bit.
"""

import json

import pytest

from repro.core.presets import baseline, ideal, rb_full, rb_limited
from repro.harness.runner import (
    MatrixWorkerError,
    SimulationRunner,
    _simulate_for_pool,
)

MACHINES = [baseline(4), rb_limited(4), rb_full(4), ideal(4)]
KERNELS = ["ijpeg", "li"]


@pytest.fixture(scope="module")
def sweeps(tmp_path_factory):
    """One serial and one 2-worker parallel cold sweep over the same matrix."""
    tmp = tmp_path_factory.mktemp("parallel-runner")
    out = {}
    for label, jobs in (("serial", None), ("parallel", 2)):
        runner = SimulationRunner(
            cache_path=tmp / f"{label}.json",
            bench_path=tmp / f"{label}-bench.json",
        )
        results = runner.run_matrix(
            MACHINES, KERNELS, jobs=jobs, force_pool=jobs is not None
        )
        out[label] = (runner, results)
    return out


class TestParallelEquivalence:
    def test_same_keys(self, sweeps):
        _, serial = sweeps["serial"]
        _, parallel = sweeps["parallel"]
        assert set(serial) == set(parallel)
        assert len(serial) == len(MACHINES) * len(KERNELS)

    def test_full_stats_identical(self, sweeps):
        """Every field of every SimStats, via to_dict, across all 8 pairs."""
        _, serial = sweeps["serial"]
        _, parallel = sweeps["parallel"]
        for key in serial:
            assert serial[key].to_dict() == parallel[key].to_dict(), key

    def test_on_disk_caches_identical(self, sweeps):
        serial_runner, _ = sweeps["serial"]
        parallel_runner, _ = sweeps["parallel"]
        serial_disk = json.loads(serial_runner.cache.path.read_text())
        parallel_disk = json.loads(parallel_runner.cache.path.read_text())
        assert serial_disk == parallel_disk

    def test_cache_counter_parity(self, sweeps):
        """Parallel counts exactly one miss per uncached pair, no phantom hits."""
        for label in ("serial", "parallel"):
            runner, results = sweeps[label]
            assert runner.metrics.counter("cache.misses").value == len(results)
            assert runner.metrics.counter("cache.hits").value == 0

    def test_bench_log_covers_every_pair(self, sweeps):
        for label in ("serial", "parallel"):
            runner, results = sweeps[label]
            payload = json.loads(runner.bench.path.read_text())
            logged = {(r["machine"], r["workload"]) for r in payload["runs"]}
            assert logged == set(results)

    def test_parallel_warm_rerun_hits_cache(self, sweeps):
        parallel_runner, first = sweeps["parallel"]
        rerun = SimulationRunner(cache_path=parallel_runner.cache.path)
        results = rerun.run_matrix(MACHINES, KERNELS, jobs=2, force_pool=True)
        assert rerun.metrics.counter("cache.misses").value == 0
        assert rerun.metrics.counter("cache.hits").value == len(results)
        for key in results:
            assert results[key].to_dict() == first[key].to_dict()


class TestWorkerFaultHandling:
    def test_failure_identifies_pair_and_keeps_siblings(self, tmp_path):
        """One crashing worker must not discard the rest of the sweep.

        The bad pair is submitted first; draining in submission order
        used to raise before any sibling result was merged or flushed.
        The error must name the failing (machine, workload), chain the
        worker's exception, and leave every completed sibling on disk.
        """
        config = ideal(4)
        cache_path = tmp_path / "cache.json"
        runner = SimulationRunner(
            cache_path=cache_path, bench_path=tmp_path / "bench.json"
        )
        with pytest.raises(MatrixWorkerError) as excinfo:
            runner.run_matrix(
                [config], ["no-such-kernel", "fuzz:mixed:0"], jobs=2,
                force_pool=True,
            )
        assert excinfo.value.machine == config.name
        assert excinfo.value.workload == "no-such-kernel"
        assert isinstance(excinfo.value.__cause__, KeyError)
        # the sibling that completed was merged and flushed before raising
        rerun = SimulationRunner(cache_path=cache_path)
        results = rerun.run_matrix([config], ["fuzz:mixed:0"])
        assert rerun.metrics.counter("cache.hits").value == len(results) == 1

    def test_fuzz_names_rebuild_in_pool_workers(self, tmp_path):
        """``fuzz:<profile>:<seed>`` kernels are regenerated from the name
        alone, so pool workers simulate them without registry transfer."""
        config = rb_limited(4)
        runner = SimulationRunner(
            cache_path=tmp_path / "cache.json",
            bench_path=tmp_path / "bench.json",
        )
        parallel = runner.run_matrix(
            [config], ["fuzz:serial:0"], jobs=2, force_pool=True
        )
        fresh = SimulationRunner(cache_path=tmp_path / "serial.json")
        serial = fresh.run_matrix([config], ["fuzz:serial:0"])
        key = (config.name, "fuzz:serial:0")
        assert parallel[key].to_dict() == serial[key].to_dict()


class TestPoolWorker:
    def test_worker_matches_in_process_run(self, tmp_path):
        """The pool worker function itself returns what run() would cache."""
        config = ideal(4)
        stats_entry, profile_entry, spans = _simulate_for_pool(config, "compress")
        runner = SimulationRunner(cache_path=tmp_path / "cache.json")
        direct = runner.run(config, "compress")
        # the timeline rides the pool boundary inside the stats entry;
        # everything else must match the in-process to_dict() exactly
        timeline_entry = stats_entry.pop("timeline")
        assert stats_entry == direct.to_dict()
        assert timeline_entry == direct.timeline.to_dict()
        assert profile_entry["machine"] == config.name
        assert profile_entry["workload"] == "compress"
        assert profile_entry["instructions"] == direct.instructions
        assert spans == []  # no trace context -> no tracing overhead

    def test_worker_returns_spans_with_context(self):
        from repro.obs.trace import TraceContext

        parent = TraceContext("feedfacefeedface", "cafecafecafecafe")
        _, _, spans = _simulate_for_pool(ideal(4), "compress", parent)
        names = {span["name"] for span in spans}
        assert names == {"pool.worker", "machine.run"}
        assert all(span["trace_id"] == parent.trace_id for span in spans)
        worker = next(s for s in spans if s["name"] == "pool.worker")
        assert worker["parent_id"] == parent.span_id
