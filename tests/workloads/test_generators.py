"""Tests for the synthetic workload generators."""

import pytest

from repro.isa.semantics import run_program
from repro.workloads.generators import (
    conversion_chain_program,
    dependent_chain_program,
    independent_chains_program,
    pointer_chase_program,
)


class TestDependentChain:
    def test_terminates_with_expected_count(self):
        program = dependent_chain_program(iterations=10, chain_length=3)
        state = run_program(program)
        # 2 setup + 10 * (3 + 2) + halt
        assert state.instructions_executed == 2 + 10 * 5 + 1

    def test_accumulator_value(self):
        program = dependent_chain_program(iterations=10, chain_length=3)
        state = run_program(program)
        assert state.regs[2] == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            dependent_chain_program(iterations=0)


class TestIndependentChains:
    def test_each_chain_counts(self):
        program = independent_chains_program(iterations=5, chains=3)
        state = run_program(program)
        for i in range(3):
            assert state.regs[4 + i] == i + 5

    def test_validation(self):
        with pytest.raises(ValueError):
            independent_chains_program(chains=0)
        with pytest.raises(ValueError):
            independent_chains_program(chains=21)


class TestConversionChain:
    def test_terminates(self):
        program = conversion_chain_program(iterations=5)
        state = run_program(program)
        assert state.halted

    def test_validation(self):
        with pytest.raises(ValueError):
            conversion_chain_program(iterations=-1)


class TestPointerChase:
    def test_ring_is_complete(self):
        """The chase must visit exactly nodes*laps hops and terminate."""
        program = pointer_chase_program(nodes=16, laps=2)
        state = run_program(program)
        assert state.halted

    def test_ring_permutation_covers_all_nodes(self):
        """Following next pointers from the head returns to the head after
        exactly `nodes` hops — the ring is a single cycle."""
        program = pointer_chase_program(nodes=16, laps=1)
        state = run_program(program)
        head = state.regs[8]
        seen = set()
        node = head
        for _ in range(16):
            assert node not in seen
            seen.add(node)
            node = state.memory.read(node, 8)
        assert node == head
        assert len(seen) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            pointer_chase_program(nodes=1)
        with pytest.raises(ValueError):
            pointer_chase_program(nodes=16, laps=0)
