"""Tests for the 20-kernel workload suite: registration, termination,
golden checksums, and mix sanity."""

import pytest

from repro.isa.semantics import run_program
from repro.workloads.suite import (
    all_workloads,
    build,
    get_workload,
    spec95_names,
    spec2000_names,
)

#: Golden results: (dynamic instruction count, checksum) per kernel.  The
#: kernels are deterministic, so any change to their code or to the
#: interpreter's semantics shows up here.
GOLDEN = {
    "compress": (34901, 12176),
    "gcc": (38639, 61),
    "go": (36428, 787),
    "ijpeg": (19050, 11241),
    "li": (24015, 540868),
    "m88ksim": (31068, 30165),
    "perl": (56830, 256),
    "vortex": (40082, 804),
    "bzip2": (35309, 2250),
    "crafty": (25197, 63277),
    "eon": (33806, 1458941),
    "gap": (38297, 635302195893006430),
    "gcc2k": (58676, 245),
    "gzip": (82624, 2662),
    "mcf": (34087, 746),
    "parser": (35528, 15),
    "perlbmk": (43487, 97),
    "twolf": (34655, 683),
    "vortex2k": (40633, 708),
    "vpr": (56380, 23676),
}


class TestRegistry:
    def test_twenty_workloads(self):
        assert len(all_workloads()) == 20
        assert len(all_workloads("spec95")) == 8
        assert len(all_workloads("spec2000")) == 12

    def test_names_match_suites(self):
        assert set(spec95_names()) == {w.name for w in all_workloads("spec95")}
        assert set(spec2000_names()) == {w.name for w in all_workloads("spec2000")}

    def test_unknown_suite(self):
        with pytest.raises(ValueError):
            all_workloads("spec2017")

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("doom")

    def test_build_is_cached(self):
        assert build("gap") is build("gap")

    def test_descriptions_present(self):
        for workload in all_workloads():
            assert workload.description
            assert workload.source().strip()


class TestGoldenResults:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_kernel_golden(self, name):
        program = build(name)
        state = run_program(program, max_instructions=300_000)
        checksum_address = program.labels["checksum"]
        checksum = state.memory.read(checksum_address, 8)
        assert (state.instructions_executed, checksum) == GOLDEN[name]

    def test_every_kernel_has_a_checksum_slot(self):
        for workload in all_workloads():
            assert "checksum" in build(workload.name).labels


class TestSuiteShape:
    def test_dynamic_sizes_reasonable(self):
        """Run-to-completion sizes stay in the simulable range."""
        for name, (count, _) in GOLDEN.items():
            assert 15_000 <= count <= 100_000, name

    def test_mix_covers_all_format_classes(self):
        """Across the suite, every Table 1 class must appear."""
        from repro.harness.experiments import dynamic_mix
        from repro.isa.classify import FormatClass
        from repro.utils.stats import Distribution
        total = Distribution()
        # three diverse kernels are enough to cover every class
        for name in ("compress", "eon", "crafty"):
            total.merge(dynamic_mix(name))
        present = {cls for cls in FormatClass if total.fraction(cls) > 0}
        assert present == set(FormatClass)
