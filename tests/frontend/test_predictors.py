"""Tests for the branch predictors (gshare, PAs, hybrid chooser)."""

import pytest

from repro.frontend.gshare import GsharePredictor
from repro.frontend.hybrid import HybridPredictor, default_hybrid_predictor
from repro.frontend.pas import PAsPredictor


class TestGshare:
    def test_learns_always_taken(self):
        predictor = GsharePredictor(history_bits=8)
        pc = 0x1000
        for _ in range(8):
            predictor.update(pc, True)
        assert predictor.predict(pc)

    def test_learns_alternating_with_history(self):
        """Global history disambiguates a strict T/N alternation."""
        predictor = GsharePredictor(history_bits=8)
        outcome = True
        for _ in range(200):
            predictor.update(0x4000, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(100):
            if predictor.predict(0x4000) == outcome:
                hits += 1
            predictor.update(0x4000, outcome)
            outcome = not outcome
        assert hits >= 95

    def test_counter_saturates(self):
        predictor = GsharePredictor(history_bits=4)
        for _ in range(100):
            predictor.update(0, True)
        # one not-taken cannot flip a saturated counter
        predictor.update(0, False)
        assert predictor.predict(0)

    def test_accuracy_tracking(self):
        predictor = GsharePredictor(history_bits=4)
        predictor.update(0, True)
        assert 0.0 <= predictor.accuracy() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=0)


class TestPAs:
    def test_learns_per_branch_patterns(self):
        """Two branches with opposite biases must not interfere."""
        predictor = PAsPredictor(bht_bits=8, history_bits=6, set_bits=2)
        # adjacent branches: distinct BHT entries and distinct PHT sets
        for _ in range(50):
            predictor.update(0x1000, True)
            predictor.update(0x1004, False)
        assert predictor.predict(0x1000)
        assert not predictor.predict(0x1004)

    def test_learns_short_loop_pattern(self):
        """A loop taken 3x then not-taken once is a classic PAs win."""
        predictor = PAsPredictor(bht_bits=8, history_bits=8, set_bits=2)
        pattern = [True, True, True, False]
        for _ in range(100):
            for outcome in pattern:
                predictor.update(0x3000, outcome)
        hits = 0
        for outcome in pattern * 5:
            hits += predictor.predict(0x3000) == outcome
            predictor.update(0x3000, outcome)
        assert hits >= 18

    def test_validation(self):
        with pytest.raises(ValueError):
            PAsPredictor(history_bits=0)


class TestHybrid:
    def test_chooser_picks_better_component(self):
        predictor = default_hybrid_predictor()
        # a strict alternation at one PC: gshare nails it via history
        outcome = True
        for _ in range(300):
            predictor.update(0x8000, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(100):
            hits += predictor.predict(0x8000) == outcome
            predictor.update(0x8000, outcome)
            outcome = not outcome
        assert hits >= 90

    def test_biased_branches_predicted(self):
        predictor = default_hybrid_predictor()
        for _ in range(20):
            predictor.update(0x100, True)
        assert predictor.predict(0x100)

    def test_update_returns_correctness(self):
        predictor = default_hybrid_predictor()
        for _ in range(10):
            predictor.update(0x10, True)
        assert predictor.update(0x10, True) is True

    def test_accuracy_counts(self):
        predictor = default_hybrid_predictor()
        for _ in range(10):
            predictor.update(0, True)
        assert predictor.predictions == 10
        assert predictor.accuracy() > 0.5
