"""Tests for the BTB and return address stack."""

import pytest

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_replaces_target(self):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=4, associativity=2)  # 2 sets
        set_stride = 2 * 4  # same set every num_sets words
        a, b, c = 0x1000, 0x1000 + set_stride, 0x1000 + 2 * set_stride
        btb.update(a, 1)
        btb.update(b, 2)
        btb.lookup(a)       # refresh a
        btb.update(c, 3)    # evicts b
        assert btb.lookup(a) == 1
        assert btb.lookup(b) is None
        assert btb.lookup(c) == 3

    def test_hit_rate(self):
        btb = BranchTargetBuffer(entries=8, associativity=2)
        btb.lookup(0)
        btb.update(0, 4)
        btb.lookup(0)
        assert btb.hit_rate() == pytest.approx(0.5)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, associativity=4)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=0)


class TestRAS:
    def test_lifo(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)
