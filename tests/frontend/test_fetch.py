"""Tests for the fetch unit: bundles, prediction, stalls."""

import pytest

from repro.frontend.fetch import FetchUnit
from repro.isa.assembler import assemble
from repro.isa.semantics import ArchState
from repro.mem.hierarchy import MemoryHierarchy


def make_fetch(source, **kwargs):
    program = assemble(source)
    state = ArchState(program)
    hierarchy = MemoryHierarchy()
    unit = FetchUnit(program, state, hierarchy, **kwargs)
    return unit, program, hierarchy


def drain(unit, max_cycles=10_000):
    """Fetch everything, skipping stalls; returns fetched records."""
    records = []
    cycle = 0
    while not unit.halted and cycle < max_cycles:
        bundle = unit.fetch_bundle(cycle)
        records.extend(bundle)
        if bundle and bundle[-1].mispredicted:
            # resolve instantly for these tests
            unit.resolve_branch(cycle + 1)
        cycle += 1
    assert unit.halted, "program never finished fetching"
    return records


STRAIGHT = """
    .text
main:
    nop
    nop
    nop
    halt
"""


class TestBundles:
    def test_icache_cold_miss_stalls(self):
        unit, _, _ = make_fetch(STRAIGHT)
        assert unit.fetch_bundle(0) == []  # cold I-cache miss
        assert unit.fetch_stall_cycles >= 1

    def test_fetch_width_limits_bundle(self):
        source = ".text\nmain:\n" + "    nop\n" * 12 + "    halt\n"
        unit, _, hierarchy = make_fetch(source, fetch_width=8)
        hierarchy.icache.fill(0x1_0000)
        hierarchy.icache.fill(0x1_0040)
        bundle = unit.fetch_bundle(0)
        assert len(bundle) == 8

    def test_halt_ends_fetching(self):
        unit, _, hierarchy = make_fetch(STRAIGHT)
        hierarchy.icache.fill(0x1_0000)
        bundle = unit.fetch_bundle(0)
        assert len(bundle) == 4
        assert unit.halted
        assert unit.fetch_bundle(1) == []

    def test_two_taken_blocks_per_cycle(self):
        source = """
    .text
main:
    br a
a:
    br b
b:
    br c
c:
    halt
"""
        unit, _, hierarchy = make_fetch(source, max_blocks_per_cycle=2)
        hierarchy.icache.fill(0x1_0000)
        bundle = unit.fetch_bundle(0)
        # stops after the second taken branch
        assert len(bundle) == 2
        assert not unit.halted


class TestPredictionIntegration:
    def test_loop_branch_learned(self):
        source = """
    .text
main:
    lda r1, 50(zero)
loop:
    sub r1, #1, r1
    bgt r1, loop
    halt
"""
        unit, _, _ = make_fetch(source)
        drain(unit)
        assert unit.branches == 50
        # the predictor warms up; most iterations predict correctly
        assert unit.mispredictions <= 10

    def test_jsr_ret_uses_ras(self):
        source = """
    .text
main:
    jsr f
    jsr f
    jsr f
    halt
f:
    ret
"""
        unit, _, _ = make_fetch(source)
        records = drain(unit)
        rets = [r for r in records if r.instr.opcode.value == "ret"]
        assert len(rets) == 3
        assert all(not r.mispredicted for r in rets)

    def test_indirect_jump_btb_miss_then_hit(self):
        source = """
    .text
main:
    lda r1, 8(zero)
    lda r2, t
    lda r3, 0(zero)
loop:
    jmp (r2)
t:
    sub r1, #1, r1
    bgt r1, loop
    halt
"""
        unit, _, _ = make_fetch(source)
        records = drain(unit)
        jumps = [r for r in records if r.instr.opcode.value == "jmp"]
        assert jumps[0].mispredicted          # cold BTB
        assert not any(r.mispredicted for r in jumps[1:])

    def test_mispredict_stalls_until_resolved(self):
        # an alternating branch the cold predictor will miss at least once
        source = """
    .text
main:
    lda r1, 1(zero)
    beq r1, skip
    nop
skip:
    halt
"""
        unit, _, hierarchy = make_fetch(source)
        hierarchy.icache.fill(0x1_0000)
        unit.fetch_bundle(0)  # may or may not mispredict the beq
        if unit.stalled:
            assert unit.fetch_bundle(1) == []
            unit.resolve_branch(5)
            assert unit.fetch_bundle(3) == []  # still before resolve
            assert unit.fetch_bundle(5) != [] or unit.halted

    def test_resolve_without_stall_rejected(self):
        unit, _, _ = make_fetch(STRAIGHT)
        with pytest.raises(RuntimeError):
            unit.resolve_branch(1)


class TestCorrectPathExecution:
    def test_functional_results_recorded(self):
        source = """
    .text
main:
    lda r1, 5(zero)
    add r1, #2, r2
    halt
"""
        unit, _, _ = make_fetch(source)
        records = drain(unit)
        add = records[1]
        assert add.result.dest_value == 7
