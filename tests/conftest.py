"""Shared pytest configuration."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: full-suite experiments (run by default; deselect with -m 'not slow')"
    )
