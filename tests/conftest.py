"""Shared pytest configuration."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "regenerate tests/golden/*.json from the current simulator instead "
            "of comparing against it (see tests/integration/test_golden_results.py; "
            "only do this after reviewing RESULTS_VERSION, per EXPERIMENTS.md)"
        ),
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: full-suite experiments (run by default; deselect with -m 'not slow')"
    )
