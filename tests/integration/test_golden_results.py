"""Golden-result corpus: the simulator's numbers are frozen on disk.

Every file in ``tests/golden/`` is a full ``SimStats.to_dict()`` for one
(machine, kernel, width) triple — the paper's four pipelined-adder
machines crossed with three representative kernels at both issue widths.
The simulator is deterministic, so *any* divergence from the corpus is a
behaviour change: either a bug, or an intentional model change that must
be accompanied by a golden regeneration *and* a ``RESULTS_VERSION`` bump
in ``harness/runner.py`` (see EXPERIMENTS.md — stale result caches must
not survive a semantics change).

Regenerating, after that review::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_results.py --update-golden

Failures report the first diverging field via the same recursive walk
the differential tester uses, not a 400-line JSON dump.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.engine import ENGINE_ENV, ENGINES
from repro.core.presets import resolve_machine
from repro.harness.runner import SimulationRunner
from repro.verify.differential import first_divergence

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

#: The paper's four machine models (Ideal is the unpipelined reference,
#: pinned by the differential suite instead).
MACHINES = ["baseline", "staggered", "rb-limited", "rb-full"]

#: Three kernels spanning the behaviours that matter: dependent integer
#: arithmetic (ijpeg's butterflies), call/return recursion (li), and
#: memory-bound hashing (compress).
KERNELS = ["ijpeg", "li", "compress"]

WIDTHS = [4, 8]

CASES = [
    (machine, kernel, width)
    for machine in MACHINES
    for kernel in KERNELS
    for width in WIDTHS
]


def golden_path(machine: str, kernel: str, width: int) -> Path:
    return GOLDEN_DIR / f"{machine}-{width}w-{kernel}.json"


def simulate(machine: str, kernel: str, width: int) -> dict:
    runner = SimulationRunner()  # no cache: goldens pin live behaviour
    return runner.run(resolve_machine(machine, width), kernel).to_dict()


@pytest.mark.slow
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "machine, kernel, width", CASES,
    ids=[f"{m}-{w}w-{k}" for m, k, w in CASES],
)
def test_simulation_matches_golden(machine, kernel, width, engine, request,
                                   monkeypatch):
    # Both engines are pinned against the same corpus — goldens double as
    # an engine-parity audit.  Selection rides the environment variable so
    # the runner → Machine.run plumbing is exercised end to end.
    monkeypatch.setenv(ENGINE_ENV, engine)
    path = golden_path(machine, kernel, width)
    actual = simulate(machine, kernel, width)
    if request.config.getoption("--update-golden"):
        if engine != ENGINES[0]:
            pytest.skip("goldens are written once, from the first engine")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"golden file {path.name} missing — regenerate with --update-golden "
        f"(after RESULTS_VERSION review, see EXPERIMENTS.md)"
    )
    expected = json.loads(path.read_text())
    divergence = first_divergence(expected, actual)
    if divergence is not None:
        where, want, got = divergence
        pytest.fail(
            f"{machine}/{kernel}/{width}w ({engine} engine) diverges from "
            f"{path.name} at {where}: golden={want!r} actual={got!r}. If "
            f"this change is intentional, bump RESULTS_VERSION and rerun "
            f"with --update-golden."
        )


def test_corpus_is_complete_and_well_formed():
    """Every expected golden exists, parses, and names its own case."""
    for machine, kernel, width in CASES:
        path = golden_path(machine, kernel, width)
        assert path.exists(), f"missing golden {path.name}"
        stats = json.loads(path.read_text())
        assert stats["workload"] == kernel
        assert stats["machine"] == resolve_machine(machine, width).name
        assert stats["cycles"] > 0 and stats["instructions"] > 0
    extras = {p.name for p in GOLDEN_DIR.glob("*.json")} - {
        golden_path(m, k, w).name for m, k, w in CASES
    }
    assert not extras, f"unexpected golden files: {sorted(extras)}"
