"""Integration tests: the paper's qualitative claims on real kernels.

These run full simulations of suite kernels (seconds each); the complete
sweeps live in ``benchmarks/``.  Results are shared through the default
runner's on-disk cache, so a populated cache makes these nearly free.
"""

import pytest

from repro.core import all_paper_machines
from repro.core.statistics import BypassCase
from repro.harness.runner import default_runner

#: A small but diverse probe set: call-heavy, memory-heavy, add-chain,
#: and bit-twiddling kernels.
PROBE_WORKLOADS = ["li", "vortex", "gap", "crafty"]


@pytest.fixture(scope="module")
def results():
    runner = default_runner()
    return runner.run_matrix(all_paper_machines(8), PROBE_WORKLOADS)


class TestMachineOrdering:
    def test_ideal_at_least_baseline(self, results):
        for workload in PROBE_WORKLOADS:
            base = results[("Baseline-8w", workload)].ipc
            ideal_ipc = results[("Ideal-8w", workload)].ipc
            assert ideal_ipc >= base * 0.999, workload

    def test_rb_limited_never_beats_rb_full(self, results):
        for workload in PROBE_WORKLOADS:
            limited = results[("RB-limited-8w", workload)].ipc
            full = results[("RB-full-8w", workload)].ipc
            assert limited <= full * 1.001, workload

    def test_rb_full_never_beats_ideal(self, results):
        for workload in PROBE_WORKLOADS:
            full = results[("RB-full-8w", workload)].ipc
            ideal_ipc = results[("Ideal-8w", workload)].ipc
            assert full <= ideal_ipc * 1.001, workload

    def test_rb_tracks_ideal_on_add_chains(self, results):
        """gap's bignum carries are the RB adder's best case: the RB-full
        machine must recover most of the Ideal machine's advantage."""
        base = results[("Baseline-8w", "gap")].ipc
        full = results[("RB-full-8w", "gap")].ipc
        ideal_ipc = results[("Ideal-8w", "gap")].ipc
        assert (full - base) >= 0.0
        assert ideal_ipc > base * 1.1  # the add latency matters here


class TestBypassCaseClaims:
    def test_conversions_are_minority_of_bypasses(self, results):
        """Fig. 13's point: RB->TC conversions are a small fraction of
        last-arriving bypasses on the RB-full machine."""
        for workload in PROBE_WORKLOADS:
            stats = results[("RB-full-8w", workload)]
            assert stats.conversion_bypass_fraction() < 0.5, workload

    def test_bypassed_fraction_substantial(self, results):
        for workload in PROBE_WORKLOADS:
            stats = results[("RB-full-8w", workload)]
            assert 0.3 <= stats.bypassed_instruction_fraction() <= 1.0, workload


class TestSanity:
    def test_same_instruction_count_across_machines(self, results):
        """Machines change timing, never the retired instruction stream."""
        for workload in PROBE_WORKLOADS:
            counts = {
                results[(machine.name, workload)].instructions
                for machine in all_paper_machines(8)
            }
            assert len(counts) == 1, workload

    def test_branch_counts_match(self, results):
        for workload in PROBE_WORKLOADS:
            counts = {
                results[(machine.name, workload)].branches
                for machine in all_paper_machines(8)
            }
            assert len(counts) == 1, workload
