"""Request validation, routing, and response-schema tests for the server."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.validate import validate_json_schema
from repro.serve.client import ServeError
from repro.serve.server import MAX_JOBS_PER_REQUEST, BadRequest, _parse_job

SCHEMA = json.loads(
    (Path(__file__).resolve().parents[2] / "schemas" / "serve.schema.json").read_text()
)


# -- _parse_job --------------------------------------------------------------

def test_parse_job_resolves_machine_and_width():
    config, workload = _parse_job(
        {"machine": "rb-limited", "workload": "ijpeg", "width": 8}, 0, 4
    )
    assert config.name == "RB-limited-8w"
    assert workload == "ijpeg"


def test_parse_job_applies_default_width():
    config, _ = _parse_job({"machine": "ideal", "workload": "li"}, 0, 4)
    assert config.name == "Ideal-4w"


@pytest.mark.parametrize(
    "entry, message",
    [
        ("not-a-dict", "expected an object"),
        ({"machine": "ideal", "workload": "li", "bogus": 1}, "unknown fields"),
        ({"workload": "li"}, "machine"),
        ({"machine": "ideal"}, "workload"),
        ({"machine": "ideal", "workload": ""}, "workload"),
        ({"machine": "ideal", "workload": "li", "width": 16}, "width"),
        ({"machine": "ideal", "workload": "li", "steering": "magic"}, "steering"),
        ({"machine": "no-such-machine", "workload": "li"}, "no-such-machine"),
    ],
)
def test_parse_job_rejects_bad_entries(entry, message):
    with pytest.raises(BadRequest, match=message):
        _parse_job(entry, 0, 4)


# -- live routing ------------------------------------------------------------

def test_unknown_route_is_404_and_wrong_method_is_405(live_service):
    handle = live_service()
    with pytest.raises(ServeError) as excinfo:
        handle.client._request("GET", "/nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        handle.client._request("GET", "/jobs")
    assert excinfo.value.status == 405
    with pytest.raises(ServeError) as excinfo:
        handle.client._request("POST", "/healthz", {})
    assert excinfo.value.status == 405


def test_malformed_and_oversized_requests_are_400(live_service):
    handle = live_service()
    for payload in (
        {},                              # no jobs array
        {"jobs": []},                    # empty jobs array
        {"jobs": [{"machine": "ideal"}]},  # missing workload
        {"jobs": [{"machine": "ideal", "workload": "li"}] * (MAX_JOBS_PER_REQUEST + 1)},
    ):
        with pytest.raises(ServeError) as excinfo:
            handle.client._request("POST", "/jobs", payload)
        assert excinfo.value.status == 400, payload
    bad = handle.client.metrics()["service"]["counters"]["serve.requests.bad"]
    assert bad == 4


def test_jobs_response_matches_checked_in_schema(live_service):
    handle = live_service()
    reply = handle.client.submit(
        [
            {"machine": "ideal", "workload": "fuzz:serial:11", "width": 4},
            {"machine": "ideal", "workload": "fuzz:serial:11", "width": 4},
        ]
    )
    validate_json_schema(reply, SCHEMA)
    assert reply["ok"] is True
    first, dup = reply["results"]
    assert first["coalesced"] is False and dup["coalesced"] is True
    assert first["ipc"] == dup["ipc"]
    assert first["stats"]["machine"] == "Ideal-4w"


def test_healthz_metrics_and_events_endpoints(live_service):
    handle = live_service()
    handle.client.submit([{"machine": "ideal", "workload": "fuzz:serial:12"}])
    health = handle.client.healthz()
    assert health["status"] == "ok"
    assert health["history"][0] == "ok"
    assert health["batches_dispatched"] >= 1
    metrics = handle.client.metrics()
    assert metrics["service"]["counters"]["serve.jobs.completed"] == 1
    assert "runner" in metrics
    texts = [event["text"] for event in handle.client.events()["events"]]
    assert "service:start" in texts and "batch:done" in texts


def test_repeat_request_is_served_from_the_sharded_cache(live_service):
    handle = live_service()
    first = handle.client.submit([{"machine": "ideal", "workload": "fuzz:serial:13"}])
    hits_before = handle.client.metrics()["runner"]["counters"]["cache.hits"]
    second = handle.client.submit([{"machine": "ideal", "workload": "fuzz:serial:13"}])
    hits_after = handle.client.metrics()["runner"]["counters"]["cache.hits"]
    assert second["results"][0]["stats"] == first["results"][0]["stats"]
    assert hits_after > hits_before
    cache_dir = Path(handle.service.runner.cache.path)
    assert cache_dir.is_dir()
    assert list(cache_dir.glob("shard-*.json"))


# -- GET /trace error paths --------------------------------------------------

def test_trace_listing_is_empty_on_a_fresh_service(live_service):
    handle = live_service()
    assert handle.client.traces() == {"traces": []}


def test_unknown_trace_id_is_404(live_service):
    handle = live_service()
    with pytest.raises(ServeError) as excinfo:
        handle.client.trace("no-such-trace")
    assert excinfo.value.status == 404
    assert "unknown trace" in excinfo.value.payload["error"]


def test_bad_trace_format_is_400(live_service):
    handle = live_service()
    handle.client.submit([{"machine": "ideal", "workload": "fuzz:serial:21"}])
    (trace_id,) = handle.client.traces()["traces"]
    with pytest.raises(ServeError) as excinfo:
        handle.client.trace(trace_id, format="bogus")
    assert excinfo.value.status == 400
    assert "bogus" in excinfo.value.payload["error"]


# -- async submit + live streaming -------------------------------------------

def test_async_submit_streams_rows_then_done(live_service):
    handle = live_service()
    reply = handle.client.submit_async(
        [{"machine": "rb-limited", "workload": "fuzz:serial:31", "width": 4}]
    )
    validate_json_schema(reply, SCHEMA)
    assert reply["ok"] is True and "results" not in reply
    (job,) = reply["jobs"]
    assert job["machine"] == "RB-limited-4w"
    assert job["coalesced"] is False
    assert job["stream"] == f"/jobs/{job['job_id']}/stream"

    events = list(handle.client.stream(job["job_id"]))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "dispatch"
    assert kinds[-1] == "done"
    rows = [event["row"] for event in events if event["event"] == "row"]
    assert rows, "expected timeline rows in the stream"
    assert [r["cycle_end"] for r in rows] == sorted(r["cycle_end"] for r in rows)
    done = events[-1]
    assert done["cycles"] == rows[-1]["cycle_end"] + 1
    assert done["instructions"] == rows[-1]["retired_total"]

    # a late subscriber replays the identical history, no duplicates
    replay = list(handle.client.stream(job["job_id"]))
    assert replay == events

    status = handle.client.job_status(job["job_id"])
    assert status["done"] is True and status["ok"] is True
    assert status["rows_streamed"] == len(rows)


def test_coalesced_async_submissions_share_one_stream(live_service):
    handle = live_service()
    spec = {"machine": "ideal", "workload": "fuzz:serial:32", "width": 4}
    reply = handle.client.submit_async([spec, spec])
    first, dup = reply["jobs"]
    assert dup["coalesced"] is True
    assert dup["job_id"] == first["job_id"]
    events = list(handle.client.stream(first["job_id"]))
    assert events[-1]["event"] == "done"


def test_sync_results_carry_job_ids(live_service):
    handle = live_service()
    reply = handle.client.submit(
        [{"machine": "ideal", "workload": "fuzz:serial:33", "width": 4}]
    )
    validate_json_schema(reply, SCHEMA)
    (result,) = reply["results"]
    assert isinstance(result["job_id"], int)
    # the sync job's stream exists and is finished
    status = handle.client.job_status(result["job_id"])
    assert status["done"] is True and status["ok"] is True


def test_job_endpoint_error_paths(live_service):
    handle = live_service()
    with pytest.raises(ServeError) as excinfo:
        handle.client.job_status(424242)
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        handle.client._request("GET", "/jobs/not-a-number")
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        handle.client._request("GET", "/jobs/424242/stream")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        handle.client._request(
            "POST", "/jobs",
            {"jobs": [{"machine": "ideal", "workload": "li"}], "wait": "yes"},
        )
    assert excinfo.value.status == 400
