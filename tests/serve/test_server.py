"""Request validation, routing, and response-schema tests for the server."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.validate import validate_json_schema
from repro.serve.client import ServeError
from repro.serve.server import MAX_JOBS_PER_REQUEST, BadRequest, _parse_job

SCHEMA = json.loads(
    (Path(__file__).resolve().parents[2] / "schemas" / "serve.schema.json").read_text()
)


# -- _parse_job --------------------------------------------------------------

def test_parse_job_resolves_machine_and_width():
    config, workload = _parse_job(
        {"machine": "rb-limited", "workload": "ijpeg", "width": 8}, 0, 4
    )
    assert config.name == "RB-limited-8w"
    assert workload == "ijpeg"


def test_parse_job_applies_default_width():
    config, _ = _parse_job({"machine": "ideal", "workload": "li"}, 0, 4)
    assert config.name == "Ideal-4w"


@pytest.mark.parametrize(
    "entry, message",
    [
        ("not-a-dict", "expected an object"),
        ({"machine": "ideal", "workload": "li", "bogus": 1}, "unknown fields"),
        ({"workload": "li"}, "machine"),
        ({"machine": "ideal"}, "workload"),
        ({"machine": "ideal", "workload": ""}, "workload"),
        ({"machine": "ideal", "workload": "li", "width": 16}, "width"),
        ({"machine": "ideal", "workload": "li", "steering": "magic"}, "steering"),
        ({"machine": "no-such-machine", "workload": "li"}, "no-such-machine"),
    ],
)
def test_parse_job_rejects_bad_entries(entry, message):
    with pytest.raises(BadRequest, match=message):
        _parse_job(entry, 0, 4)


# -- live routing ------------------------------------------------------------

def test_unknown_route_is_404_and_wrong_method_is_405(live_service):
    handle = live_service()
    with pytest.raises(ServeError) as excinfo:
        handle.client._request("GET", "/nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        handle.client._request("GET", "/jobs")
    assert excinfo.value.status == 405
    with pytest.raises(ServeError) as excinfo:
        handle.client._request("POST", "/healthz", {})
    assert excinfo.value.status == 405


def test_malformed_and_oversized_requests_are_400(live_service):
    handle = live_service()
    for payload in (
        {},                              # no jobs array
        {"jobs": []},                    # empty jobs array
        {"jobs": [{"machine": "ideal"}]},  # missing workload
        {"jobs": [{"machine": "ideal", "workload": "li"}] * (MAX_JOBS_PER_REQUEST + 1)},
    ):
        with pytest.raises(ServeError) as excinfo:
            handle.client._request("POST", "/jobs", payload)
        assert excinfo.value.status == 400, payload
    bad = handle.client.metrics()["service"]["counters"]["serve.requests.bad"]
    assert bad == 4


def test_jobs_response_matches_checked_in_schema(live_service):
    handle = live_service()
    reply = handle.client.submit(
        [
            {"machine": "ideal", "workload": "fuzz:serial:11", "width": 4},
            {"machine": "ideal", "workload": "fuzz:serial:11", "width": 4},
        ]
    )
    validate_json_schema(reply, SCHEMA)
    assert reply["ok"] is True
    first, dup = reply["results"]
    assert first["coalesced"] is False and dup["coalesced"] is True
    assert first["ipc"] == dup["ipc"]
    assert first["stats"]["machine"] == "Ideal-4w"


def test_healthz_metrics_and_events_endpoints(live_service):
    handle = live_service()
    handle.client.submit([{"machine": "ideal", "workload": "fuzz:serial:12"}])
    health = handle.client.healthz()
    assert health["status"] == "ok"
    assert health["history"][0] == "ok"
    assert health["batches_dispatched"] >= 1
    metrics = handle.client.metrics()
    assert metrics["service"]["counters"]["serve.jobs.completed"] == 1
    assert "runner" in metrics
    texts = [event["text"] for event in handle.client.events()["events"]]
    assert "service:start" in texts and "batch:done" in texts


def test_repeat_request_is_served_from_the_sharded_cache(live_service):
    handle = live_service()
    first = handle.client.submit([{"machine": "ideal", "workload": "fuzz:serial:13"}])
    hits_before = handle.client.metrics()["runner"]["counters"]["cache.hits"]
    second = handle.client.submit([{"machine": "ideal", "workload": "fuzz:serial:13"}])
    hits_after = handle.client.metrics()["runner"]["counters"]["cache.hits"]
    assert second["results"][0]["stats"] == first["results"][0]["stats"]
    assert hits_after > hits_before
    cache_dir = Path(handle.service.runner.cache.path)
    assert cache_dir.is_dir()
    assert list(cache_dir.glob("shard-*.json"))
