"""Fixtures for the serve tests: a real service on an ephemeral port.

The service runs its own event loop on a daemon thread (exactly how the
``repro serve`` CLI hosts it, minus the foreground process), and tests
talk to it over real sockets with :class:`ServeClient`.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve import ServeClient, ServeConfig, SimulationService


class ServiceUnderTest:
    """A SimulationService hosted on a background event-loop thread."""

    def __init__(self, config: ServeConfig) -> None:
        self.service = SimulationService(config)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="serve-test-loop", daemon=True
        )
        self.client: ServeClient | None = None

    def start(self) -> "ServiceUnderTest":
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.service.start(), self.loop).result(30)
        self.client = ServeClient("127.0.0.1", self.service.port, timeout=300)
        return self

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


@pytest.fixture
def live_service(tmp_path):
    """Factory fixture: ``live_service(**overrides)`` -> ServiceUnderTest."""
    handles: list[ServiceUnderTest] = []

    def factory(**overrides) -> ServiceUnderTest:
        settings = dict(
            cache_dir=tmp_path / f"cache-{len(handles)}",
            cache_shards=8,
            pool_jobs=2,
            max_batch=8,
            batch_window=0.02,
            job_timeout=120.0,
            max_retries=3,
            backoff_base=0.01,
            backoff_cap=0.05,
            request_timeout=240.0,
        )
        settings.update(overrides)
        handle = ServiceUnderTest(ServeConfig(**settings)).start()
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.stop()
