"""Unit tests for the per-job SSE stream buffers (serve/stream.py).

These run the :class:`JobStreams` table *unbound* (no event loop), which
exercises the direct-call path of ``_submit``; the loop-marshalled path
is covered end-to-end by ``test_server.py``'s live streaming tests.
"""

from __future__ import annotations

import asyncio

from repro.serve.stream import MAX_EVENTS, JobStream, JobStreams


def collect(stream: JobStream, heartbeat: float = 30.0, limit: int | None = None):
    """Drive ``follow`` to completion (or ``limit`` yields) synchronously."""

    async def drain():
        out = []
        async for event in stream.follow(heartbeat):
            out.append(event)
            if limit is not None and len(out) >= limit:
                break
        return out

    return asyncio.run(drain())


class TestJobStream:
    def test_follow_replays_buffer_then_terminal(self):
        streams = JobStreams()
        streams.ensure(1, "Ideal-4w", "li")
        streams.publish(1, "dispatch", batch=1, attempt=1, mode="serial")
        streams.publish(1, "row", row={"cycle_end": 255})
        streams.publish(1, "row", row={"cycle_end": 511})
        streams.finish(1, True, {"cycles": 512})
        events = collect(streams.get(1))
        assert [e["event"] for e in events] == ["dispatch", "row", "row", "done"]
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert events[-1]["cycles"] == 512
        # a second subscriber replays the identical history
        assert collect(streams.get(1)) == events

    def test_heartbeat_yields_none_while_idle(self):
        stream = JobStream(1, "Ideal-4w", "li")
        beats = collect(stream, heartbeat=0.01, limit=2)
        assert beats == [None, None]

    def test_finish_replays_rows_past_the_watermark(self):
        streams = JobStreams()
        streams.ensure(2, "Ideal-4w", "li")
        streams.publish(2, "row", row={"cycle_end": 255})  # streamed live
        rows = [{"cycle_end": 255}, {"cycle_end": 511}, {"cycle_end": 700}]
        streams.finish(2, True, {"cycles": 701}, rows=rows)
        events = collect(streams.get(2))
        row_events = [e["row"] for e in events if e["event"] == "row"]
        assert row_events == rows  # suffix replayed, no duplicates
        assert events[-1]["event"] == "done"

    def test_finish_skips_replay_when_decimation_shrank_rows(self):
        streams = JobStreams()
        streams.ensure(3, "Ideal-4w", "li")
        for cycle in (63, 127, 191, 255):
            streams.publish(3, "row", row={"cycle_end": cycle})
        # decimated final timeline: coarser than what already streamed
        streams.finish(3, True, {"cycles": 256}, rows=[{"cycle_end": 255}])
        events = collect(streams.get(3))
        assert sum(e["event"] == "row" for e in events) == 4
        assert events[-1]["event"] == "done"

    def test_failed_terminal_event(self):
        streams = JobStreams()
        streams.ensure(4, "Ideal-4w", "li")
        streams.finish(4, False, {"error": "ValueError('boom')"})
        events = collect(streams.get(4))
        assert [e["event"] for e in events] == ["failed"]
        stream = streams.get(4)
        assert stream.done and stream.ok is False

    def test_publish_after_done_is_ignored(self):
        streams = JobStreams()
        streams.ensure(5, "Ideal-4w", "li")
        streams.finish(5, True, {"cycles": 1})
        streams.publish(5, "row", row={"cycle_end": 9})
        streams.finish(5, False, {"error": "late"})  # double finish: no-op
        events = collect(streams.get(5))
        assert [e["event"] for e in events] == ["done"]
        assert streams.get(5).ok is True

    def test_publish_unknown_job_is_noop(self):
        streams = JobStreams()
        streams.publish(99, "row", row={})
        streams.finish(99, True, {})
        assert streams.get(99) is None

    def test_event_cap_counts_drops(self):
        stream = JobStream(6, "Ideal-4w", "li")
        for i in range(MAX_EVENTS + 10):
            stream._append("row", {"row": {"cycle_end": i}})
        assert len(stream.events) == MAX_EVENTS
        assert stream.dropped == 10
        assert stream.status()["events_dropped"] == 10

    def test_status_payload(self):
        streams = JobStreams()
        streams.ensure(7, "RB-limited-4w", "ijpeg")
        streams.publish(7, "row", row={"cycle_end": 255})
        status = streams.get(7).status()
        assert status == {
            "job_id": 7,
            "machine": "RB-limited-4w",
            "workload": "ijpeg",
            "done": False,
            "ok": None,
            "events_buffered": 1,
            "rows_streamed": 1,
            "events_dropped": 0,
        }


class TestJobStreamsTable:
    def test_ensure_is_idempotent(self):
        streams = JobStreams()
        first = streams.ensure(1, "Ideal-4w", "li")
        assert streams.ensure(1, "Ideal-4w", "li") is first
        assert len(streams) == 1

    def test_finished_streams_evict_oldest(self):
        streams = JobStreams(max_finished=2)
        for job_id in (1, 2, 3):
            streams.ensure(job_id, "Ideal-4w", "li")
            streams.finish(job_id, True, {"cycles": job_id})
        assert streams.get(1) is None  # evicted
        assert streams.get(2) is not None
        assert streams.get(3) is not None

    def test_live_streams_are_never_evicted(self):
        streams = JobStreams(max_finished=1)
        streams.ensure(1, "Ideal-4w", "li")  # stays live
        for job_id in (2, 3, 4):
            streams.ensure(job_id, "Ideal-4w", "li")
            streams.finish(job_id, True, {})
        assert streams.get(1) is not None

    def test_bound_loop_marshals_publishes(self):
        """With a bound loop, publishes land via call_soon_threadsafe in
        FIFO order even from the loop thread itself."""

        async def scenario():
            streams = JobStreams()
            streams.bind_loop(asyncio.get_running_loop())
            streams.ensure(1, "Ideal-4w", "li")
            streams.publish(1, "row", row={"cycle_end": 1})
            streams.finish(1, True, {"cycles": 2})
            # nothing lands until the loop runs its callbacks
            assert streams.get(1).events == []
            await asyncio.sleep(0)
            stream = streams.get(1)
            assert [e["event"] for e in stream.events] == ["row", "done"]
            return [event async for event in stream.follow(30.0)]

        events = asyncio.run(scenario())
        assert [e["event"] for e in events] == ["row", "done"]
