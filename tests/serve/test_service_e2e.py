"""End-to-end acceptance test for ``repro serve``.

The scenario from the issue, verbatim: a client submits 20 mixed jobs
(with duplicates), one process-pool worker is killed mid-batch, and all
jobs must still complete with correct cached results, with retry
counters visible at ``/metrics`` and ``/healthz`` reporting
degraded-then-recovered.

The worker kill is a deterministic ``fault:kill-once`` workload (see
``repro.verify.faults``): the first worker to build it SIGKILLs itself,
breaking the pool mid-batch; the retry — serial, because the pool
failure degraded the service — finds the fault's marker file already
armed and simulates normally.
"""

from __future__ import annotations

import pytest

from repro.verify import faults
from repro.verify.faults import fault_name

pytestmark = pytest.mark.slow

# 12 unique jobs + 1 fault job + 7 duplicates = 20 submitted jobs.
UNIQUE_JOBS = [
    {"machine": machine, "workload": f"fuzz:{profile}:{seed}", "width": width}
    for machine, profile, seed, width in [
        ("ideal", "serial", 21, 4),
        ("ideal", "mixed", 22, 8),
        ("baseline", "serial", 23, 4),
        ("baseline", "branchy", 24, 4),
        ("staggered", "mixed", 25, 4),
        ("staggered", "serial", 26, 8),
        ("rb-limited", "mixed", 27, 4),
        ("rb-limited", "memory", 28, 4),
        ("rb-full", "serial", 29, 4),
        ("rb-full", "mixed", 30, 8),
        ("ideal-no-1,2", "serial", 31, 4),
        ("baseline", "mixed", 32, 4),
    ]
]
DUPLICATES = [UNIQUE_JOBS[i] for i in (0, 2, 4, 6, 8, 10, 11)]


def test_twenty_mixed_jobs_survive_a_worker_kill(live_service, monkeypatch, tmp_path):
    fault_dir = tmp_path / "faults"
    fault_dir.mkdir()
    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(fault_dir))

    handle = live_service(pool_jobs=2, max_batch=8, batch_window=0.05)
    kill_job = {
        "machine": "ideal",
        "workload": fault_name("kill-once", "e2e-kill", "fuzz:serial:21"),
        "width": 4,
    }
    jobs = [kill_job] + UNIQUE_JOBS + DUPLICATES
    assert len(jobs) == 20

    reply = handle.client.submit(jobs)

    # Every job completed, despite the mid-batch worker death.
    assert reply["ok"] is True
    assert len(reply["results"]) == 20
    assert all(result["ok"] for result in reply["results"])
    assert (fault_dir / "e2e-kill").exists()  # the fault really fired

    # Duplicates coalesced onto the first submission's simulation.
    coalesced = [result for result in reply["results"] if result["coalesced"]]
    assert len(coalesced) >= len(DUPLICATES)
    by_key = {}
    for result in reply["results"]:
        key = (result["machine"], result["workload"])
        by_key.setdefault(key, []).append(result)
    for key, group in by_key.items():
        assert len({entry["ipc"] for entry in group}) == 1, key

    # The killed batch was retried: its jobs carry attempts > 1, and the
    # retry counters are visible at /metrics.
    kill_result = next(
        result for result in reply["results"]
        if result["workload"] == kill_job["workload"]
    )
    assert kill_result["attempts"] > 1
    counters = handle.client.metrics()["service"]["counters"]
    assert counters["serve.retries"] >= 1
    assert counters["serve.batches.retried"] >= 1
    assert counters["serve.health.degradations"] >= 1
    assert counters["serve.jobs.completed"] == 13  # unique jobs incl. the fault

    # /healthz reports degraded-then-recovered: the pool failure flipped
    # the service to degraded, a clean serial batch earned a pool probe,
    # and the probe (a later batch) recovered it.
    health = handle.client.healthz()
    history = health["history"]
    assert "degraded" in history
    assert history[0] == "ok"
    degraded_at = history.index("degraded")
    assert "ok" in history[degraded_at + 1:], history
    assert health["status"] == "ok"
    assert counters["serve.health.recoveries"] >= 1

    # Results are correct and cached: resubmitting the whole mix (fault
    # included, now spent) answers from the cache with identical stats.
    hits_before = handle.client.metrics()["runner"]["counters"]["cache.hits"]
    again = handle.client.submit(jobs)
    assert again["ok"] is True
    hits_after = handle.client.metrics()["runner"]["counters"]["cache.hits"]
    assert hits_after >= hits_before + 13
    first_stats = {
        (result["machine"], result["workload"]): result["stats"]
        for result in reply["results"]
    }
    for result in again["results"]:
        assert result["stats"] == first_stats[(result["machine"], result["workload"])]

    # The retry events are on the bus for post-mortems.
    texts = [event["text"] for event in handle.client.events()["events"]]
    assert "batch:retry" in texts
    assert "health:degraded" in texts
    assert "health:ok" in texts
