"""Unit tests for the job queue: coalescing, batching, retirement."""

from __future__ import annotations

import asyncio

from repro.core.presets import resolve_machine
from repro.obs.metrics import MetricsRegistry
from repro.serve.queue import JobQueue

IDEAL = resolve_machine("ideal", 4)
BASELINE = resolve_machine("baseline", 4)


def run(coro):
    return asyncio.run(coro)


def test_submit_and_drain_batch():
    async def scenario():
        queue = JobQueue()
        a = queue.submit(IDEAL, "ijpeg")
        b = queue.submit(BASELINE, "li")
        assert queue.depth == 2 and queue.live == 2
        batch = await queue.next_batch(max_batch=8, window=0)
        assert batch == [a, b]
        assert queue.depth == 0 and queue.live == 2  # in flight, not retired

    run(scenario())


def test_duplicate_submission_coalesces_onto_one_future():
    async def scenario():
        metrics = MetricsRegistry()
        queue = JobQueue(metrics)
        first = queue.submit(IDEAL, "ijpeg")
        dup = queue.submit(IDEAL, "ijpeg")
        other = queue.submit(IDEAL, "li")
        assert dup is first and dup.future is first.future
        assert first.waiters == 2
        assert other is not first
        assert queue.depth == 2  # the duplicate added no queue entry
        assert metrics.counter("serve.jobs.submitted").value == 2
        assert metrics.counter("serve.jobs.coalesced").value == 1

    run(scenario())


def test_is_live_tracks_queue_and_flight_but_not_done():
    async def scenario():
        queue = JobQueue()
        job = queue.submit(IDEAL, "ijpeg")
        key = (IDEAL.name, "ijpeg")
        assert queue.is_live(key)
        await queue.next_batch(max_batch=1, window=0)
        assert queue.is_live(key)  # dispatched jobs still coalesce
        queue.resolve(job, "stats")
        assert not queue.is_live(key)
        assert await job.future == "stats"

    run(scenario())


def test_resubmit_after_completion_creates_fresh_job():
    async def scenario():
        queue = JobQueue()
        first = queue.submit(IDEAL, "ijpeg")
        await queue.next_batch(max_batch=1, window=0)
        queue.resolve(first, "old")
        again = queue.submit(IDEAL, "ijpeg")
        assert again is not first and not again.future.done()

    run(scenario())


def test_next_batch_respects_max_batch():
    async def scenario():
        queue = JobQueue()
        for seed in range(5):
            queue.submit(IDEAL, f"fuzz:serial:{seed}")
        batch = await queue.next_batch(max_batch=3, window=0)
        assert [job.workload for job in batch] == [
            "fuzz:serial:0", "fuzz:serial:1", "fuzz:serial:2",
        ]
        assert queue.depth == 2
        rest = await queue.next_batch(max_batch=3, window=0)
        assert len(rest) == 2 and queue.depth == 0

    run(scenario())


def test_fail_sets_exception_and_retires():
    async def scenario():
        metrics = MetricsRegistry()
        queue = JobQueue(metrics)
        job = queue.submit(IDEAL, "ijpeg")
        await queue.next_batch(max_batch=1, window=0)
        boom = RuntimeError("boom")
        queue.fail(job, boom)
        assert job.future.exception() is boom
        assert queue.live == 0
        assert metrics.counter("serve.jobs.failed").value == 1
        assert metrics.gauge("serve.jobs.in_flight").value == 0

    run(scenario())


def test_depth_gauge_follows_queue():
    async def scenario():
        metrics = MetricsRegistry()
        queue = JobQueue(metrics)
        for seed in range(3):
            queue.submit(IDEAL, f"fuzz:serial:{seed}")
        assert metrics.gauge("serve.queue.depth").value == 3
        await queue.next_batch(max_batch=2, window=0)
        assert metrics.gauge("serve.queue.depth").value == 1
        assert metrics.gauge("serve.jobs.in_flight").value == 2

    run(scenario())
