"""End-to-end tracing through the live service (the acceptance test).

One multi-job batch submitted over a real socket must come back with a
``trace_id`` whose span tree covers the full pipeline — request → job →
queue/dispatch → pool worker → ``Machine.run`` — retrievable from
``GET /trace/<id>`` as a structurally valid tree and as Chrome
``trace_event`` JSON.  The Prometheus exposition endpoint rides along.
"""

import json

import pytest

from repro.obs.sinks import validate_chrome_trace
from repro.obs.trace import Span, span_depths, validate_span_tree

JOBS = [
    {"machine": "ideal", "workload": "ijpeg", "width": 4},
    {"machine": "baseline", "workload": "li", "width": 4},
    {"machine": "rb-limited", "workload": "compress", "width": 4},
]


@pytest.fixture(scope="module")
def traced_batch(tmp_path_factory):
    """One live service, one multi-job batch, and its exported trace."""
    import asyncio
    import threading

    from repro.serve import ServeClient, ServeConfig, SimulationService

    tmp = tmp_path_factory.mktemp("serve-tracing")
    service = SimulationService(ServeConfig(
        cache_dir=tmp / "cache", cache_shards=8, pool_jobs=2,
        max_batch=8, batch_window=0.02, job_timeout=120.0,
        backoff_base=0.01, backoff_cap=0.05, request_timeout=240.0,
    ))
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(service.start(), loop).result(30)
    client = ServeClient("127.0.0.1", service.port, timeout=300)
    try:
        reply = client.submit(JOBS)
        trace_doc = client.trace(reply["trace_id"])
        chrome_doc = client.trace(reply["trace_id"], format="chrome")
        prometheus = client.metrics_prometheus()
        yield service, reply, trace_doc, chrome_doc, prometheus
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


class TestEndToEndTrace:
    def test_reply_carries_trace_id(self, traced_batch):
        _, reply, trace_doc, _, _ = traced_batch
        assert reply["ok"]
        assert len(reply["results"]) == len(JOBS)
        assert trace_doc["trace_id"] == reply["trace_id"]
        assert trace_doc["version"] == 1

    def test_span_tree_is_well_formed(self, traced_batch):
        _, _, trace_doc, _, _ = traced_batch
        assert validate_span_tree(trace_doc["spans"]) == len(trace_doc["spans"])

    def test_tree_covers_request_to_machine_run(self, traced_batch):
        """The acceptance criterion: one trace_id covers request →
        queue → pool worker → Machine.run for every job in the batch."""
        _, _, trace_doc, _, _ = traced_batch
        spans = [Span.from_dict(entry) for entry in trace_doc["spans"]]
        by_name: dict[str, list[Span]] = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)

        assert len(by_name["serve.request"]) == 1
        root = by_name["serve.request"][0]
        assert root.parent_id is None
        assert len(by_name["serve.job"]) == len(JOBS)
        assert len(by_name["serve.queue"]) == len(JOBS)
        assert len(by_name["serve.dispatch"]) >= len(JOBS)
        assert len(by_name["pool.worker"]) == len(JOBS)
        assert len(by_name["machine.run"]) == len(JOBS)

        by_id = {span.span_id: span for span in spans}
        for job in by_name["serve.job"]:
            assert by_id[job.parent_id].name == "serve.request"
        for queued in by_name["serve.queue"]:
            assert by_id[queued.parent_id].name == "serve.job"
        for dispatch in by_name["serve.dispatch"]:
            assert by_id[dispatch.parent_id].name == "serve.job"
        for worker in by_name["pool.worker"]:
            assert by_id[worker.parent_id].name == "serve.dispatch"
        for run in by_name["machine.run"]:
            assert by_id[run.parent_id].name == "pool.worker"
            assert run.attributes["instructions"] > 0

        depths = span_depths(spans)
        assert max(depths.values()) == 4  # request→job→dispatch→worker→run

    def test_worker_spans_crossed_the_pool_boundary(self, traced_batch):
        _, _, trace_doc, _, _ = traced_batch
        import os

        pids = {
            entry["attributes"]["pid"]
            for entry in trace_doc["spans"]
            if entry["name"] == "pool.worker"
        }
        assert pids and os.getpid() not in pids

    def test_chrome_export_is_valid(self, traced_batch):
        _, _, trace_doc, chrome_doc, _ = traced_batch
        total, retires = validate_chrome_trace(chrome_doc)
        assert retires == 0
        slices = [e for e in chrome_doc["traceEvents"] if e.get("cat") == "trace"]
        assert len(slices) == len(trace_doc["spans"])
        json.dumps(chrome_doc)  # round-trips as standalone JSON

    def test_matches_checked_in_schema(self, traced_batch):
        from pathlib import Path

        from repro.obs.validate import validate_json_schema

        _, _, trace_doc, _, _ = traced_batch
        schema = json.loads(
            (Path(__file__).resolve().parents[2] / "schemas" / "trace.schema.json")
            .read_text()
        )
        validate_json_schema(trace_doc, schema)

    def test_trace_listing_and_unknown_id(self, traced_batch):
        from repro.serve.client import ServeError

        service, reply, _, _, _ = traced_batch
        client = __import__("repro.serve.client", fromlist=["ServeClient"]).ServeClient(
            "127.0.0.1", service.port, timeout=60
        )
        assert reply["trace_id"] in client.traces()["traces"]
        with pytest.raises(ServeError) as excinfo:
            client.trace("0" * 16)
        assert excinfo.value.status == 404

    def test_span_events_reach_the_service_bus(self, traced_batch):
        from repro.obs.events import EventKind

        service, reply, _, _, _ = traced_batch
        span_events = [
            e for e in service.bus.events if e.kind is EventKind.SPAN
        ]
        assert any(
            e.args.get("trace_id") == reply["trace_id"] for e in span_events
        )


class TestPrometheusEndpoint:
    def test_text_exposition(self, traced_batch):
        _, _, _, _, prometheus = traced_batch
        assert isinstance(prometheus, str)
        lines = prometheus.strip().splitlines()
        assert "# TYPE repro_serve_jobs_submitted_total counter" in lines
        assert any(
            line.startswith('repro_serve_jobs_submitted_total{registry="service"} ')
            for line in lines
        )
        # the satellite gauges: queue depth and event-bus health
        assert "# TYPE repro_serve_queue_depth gauge" in lines
        assert "# TYPE repro_events_dropped gauge" in lines
        assert "# TYPE repro_events_buffered gauge" in lines
        # every sample parses as "<name>{labels} <value>"
        for line in lines:
            if line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            float(value)
            assert "{" in name_part and name_part.endswith("}")

    def test_runner_registry_labelled(self, traced_batch):
        _, _, _, _, prometheus = traced_batch
        assert 'registry="runner"' in prometheus
