"""Unit tests for the batch dispatcher's retry and degradation policy.

These use a scripted stand-in for the runner so every failure mode is
deterministic and instant; the real pool is exercised by the end-to-end
test in ``test_service_e2e.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.presets import resolve_machine
from repro.harness.runner import MatrixCancelled, MatrixWorkerError
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.serve.batch import HEALTH_DEGRADED, HEALTH_OK, BatchDispatcher, ServiceEvents
from repro.serve.queue import JobQueue

IDEAL = resolve_machine("ideal", 4)


class ScriptedRunner:
    """run_jobs() plays back a script of results / exceptions, in order."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = []  # (keys, mode) per invocation

    def run_jobs(self, sim_jobs, jobs=None, timeout=None, force_pool=False):
        self.calls.append((
            [job.key for job in sim_jobs],
            "pool" if jobs is not None else "serial",
        ))
        step = self.script.pop(0)
        if isinstance(step, BaseException):
            raise step
        if step == "ok":
            return {job.key: f"stats:{job.workload}" for job in sim_jobs}
        raise AssertionError(f"unexpected script step {step!r}")


def make_dispatcher(script, *, metrics=None, **overrides):
    metrics = metrics if metrics is not None else MetricsRegistry()
    queue = JobQueue(metrics)
    runner = ScriptedRunner(script)
    settings = dict(
        pool_jobs=2, max_batch=8, batch_window=0,
        job_timeout=5.0, max_retries=2, backoff_base=0.001, backoff_cap=0.002,
    )
    settings.update(overrides)
    dispatcher = BatchDispatcher(
        runner, queue, metrics, ServiceEvents(EventBus(capacity=64)), **settings
    )
    return dispatcher, queue, runner, metrics


async def submit_and_dispatch(dispatcher, queue, workloads):
    jobs = [queue.submit(IDEAL, workload) for workload in workloads]
    batch = await queue.next_batch(dispatcher.max_batch, 0)
    await dispatcher.dispatch(batch)
    return jobs


def test_clean_batch_resolves_every_future():
    async def scenario():
        dispatcher, queue, runner, _ = make_dispatcher(["ok"])
        jobs = await submit_and_dispatch(dispatcher, queue, ["a", "b"])
        assert [await job.future for job in jobs] == ["stats:a", "stats:b"]
        assert runner.calls == [([(IDEAL.name, "a"), (IDEAL.name, "b")], "pool")]
        assert dispatcher.status == HEALTH_OK
        assert jobs[0].attempts == 1

    asyncio.run(scenario())


def test_pool_failure_degrades_and_retries_serially():
    async def scenario():
        dispatcher, queue, runner, metrics = make_dispatcher(
            [MatrixWorkerError("Ideal-4w", "a", RuntimeError("worker died")), "ok"]
        )
        jobs = await submit_and_dispatch(dispatcher, queue, ["a"])
        assert await jobs[0].future == "stats:a"
        assert [mode for _, mode in runner.calls] == ["pool", "serial"]
        assert dispatcher.status == HEALTH_DEGRADED
        assert dispatcher.health_history == [HEALTH_OK, HEALTH_DEGRADED]
        assert jobs[0].attempts == 2
        assert metrics.counter("serve.retries").value == 1
        assert metrics.counter("serve.batches.retried").value == 1
        assert metrics.counter("serve.health.degradations").value == 1

    asyncio.run(scenario())


def test_clean_serial_batch_earns_pool_probe_then_recovery():
    async def scenario():
        dispatcher, queue, runner, metrics = make_dispatcher(
            [MatrixWorkerError("Ideal-4w", "a", RuntimeError("worker died")), "ok", "ok"]
        )
        await submit_and_dispatch(dispatcher, queue, ["a"])  # degrade + serial retry
        assert dispatcher._probe_pool is True
        await submit_and_dispatch(dispatcher, queue, ["b"])  # probe succeeds
        assert [mode for _, mode in runner.calls] == ["pool", "serial", "pool"]
        assert dispatcher.status == HEALTH_OK
        assert dispatcher.health_history == [HEALTH_OK, HEALTH_DEGRADED, HEALTH_OK]
        assert metrics.counter("serve.health.recoveries").value == 1

    asyncio.run(scenario())


def test_failed_probe_degrades_again_without_losing_jobs():
    async def scenario():
        dispatcher, queue, runner, _ = make_dispatcher(
            [
                MatrixWorkerError("Ideal-4w", "a", RuntimeError("first death")), "ok",   # batch 1: degrade, serial ok
                MatrixWorkerError("Ideal-4w", "b", RuntimeError("probe death")), "ok",   # batch 2: probe dies, serial ok
            ]
        )
        await submit_and_dispatch(dispatcher, queue, ["a"])
        jobs = await submit_and_dispatch(dispatcher, queue, ["b"])
        assert await jobs[0].future == "stats:b"
        assert [mode for _, mode in runner.calls] == [
            "pool", "serial", "pool", "serial",
        ]
        assert dispatcher.status == HEALTH_DEGRADED

    asyncio.run(scenario())


def test_retry_exhaustion_fails_futures_not_the_service():
    async def scenario():
        dispatcher, queue, runner, metrics = make_dispatcher(
            [MatrixWorkerError("Ideal-4w", "a", RuntimeError(f"death {n}")) for n in range(3)], max_retries=2
        )
        jobs = await submit_and_dispatch(dispatcher, queue, ["a"])
        with pytest.raises(MatrixWorkerError, match="death 2"):
            await jobs[0].future
        assert len(runner.calls) == 3  # 1 initial + 2 retries
        assert metrics.counter("serve.batches.failed").value == 1
        assert metrics.counter("serve.jobs.failed").value == 1
        assert queue.live == 0  # the key is free for resubmission

    asyncio.run(scenario())


def test_cancelled_batch_fails_futures_without_retry():
    async def scenario():
        dispatcher, queue, runner, metrics = make_dispatcher(
            [MatrixCancelled("shutdown")]
        )
        jobs = await submit_and_dispatch(dispatcher, queue, ["a"])
        with pytest.raises(MatrixCancelled):
            await jobs[0].future
        assert len(runner.calls) == 1
        assert metrics.counter("serve.retries").value == 0

    asyncio.run(scenario())


def test_pool_jobs_one_always_runs_serially():
    async def scenario():
        dispatcher, queue, runner, _ = make_dispatcher(["ok"], pool_jobs=1)
        await submit_and_dispatch(dispatcher, queue, ["a"])
        assert runner.calls[0][1] == "serial"

    asyncio.run(scenario())


def test_backoff_is_exponential_and_capped():
    dispatcher, _, _, _ = make_dispatcher([], backoff_base=0.1, backoff_cap=0.5)
    assert dispatcher.backoff(1) == pytest.approx(0.1)
    assert dispatcher.backoff(2) == pytest.approx(0.2)
    assert dispatcher.backoff(3) == pytest.approx(0.4)
    assert dispatcher.backoff(4) == pytest.approx(0.5)  # capped
    assert dispatcher.backoff(10) == pytest.approx(0.5)


def test_service_events_reach_the_bus():
    async def scenario():
        dispatcher, queue, _, _ = make_dispatcher(
            [MatrixWorkerError("Ideal-4w", "a", RuntimeError("death")), "ok"]
        )
        await submit_and_dispatch(dispatcher, queue, ["a"])
        texts = [event["text"] for event in dispatcher.events.snapshot()]
        assert "batch:dispatch" in texts
        assert "batch:retry" in texts
        assert f"health:{HEALTH_DEGRADED}" in texts
        assert "batch:done" in texts

    asyncio.run(scenario())
