"""Smoke tests: every example script runs to completion.

Examples are the adoption surface; they must never rot.  Run as
subprocesses so import-time and __main__ behaviour are both covered.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    assert "speedup over the Baseline" in out
    assert "Ideal-8w" in out


@pytest.mark.slow
def test_redundant_arithmetic():
    out = run_example("redundant_arithmetic.py")
    assert "carry-free addition chains" in out
    assert "CLA/RB" in out


@pytest.mark.slow
def test_bypass_study():
    out = run_example("bypass_study.py")
    assert "RB-limited" in out
    assert "100111" in out  # the 2-cycle-hole shift register


@pytest.mark.slow
def test_machine_comparison():
    out = run_example("machine_comparison.py", "ijpeg")
    assert "8-wide machines" in out
    assert "RB->TC" in out


@pytest.mark.slow
def test_steering_study():
    out = run_example("steering_study.py", "ijpeg")
    assert "dependence IPC" in out
