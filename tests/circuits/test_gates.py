"""Tests for the netlist framework itself."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.gates import (
    Circuit,
    GateKind,
    assign_bus,
    bus_value,
)

bits = st.integers(min_value=0, max_value=1)


class TestConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.input("a")
        with pytest.raises(ValueError):
            c.input("a")

    def test_duplicate_output_rejected(self):
        c = Circuit()
        a = c.input("a")
        c.output("y", a)
        with pytest.raises(ValueError):
            c.output("y", a)

    def test_arity_checked(self):
        c = Circuit()
        a = c.input("a")
        with pytest.raises(ValueError):
            c.gate(GateKind.NOT, a, a)
        with pytest.raises(ValueError):
            c.gate(GateKind.AND, a)

    def test_cross_circuit_operand_rejected(self):
        c1, c2 = Circuit(), Circuit()
        a = c1.input("a")
        b = c2.input("b")
        with pytest.raises(ValueError):
            c2.gate(GateKind.AND, a, b)
        with pytest.raises(ValueError):
            c1.output("y", b)

    def test_const_shared(self):
        c = Circuit()
        assert c.const(1) is c.const(1)
        assert c.const(0) is not c.const(1)

    def test_gate_count_excludes_inputs(self):
        c = Circuit()
        a = c.input("a")
        b = c.input("b")
        c.output("y", c.and_(a, b))
        assert c.gate_count() == 1


class TestEvaluation:
    @given(a=bits, b=bits)
    def test_two_input_gates(self, a, b):
        c = Circuit()
        na, nb = c.input("a"), c.input("b")
        c.output("and", c.and_(na, nb))
        c.output("or", c.or_(na, nb))
        c.output("xor", c.xor_(na, nb))
        c.output("nand", c.nand_(na, nb))
        c.output("nor", c.nor_(na, nb))
        out = c.evaluate({"a": a, "b": b})
        assert out["and"] == (a & b)
        assert out["or"] == (a | b)
        assert out["xor"] == (a ^ b)
        assert out["nand"] == 1 - (a & b)
        assert out["nor"] == 1 - (a | b)

    @given(s=bits, x=bits, y=bits)
    def test_mux(self, s, x, y):
        c = Circuit()
        ns, nx, ny = c.input("s"), c.input("x"), c.input("y")
        c.output("m", c.mux(ns, nx, ny))
        assert c.evaluate({"s": s, "x": x, "y": y})["m"] == (y if s else x)

    def test_missing_input_rejected(self):
        c = Circuit()
        c.output("y", c.input("a"))
        with pytest.raises(ValueError):
            c.evaluate({})

    @given(st.integers(min_value=0, max_value=255))
    def test_wide_and_tree(self, value):
        c = Circuit()
        ins = c.input_bus("v", 8)
        c.output("all", c.gate_tree(GateKind.AND, ins))
        asg = {}
        assign_bus(asg, "v", value, 8)
        assert c.evaluate(asg)["all"] == (1 if value == 255 else 0)

    @given(st.integers(min_value=0, max_value=255))
    def test_wide_nor_tree(self, value):
        c = Circuit()
        ins = c.input_bus("v", 8)
        c.output("none", c.gate_tree(GateKind.NOR, ins))
        asg = {}
        assign_bus(asg, "v", value, 8)
        assert c.evaluate(asg)["none"] == (1 if value == 0 else 0)

    def test_tree_validation(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.gate_tree(GateKind.AND, [])
        with pytest.raises(ValueError):
            c.gate_tree(GateKind.MUX, [c.input("a")])


class TestTiming:
    def test_critical_path_simple(self):
        c = Circuit()
        a = c.input("a")
        y = c.not_(c.not_(a))
        c.output("y", y)
        delay, path = c.critical_path()
        assert delay == 2.0
        assert path[0].kind is GateKind.INPUT
        assert len(path) == 3

    def test_tree_depth_is_logarithmic(self):
        c = Circuit()
        ins = c.input_bus("v", 16)
        c.output("y", c.gate_tree(GateKind.AND, ins))
        assert c.delay() == pytest.approx(1.5 * 4)  # 4 levels of AND

    def test_no_outputs_rejected(self):
        with pytest.raises(ValueError):
            Circuit().critical_path()

    def test_bus_helpers_round_trip(self):
        asg = {}
        assign_bus(asg, "x", 0b1010, 4)
        assert asg == {"x[0]": 0, "x[1]": 1, "x[2]": 0, "x[3]": 1}
        assert bus_value({"y[0]": 1, "y[1]": 0, "y[2]": 1}, "y", 3) == 0b101
