"""Tests for the sum-addressed-memory decoder (§3.6)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import assign_bus
from repro.circuits.sam import build_sam_decoder, sam_match
from repro.rb.convert import from_twos_complement


class TestSamMatch:
    @given(st.integers(min_value=1, max_value=12), st.data())
    @settings(max_examples=300)
    def test_matches_addition(self, width, data):
        top = (1 << width) - 1
        a = data.draw(st.integers(min_value=0, max_value=top))
        b = data.draw(st.integers(min_value=0, max_value=top))
        k = data.draw(st.integers(min_value=0, max_value=top))
        assert sam_match(a, b, k, width) == (((a + b) % (1 << width)) == k)

    def test_width_validated(self):
        with pytest.raises(ValueError):
            sam_match(0, 0, 0, 0)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_exactly_one_line_matches(self, a, b):
        matches = [k for k in range(256) if sam_match(a, b, k, 8)]
        assert matches == [(a + b) % 256]

    def test_redundant_address_indexing(self):
        """An RB address indexes via X+ + (2^w - X-) mod 2^w == X+ - X-."""
        width = 8
        for value in (0, 1, 45, 127, -3, -128):
            rb = from_twos_complement(value, width)
            index = value % (1 << width)
            complement = (-rb.minus) % (1 << width)
            assert sam_match(rb.plus, complement, index, width)


class TestSamDecoder:
    def test_exhaustive_4bit(self):
        decoder = build_sam_decoder(4)
        for a, b in itertools.product(range(16), range(16)):
            asg = {}
            assign_bus(asg, "a", a, 4)
            assign_bus(asg, "b", b, 4)
            out = decoder.evaluate(asg)
            hot = [k for k in range(16) if out[f"line[{k}]"]]
            assert hot == [(a + b) % 16]

    def test_partial_lines(self):
        decoder = build_sam_decoder(4, lines=4)
        asg = {}
        assign_bus(asg, "a", 1, 4)
        assign_bus(asg, "b", 2, 4)
        out = decoder.evaluate(asg)
        assert out["line[3]"] == 1
        assert sum(out.values()) == 1

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            build_sam_decoder(0)
        with pytest.raises(ValueError):
            build_sam_decoder(3, lines=9)

    def test_constant_depth_before_and_tree(self):
        """Widening the index only grows the final AND tree (log depth),
        never a carry chain (linear depth)."""
        d4 = build_sam_decoder(4, lines=2).delay()
        d8 = build_sam_decoder(8, lines=2).delay()
        d16 = build_sam_decoder(16, lines=2).delay()
        assert d8 - d4 <= 2.0
        assert d16 - d8 <= 2.0
