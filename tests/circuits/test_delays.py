"""Delay-shape tests: the §3.4 claims the benchmark regenerates."""

import pytest

from repro.circuits.analysis import ADDER_FAMILIES, adder_delay_table, delay_ratios
from repro.circuits.converter import build_rb_to_tc_converter


class TestDelayShapes:
    @pytest.fixture(scope="class")
    def table(self):
        return adder_delay_table(widths=(8, 16, 32, 64))

    def test_rb_constant_in_width(self, table):
        delays = set(table["rb"].values())
        assert len(delays) == 1

    def test_ripple_linear(self, table):
        d = table["ripple"]
        # doubling width roughly doubles delay
        assert d[64] / d[32] == pytest.approx(2.0, rel=0.05)

    def test_cla_logarithmic(self, table):
        d = table["cla"]
        # each doubling adds a constant increment
        inc1 = d[16] - d[8]
        inc2 = d[32] - d[16]
        inc3 = d[64] - d[32]
        assert inc1 == inc2 == inc3

    def test_family_ordering_at_64(self, table):
        assert (table["rb"][64] < table["cla"][64]
                < table["carry_select"][64] < table["ripple"][64])

    def test_rb_beats_cla_substantially(self, table):
        """Paper: ~3x (SPICE).  The gate-normalized model must show at
        least 2x and the converter must cost about a CLA."""
        ratio = table["cla"][64] / table["rb"][64]
        assert ratio >= 2.0
        converter = table["rb_to_tc_converter"][64]
        assert converter == pytest.approx(table["cla"][64], rel=0.15)

    def test_converter_is_cla_class(self):
        assert build_rb_to_tc_converter(32).delay() >= 0

    def test_delay_ratios_helper(self):
        ratios = delay_ratios(32)
        assert set(ratios) == set(ADDER_FAMILIES) - {"rb"}
        assert all(r > 1 for r in ratios.values())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            adder_delay_table(widths=(8,), families=["nonsense"])
