"""Delay-shape tests: the §3.4 claims the benchmark regenerates."""

import pytest

from repro.circuits.analysis import ADDER_FAMILIES, adder_delay_table, delay_ratios
from repro.circuits.converter import build_rb_to_tc_converter


class TestDelayShapes:
    @pytest.fixture(scope="class")
    def table(self):
        return adder_delay_table(widths=(8, 16, 32, 64))

    def test_rb_constant_in_width(self, table):
        delays = set(table["rb"].values())
        assert len(delays) == 1

    def test_ripple_linear(self, table):
        d = table["ripple"]
        # doubling width roughly doubles delay
        assert d[64] / d[32] == pytest.approx(2.0, rel=0.05)

    def test_cla_logarithmic(self, table):
        d = table["cla"]
        # each doubling adds a constant increment
        inc1 = d[16] - d[8]
        inc2 = d[32] - d[16]
        inc3 = d[64] - d[32]
        assert inc1 == inc2 == inc3

    def test_dual_bit_halves_the_ripple_slope(self, table):
        d = table["dual_bit"]
        # one 2-bit cell per doubling step: linear, but at half the stages
        assert (d[64] - d[32]) == pytest.approx((d[32] - d[16]) * 2, rel=0.05)
        assert d[64] < table["ripple"][64] * 0.6

    def test_hybrid_between_select_and_cla(self, table):
        assert table["cla"][64] < table["hybrid_select_cla"][64] \
            < table["carry_select"][64]

    def test_family_ordering_at_64(self, table):
        assert (table["rb"][64] < table["cla"][64]
                < table["hybrid_select_cla"][64]
                < table["carry_select"][64]
                < table["dual_bit"][64]
                < table["early_output"][64]
                < table["ripple"][64])

    def test_rb_beats_cla_substantially(self, table):
        """Paper: ~3x (SPICE).  The gate-normalized model must show at
        least 2x and the converter must cost about a CLA."""
        ratio = table["cla"][64] / table["rb"][64]
        assert ratio >= 2.0
        converter = table["rb_to_tc_converter"][64]
        assert converter == pytest.approx(table["cla"][64], rel=0.15)

    def test_converter_is_cla_class(self):
        assert build_rb_to_tc_converter(32).delay() >= 0

    def test_delay_ratios_helper(self):
        ratios = delay_ratios(32)
        assert set(ratios) == set(ADDER_FAMILIES) - {"rb"}
        assert all(r > 1 for r in ratios.values())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            adder_delay_table(widths=(8,), families=["nonsense"])


#: Inverter-normalized critical-path delays for every library family.
#: These are *pinned*, not shaped: any gate-level edit that moves a
#: critical path shows up here as an exact-number diff to re-derive.
PINNED_DELAYS = {
    "ripple":            {8: 26.0, 16: 50.0, 32: 98.0, 64: 194.0},
    "dual_bit":          {8: 17.5, 16: 29.5, 32: 53.5, 64: 101.5},
    "early_output":      {8: 18.0, 16: 34.0, 32: 66.0, 64: 130.0},
    "carry_select":      {8: 15.0, 16: 20.0, 32: 30.0, 64: 40.0},
    "hybrid_select_cla": {8: 13.0, 16: 17.0, 32: 25.0, 64: 28.0},
    "cla":               {8: 14.0, 16: 17.0, 32: 20.0, 64: 23.0},
    "rb":                {8: 9.5,  16: 9.5,  32: 9.5,  64: 9.5},
    "rb_to_tc_converter": {8: 15.0, 16: 18.0, 32: 21.0, 64: 24.0},
}


class TestPinnedDelays:
    """Exact critical-path numbers for the whole library (no gaps)."""

    def test_every_family_is_pinned(self):
        assert set(PINNED_DELAYS) == set(ADDER_FAMILIES)

    @pytest.mark.parametrize("family", sorted(PINNED_DELAYS))
    def test_pinned_values(self, family):
        table = adder_delay_table(widths=(8, 16, 32, 64), families=[family])
        assert table[family] == PINNED_DELAYS[family]
