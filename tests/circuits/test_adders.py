"""Functional equivalence of every adder netlist against integer addition."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.carry_select import build_carry_select_adder
from repro.circuits.cla import build_cla_adder, build_cla_subtractor
from repro.circuits.gates import assign_bus, bus_value
from repro.circuits.ripple import build_ripple_adder

ADDERS = {
    "ripple": build_ripple_adder,
    "cla": build_cla_adder,
    "carry_select": build_carry_select_adder,
}


def _add(circuit, a, b, cin, width):
    asg = {}
    assign_bus(asg, "a", a, width)
    assign_bus(asg, "b", b, width)
    asg["cin"] = cin
    out = circuit.evaluate(asg)
    return bus_value(out, "sum", width) | (out["cout"] << width)


class TestExhaustiveSmall:
    """Every adder is exhaustively correct at 3 bits."""

    @pytest.mark.parametrize("name", list(ADDERS))
    def test_exhaustive_3bit(self, name):
        circuit = ADDERS[name](3)
        for a, b, cin in itertools.product(range(8), range(8), range(2)):
            assert _add(circuit, a, b, cin, 3) == a + b + cin


class TestRandomWide:
    @pytest.mark.parametrize("name", list(ADDERS))
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_16bit(self, name, data):
        circuit = _CACHE.setdefault(name, ADDERS[name](16))
        a = data.draw(st.integers(min_value=0, max_value=65535))
        b = data.draw(st.integers(min_value=0, max_value=65535))
        cin = data.draw(st.integers(min_value=0, max_value=1))
        assert _add(circuit, a, b, cin, 16) == a + b + cin


_CACHE: dict = {}


class TestSubtractor:
    @given(a=st.integers(min_value=0, max_value=255),
           b=st.integers(min_value=0, max_value=255))
    @settings(max_examples=120, deadline=None)
    def test_wraps_mod_2n(self, a, b):
        circuit = _CACHE.setdefault("sub8", build_cla_subtractor(8))
        asg = {}
        assign_bus(asg, "a", a, 8)
        assign_bus(asg, "b", b, 8)
        out = circuit.evaluate(asg)
        assert bus_value(out, "sum", 8) == (a - b) % 256


class TestValidation:
    @pytest.mark.parametrize("builder", list(ADDERS.values()) + [build_cla_subtractor])
    def test_nonpositive_width_rejected(self, builder):
        with pytest.raises(ValueError):
            builder(0)

    def test_carry_select_block_validation(self):
        with pytest.raises(ValueError):
            build_carry_select_adder(8, block=0)

    def test_carry_select_custom_block(self):
        circuit = build_carry_select_adder(8, block=2)
        for a, b in [(255, 1), (170, 85), (3, 200)]:
            assert _add(circuit, a, b, 0, 8) == a + b
