"""The gate-level RB adder must match the functional carry-free algorithm."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.rb_adder import build_rb_adder, build_rb_digit_slice
from repro.rb.adder import rb_add_digits
from repro.rb.number import RBNumber

WIDTH = 5
digit_lists = st.lists(st.sampled_from([-1, 0, 1]), min_size=WIDTH, max_size=WIDTH)

_ADDER = build_rb_adder(WIDTH)


def _encode(prefix, digits, asg):
    for i, digit in enumerate(digits):
        asg[f"{prefix}p[{i}]"] = 1 if digit == 1 else 0
        asg[f"{prefix}n[{i}]"] = 1 if digit == -1 else 0


def _netlist_add(xd, yd):
    asg = {}
    _encode("x", xd, asg)
    _encode("y", yd, asg)
    out = _ADDER.evaluate(asg)
    digits = []
    for i in range(WIDTH):
        plus, minus = out[f"zp[{i}]"], out[f"zn[{i}]"]
        assert not (plus and minus), "invalid (1,1) digit encoding produced"
        digits.append(1 if plus else (-1 if minus else 0))
    assert not (out["cout_plus"] and out["cout_minus"])
    carry = (1 if out["cout_plus"] else 0) - (1 if out["cout_minus"] else 0)
    return digits, carry


class TestNetlistEquivalence:
    @given(xd=digit_lists, yd=digit_lists)
    @settings(max_examples=400, deadline=None)
    def test_matches_functional_adder(self, xd, yd):
        x = RBNumber.from_digits(xd)
        y = RBNumber.from_digits(yd)
        expected_digits, expected_carry = rb_add_digits(x, y)
        digits, carry = _netlist_add(xd, yd)
        assert digits == expected_digits
        assert carry == expected_carry

    @given(xd=digit_lists, yd=digit_lists)
    @settings(max_examples=200, deadline=None)
    def test_sum_value_exact(self, xd, yd):
        digits, carry = _netlist_add(xd, yd)
        value = sum(d << i for i, d in enumerate(digits)) + (carry << WIDTH)
        x = sum(d << i for i, d in enumerate(xd))
        y = sum(d << i for i, d in enumerate(yd))
        assert value == x + y


class TestDigitSlice:
    def test_exhaustive_slice(self):
        """Brute-force the standalone slice over all digit/control inputs."""
        slice_circuit = build_rb_digit_slice()
        valid_digits = [(0, 0), (1, 0), (0, 1)]  # (p, n) encodings
        for (xp, xn), (yp, yn), h_prev, (cp, cn) in itertools.product(
            valid_digits, valid_digits, (0, 1), valid_digits
        ):
            out = slice_circuit.evaluate({
                "xp": xp, "xn": xn, "yp": yp, "yn": yn,
                "h_prev": h_prev, "cp_prev": cp, "cn_prev": cn,
            })
            # h: both digits non-negative
            assert out["h"] == (1 if (xn == 0 and yn == 0) else 0)
            # carry and sum digits stay in the encoding
            assert not (out["carry_plus"] and out["carry_minus"])
            # the (s, incoming carry) combination is constrained by the
            # algorithm, so only check z validity when the incoming carry
            # is one the rule could actually produce for these inputs.
            p = (xp - xn) + (yp - yn)
            carry = out["carry_plus"] - out["carry_minus"]
            expected_carry = {
                2: 1,
                1: 1 if h_prev else 0,
                0: 0,
                -1: 0 if h_prev else -1,
                -2: -1,
            }[p]
            assert carry == expected_carry

    def test_slice_depth_constant(self):
        """Doubling the adder width must not change the critical path."""
        assert build_rb_adder(8).delay() == build_rb_adder(64).delay()
