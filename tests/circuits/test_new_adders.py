"""Property tests for the newer adder netlists at the full 64-bit width.

Mirrors ``tests/rb/test_properties.py``: seeded ``random.Random`` case
generation biased toward carry-hostile operand shapes (long ones-runs,
boundary values, small magnitudes), plus Hypothesis sweeps and pinned
overflow edges.  Wide random batches go through the word-packed
evaluator — 64 test vectors per circuit pass — so thousands of 64-bit
cases stay cheap.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.dual_bit import build_dual_bit_adder
from repro.circuits.early_output import build_early_output_adder
from repro.circuits.gates import assign_bus, bus_value
from repro.circuits.hybrid import build_hybrid_select_cla_adder
from repro.circuits.verify import evaluate_packed

WIDTH = 64
MASK = (1 << WIDTH) - 1
SEEDS = [0, 1, 2, 3]
BATCHES_PER_SEED = 8  # 8 packed batches x 64 lanes = 512 cases per seed

NEW_ADDERS = {
    "dual_bit": build_dual_bit_adder,
    "early_output": build_early_output_adder,
    "hybrid_select_cla": build_hybrid_select_cla_adder,
}

_CACHE: dict = {}


def _circuit(name):
    return _CACHE.setdefault(name, NEW_ADDERS[name](WIDTH))


def _add(circuit, a, b, cin, width):
    asg = {}
    assign_bus(asg, "a", a, width)
    assign_bus(asg, "b", b, width)
    asg["cin"] = cin
    out = circuit.evaluate(asg)
    return bus_value(out, "sum", width) | (out["cout"] << width)


def random_operand(rng: random.Random) -> int:
    """A 64-bit pattern biased toward carry-hostile shapes."""
    choice = rng.randrange(4)
    if choice == 0:
        return rng.getrandbits(WIDTH)
    if choice == 1:  # long runs of ones: maximal carry chains
        start = rng.randrange(WIDTH)
        length = rng.randrange(1, WIDTH - start + 1)
        return (((1 << length) - 1) << start) & MASK
    if choice == 2:  # boundary values
        return rng.choice([0, 1, MASK, 1 << (WIDTH - 1), (1 << (WIDTH - 1)) - 1])
    return rng.getrandbits(8)  # small magnitudes


def _packed_batch(cases):
    """Bit-transpose 64 (a, b, cin) cases into one packed assignment."""
    asg = {f"{bus}[{i}]": 0 for bus in ("a", "b") for i in range(WIDTH)}
    asg["cin"] = 0
    for t, (a, b, cin) in enumerate(cases):
        for i in range(WIDTH):
            asg[f"a[{i}]"] |= ((a >> i) & 1) << t
            asg[f"b[{i}]"] |= ((b >> i) & 1) << t
        asg["cin"] |= cin << t
    return asg


class TestSeededRandomWide:
    @pytest.mark.parametrize("name", sorted(NEW_ADDERS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_512_carry_hostile_cases(self, name, seed):
        circuit = _circuit(name)
        rng = random.Random(seed)
        lane_mask = (1 << 64) - 1
        for _ in range(BATCHES_PER_SEED):
            cases = [
                (random_operand(rng), random_operand(rng), rng.randrange(2))
                for _ in range(64)
            ]
            out = evaluate_packed(circuit, _packed_batch(cases), lane_mask)
            for t, (a, b, cin) in enumerate(cases):
                got = sum(
                    ((out[f"sum[{i}]"] >> t) & 1) << i for i in range(WIDTH)
                ) | (((out["cout"] >> t) & 1) << WIDTH)
                assert got == a + b + cin, (name, a, b, cin)


class TestHypothesisWide:
    @pytest.mark.parametrize("name", sorted(NEW_ADDERS))
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_64bit(self, name, data):
        circuit = _circuit(name)
        operand = st.one_of(
            st.integers(min_value=0, max_value=MASK),
            st.sampled_from([0, 1, MASK, 1 << (WIDTH - 1), (1 << (WIDTH - 1)) - 1]),
            st.builds(
                lambda start, length: (((1 << length) - 1) << start) & MASK,
                st.integers(min_value=0, max_value=WIDTH - 1),
                st.integers(min_value=1, max_value=WIDTH),
            ),
        )
        a = data.draw(operand)
        b = data.draw(operand)
        cin = data.draw(st.integers(min_value=0, max_value=1))
        assert _add(circuit, a, b, cin, WIDTH) == a + b + cin


class TestOverflowEdges:
    """The exact shapes that break carry logic, pinned deterministically."""

    EDGES = [
        (MASK, MASK, 1),                    # every bit generates, cin set
        (MASK, 0, 1),                       # full-width propagate chain
        (MASK, 1, 0),                       # carry injected at bit 0
        ((1 << (WIDTH - 1)), (1 << (WIDTH - 1)), 0),  # top-bit generate only
        ((1 << (WIDTH - 1)) - 1, 1, 0),     # propagate into the sign bit
        (0xAAAAAAAAAAAAAAAA, 0x5555555555555555, 1),  # alternating, full chain
        (0, 0, 0),
    ]

    @pytest.mark.parametrize("name", sorted(NEW_ADDERS))
    @pytest.mark.parametrize("a,b,cin", EDGES)
    def test_edge(self, name, a, b, cin):
        assert _add(_circuit(name), a, b, cin, WIDTH) == a + b + cin


class TestAwkwardWidths:
    def test_dual_bit_odd_width_exhaustive(self):
        """Width 5 exercises the odd-top-bit single full adder."""
        circuit = build_dual_bit_adder(5)
        for a, b, cin in itertools.product(range(32), range(32), range(2)):
            assert _add(circuit, a, b, cin, 5) == a + b + cin

    def test_hybrid_tiny_blocks_exhaustive(self):
        """Width 6 with 2-bit blocks: three blocks, two select muxes."""
        circuit = build_hybrid_select_cla_adder(6, block=2)
        for a, b, cin in itertools.product(range(64), range(64), range(2)):
            assert _add(circuit, a, b, cin, 6) == a + b + cin

    def test_hybrid_block_wider_than_word(self):
        """A block covering the whole word degenerates to one CLA pass."""
        circuit = build_hybrid_select_cla_adder(4, block=16)
        for a, b, cin in itertools.product(range(16), range(16), range(2)):
            assert _add(circuit, a, b, cin, 4) == a + b + cin


class TestValidation:
    @pytest.mark.parametrize("builder", sorted(NEW_ADDERS))
    def test_nonpositive_width_rejected(self, builder):
        with pytest.raises(ValueError):
            NEW_ADDERS[builder](0)
        with pytest.raises(ValueError):
            NEW_ADDERS[builder](-8)

    def test_hybrid_block_validation(self):
        with pytest.raises(ValueError):
            build_hybrid_select_cla_adder(8, block=0)
