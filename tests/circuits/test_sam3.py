"""Tests for the modified (3-input) SAM used with redundant addresses."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.circuits.sam import sam_match3, sam_match_redundant
from repro.rb.convert import from_twos_complement
from repro.rb.number import RBNumber


class TestSamMatch3:
    @given(st.integers(min_value=1, max_value=12), st.data())
    @settings(max_examples=300)
    def test_matches_three_way_addition(self, width, data):
        top = (1 << width) - 1
        a = data.draw(st.integers(min_value=0, max_value=top))
        b = data.draw(st.integers(min_value=0, max_value=top))
        c = data.draw(st.integers(min_value=0, max_value=top))
        k = data.draw(st.integers(min_value=0, max_value=top))
        assert sam_match3(a, b, c, k, width) == (((a + b + c) % (1 << width)) == k)

    def test_width_validated(self):
        with pytest.raises(ValueError):
            sam_match3(0, 0, 0, 0, 0)


class TestRedundantAddressing:
    @given(
        value=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
        displacement=st.integers(min_value=-512, max_value=512),
    )
    @settings(max_examples=300)
    def test_encoded_base_plus_displacement(self, value, displacement):
        width = 16
        base = from_twos_complement(value, width)
        index = (value + displacement) % (1 << width)
        assert sam_match_redundant(base.plus, base.minus, displacement, index, width)
        # and only that line matches
        assert not sam_match_redundant(
            base.plus, base.minus, displacement, (index + 1) % (1 << width), width
        )

    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=10, max_size=10),
           st.integers(min_value=-100, max_value=100))
    @settings(max_examples=300)
    def test_any_redundant_encoding(self, digits, displacement):
        """Addresses stay redundant after chains of adds; any encoding of
        the base must index the same line."""
        width = 10
        base = RBNumber.from_digits(digits)
        index = (base.value() + displacement) % (1 << width)
        assert sam_match_redundant(base.plus, base.minus, displacement, index, width)
