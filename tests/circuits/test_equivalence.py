"""Brute force and the formal checker agree on every library netlist.

Two independent oracles cross-validate each other here:

* **Brute force** — exhaustive concrete evaluation (plain at 4 bits,
  word-packed at 8 bits via :func:`evaluate_packed`) against integer
  arithmetic and against the reference ripple adder.
* **The BDD checker** — :func:`check_circuit` proves the same equalities
  symbolically over *all* assignments.

Both must accept every registered netlist and both must reject the
deliberately broken mutant; a disagreement between them would expose a
bug in whichever oracle is wrong.
"""

import itertools

import pytest

from repro.circuits.gates import assign_bus, bus_value
from repro.circuits.rb_adder import build_rb_adder
from repro.circuits.ripple import build_ripple_adder
from repro.circuits.sam import build_sam_decoder
from repro.circuits.verify import (
    BDD,
    NETLIST_SPECS,
    NetlistSpec,
    assert_verified,
    build_mutant_ripple_adder,
    check_circuit,
    check_netlist,
    evaluate_packed,
    verify_library,
)

TC_ADDERS = [name for name, spec in NETLIST_SPECS.items() if spec.kind == "tc_adder"]

_CACHE: dict = {}


def _add(circuit, a, b, cin, width):
    asg = {}
    assign_bus(asg, "a", a, width)
    assign_bus(asg, "b", b, width)
    asg["cin"] = cin
    out = circuit.evaluate(asg)
    return bus_value(out, "sum", width) | (out["cout"] << width)


# ---------------------------------------------------------------------------
# Brute force: every two's-complement adder equals ripple (and the integers)
# ---------------------------------------------------------------------------

class TestBruteForce:
    @pytest.mark.parametrize("name", TC_ADDERS)
    def test_exhaustive_4bit_vs_integers(self, name):
        circuit = NETLIST_SPECS[name].build(4)
        for a, b, cin in itertools.product(range(16), range(16), range(2)):
            assert _add(circuit, a, b, cin, 4) == a + b + cin

    @staticmethod
    def _packed_8bit_inputs():
        """All 2**17 (a, b, cin) combinations as 2048 packed assignments.

        Lane t of each 64-bit packed word carries the low six bits of
        ``b``; the outer product enumerates ``a``, the top two bits of
        ``b``, and ``cin``.
        """
        mask = (1 << 64) - 1
        lane = [0] * 6
        for t in range(64):
            for i in range(6):
                lane[i] |= ((t >> i) & 1) << t
        batch = []
        for a, b_high, cin in itertools.product(range(256), range(4), range(2)):
            asg = {"cin": mask if cin else 0}
            for i in range(8):
                asg[f"a[{i}]"] = mask if (a >> i) & 1 else 0
                asg[f"b[{i}]"] = (
                    lane[i] if i < 6 else (mask if (b_high >> (i - 6)) & 1 else 0)
                )
            batch.append((a, b_high, cin, asg))
        return mask, batch

    def test_packed_8bit_exhaustive_vs_ripple(self):
        """Every TC adder == ripple on all 131072 8-bit vectors."""
        mask, batch = self._packed_8bit_inputs()
        ripple = build_ripple_adder(8)
        reference = [evaluate_packed(ripple, asg, mask) for *_, asg in batch]
        for name in TC_ADDERS:
            if name == "ripple":
                continue
            circuit = NETLIST_SPECS[name].build(8)
            for expected, (a, b_high, cin, asg) in zip(reference, batch):
                got = evaluate_packed(circuit, asg, mask)
                assert got == expected, (
                    f"{name} != ripple at a={a} b_high={b_high} cin={cin}"
                )

    def test_packed_8bit_ripple_vs_integers(self):
        """The packed reference itself matches integer addition everywhere."""
        mask, batch = self._packed_8bit_inputs()
        ripple = build_ripple_adder(8)
        for a, b_high, cin, asg in batch:
            out = evaluate_packed(ripple, asg, mask)
            for t in range(64):
                got = sum(((out[f"sum[{i}]"] >> t) & 1) << i for i in range(8))
                got |= ((out["cout"] >> t) & 1) << 8
                assert got == a + (b_high << 6 | t) + cin


# ---------------------------------------------------------------------------
# The checker accepts what brute force accepts
# ---------------------------------------------------------------------------

class TestChecker:
    @pytest.mark.parametrize("name", sorted(NETLIST_SPECS))
    @pytest.mark.parametrize("width", [4, 8])
    def test_library_proves_at_small_widths(self, name, width):
        result = check_netlist(name, width)
        assert result.equivalent, result.describe()
        assert result.outputs_checked > 0
        assert result.bdd_nodes > 0
        assert "EQUIVALENT" in result.describe()

    def test_full_library_proves_at_64(self):
        """The acceptance gate: every netlist formally verified at 64 bits."""
        results = assert_verified(width=64)
        assert set(results) == set(NETLIST_SPECS)
        for name, result in results.items():
            assert result.equivalent
            # SAM decoder output count is exponential in width, so its
            # proof width is capped; everything else runs the full 64.
            expected = NETLIST_SPECS[name].check_width(64)
            assert result.width == expected

    def test_as_dict_shape(self):
        payload = check_netlist("cla", 8).as_dict()
        assert payload["equivalent"] is True
        assert set(payload) == {
            "name", "kind", "width", "equivalent", "outputs_checked",
            "bdd_nodes", "seconds",
        }

    def test_verify_library_subset(self):
        results = verify_library(width=8, names=["ripple", "rb"])
        assert set(results) == {"ripple", "rb"}
        assert all(r.equivalent for r in results.values())


# ---------------------------------------------------------------------------
# Word-level netlists against concrete integer models
# ---------------------------------------------------------------------------

class TestWordLevelBruteForce:
    def test_rb_adder_exhaustive_4digit(self):
        """All 3**4 x 3**4 valid RB operand pairs decode to the true sum."""
        width = 4
        circuit = build_rb_adder(width)
        digit_states = [(0, 0), (1, 0), (0, 1)]  # 0, +1, -1
        operands = list(itertools.product(digit_states, repeat=width))
        for x_digits, y_digits in itertools.product(operands, operands):
            asg = {}
            for i, (p, n) in enumerate(x_digits):
                asg[f"xp[{i}]"], asg[f"xn[{i}]"] = p, n
            for i, (p, n) in enumerate(y_digits):
                asg[f"yp[{i}]"], asg[f"yn[{i}]"] = p, n
            out = circuit.evaluate(asg)
            got = (
                bus_value(out, "zp", width) - bus_value(out, "zn", width)
                + (out["cout_plus"] - out["cout_minus"]) * (1 << width)
            )
            expected = sum((p - n) << i for i, (p, n) in enumerate(x_digits))
            expected += sum((p - n) << i for i, (p, n) in enumerate(y_digits))
            assert got == expected
            # Output digits must stay inside the valid RB encoding.
            for i in range(width):
                assert not (out[f"zp[{i}]"] and out[f"zn[{i}]"])
            assert not (out["cout_plus"] and out["cout_minus"])

    @pytest.mark.parametrize("name", ["cla_subtractor", "rb_to_tc_converter"])
    def test_subtractor_interface_exhaustive_4bit(self, name):
        circuit = NETLIST_SPECS[name].build(4)
        for a, b in itertools.product(range(16), range(16)):
            asg = {}
            assign_bus(asg, "a", a, 4)
            assign_bus(asg, "b", b, 4)
            out = circuit.evaluate(asg)
            got = bus_value(out, "sum", 4) | (out["cout"] << 4)
            assert got == a + ((~b) & 15) + 1

    def test_sam_decoder_exhaustive_3bit(self):
        circuit = build_sam_decoder(3)
        for a, b in itertools.product(range(8), range(8)):
            asg = {}
            assign_bus(asg, "a", a, 3)
            assign_bus(asg, "b", b, 3)
            out = circuit.evaluate(asg)
            for k in range(8):
                assert out[f"line[{k}]"] == (1 if (a + b) % 8 == k else 0)


# ---------------------------------------------------------------------------
# The negative control: both oracles must reject the mutant
# ---------------------------------------------------------------------------

class TestMutant:
    def test_brute_force_rejects(self):
        mutant = build_mutant_ripple_adder(4)
        mismatches = [
            (a, b, cin)
            for a, b, cin in itertools.product(range(16), range(16), range(2))
            if _add(mutant, a, b, cin, 4) != a + b + cin
        ]
        assert mismatches  # a carry into bit 2 is silently dropped
        # ... and only cases that actually carry into the broken bit fail.
        for a, b, cin in mismatches:
            assert ((a & 3) + (b & 3) + cin) >> 2

    @pytest.mark.parametrize("width", [4, 8, 64])
    def test_checker_rejects(self, width):
        result = check_circuit(build_mutant_ripple_adder(width), "tc_adder", width)
        assert not result.equivalent
        assert result.mismatched_output is not None
        assert result.counterexample is not None
        assert "confirmed by concrete evaluation" in result.detail

    def test_counterexample_is_concrete(self):
        """The checker's refutation re-fails when executed for real."""
        width = 8
        mutant = build_mutant_ripple_adder(width)
        result = check_circuit(mutant, "tc_adder", width)
        asg = result.counterexample
        a = bus_value(asg, "a", width)
        b = bus_value(asg, "b", width)
        cin = asg.get("cin", 0)
        assert _add(mutant, a, b, cin, width) != a + b + cin

    def test_mutant_fails_the_gate(self, monkeypatch):
        monkeypatch.setitem(
            NETLIST_SPECS,
            "mutant",
            NetlistSpec("mutant", build_mutant_ripple_adder, "tc_adder",
                        "negative control"),
        )
        with pytest.raises(ValueError, match="formal equivalence gate failed"):
            assert_verified(width=8, names=["mutant"])

    def test_mutant_not_registered(self):
        assert "mutant" not in NETLIST_SPECS

    def test_broken_bit_validation(self):
        with pytest.raises(ValueError):
            build_mutant_ripple_adder(0)
        with pytest.raises(ValueError):
            build_mutant_ripple_adder(4, broken_bit=4)


# ---------------------------------------------------------------------------
# Error paths
# ---------------------------------------------------------------------------

class TestErrorPaths:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown specification kind"):
            check_circuit(build_ripple_adder(4), "carry_free", 4)

    def test_unknown_netlist_rejected(self):
        with pytest.raises(ValueError, match="unknown netlist"):
            check_netlist("pentium_fdiv", 4)
        with pytest.raises(ValueError, match="unknown netlists"):
            verify_library(width=4, names=["ripple", "pentium_fdiv"])

    def test_interface_mismatch_reported_not_raised(self):
        """Wrong input interface yields a structured failure, not a crash."""
        result = check_circuit(build_rb_adder(4), "tc_adder", 4)
        assert not result.equivalent
        assert result.mismatched_output == "<inputs>"
        assert "input interface mismatch" in result.detail
        payload = result.as_dict()
        assert payload["mismatched_output"] == "<inputs>"

    def test_bdd_primitives(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        assert bdd.apply("xor", x, x) == BDD.FALSE
        assert bdd.apply("or", x, bdd.not_(x)) == BDD.TRUE
        assert bdd.mux(x, y, y) == y
        with pytest.raises(ValueError):
            bdd.any_sat(BDD.FALSE)
        with pytest.raises(ValueError):
            bdd.apply("nand", x, y)
        with pytest.raises(ValueError):
            bdd.var(-1)
        sat = bdd.any_sat(bdd.apply("and", x, y))
        assert sat == {0: 1, 1: 1}
