"""Tests for dependence-aware steering (the §4.2 future-work extension)."""

import pytest

from repro.backend.steering import choose_dependence_target


class TestChooseDependenceTarget:
    def test_prefers_most_recent_producer(self):
        target = choose_dependence_target(
            producer_schedulers=[2, 0],
            occupancies=[0, 0, 0, 0],
            capacity=32,
            round_robin_hint=0,
        )
        assert target == 2

    def test_falls_back_to_next_producer_when_full(self):
        target = choose_dependence_target(
            producer_schedulers=[2, 1],
            occupancies=[0, 3, 32, 0],
            capacity=32,
            round_robin_hint=0,
        )
        assert target == 1

    def test_no_producers_uses_least_occupied_from_hint(self):
        target = choose_dependence_target(
            producer_schedulers=[],
            occupancies=[5, 5, 2, 5],
            capacity=32,
            round_robin_hint=0,
        )
        assert target == 2

    def test_ties_broken_by_hint_rotation(self):
        target = choose_dependence_target(
            producer_schedulers=[],
            occupancies=[4, 4, 4, 4],
            capacity=32,
            round_robin_hint=3,
        )
        assert target == 3

    def test_all_full_returns_none(self):
        target = choose_dependence_target(
            producer_schedulers=[0],
            occupancies=[8, 8],
            capacity=8,
            round_robin_hint=0,
        )
        assert target is None

    def test_stale_scheduler_index_ignored(self):
        target = choose_dependence_target(
            producer_schedulers=[-1, 99, 1],
            occupancies=[0, 0],
            capacity=4,
            round_robin_hint=0,
        )
        assert target == 1


class TestMachineIntegration:
    @pytest.fixture(scope="class")
    def programs(self):
        from repro.workloads.generators import dependent_chain_program
        return dependent_chain_program(iterations=400, chain_length=3)

    def test_dependence_keeps_chains_local(self, programs):
        from dataclasses import replace
        from repro.core import rb_limited, simulate
        rr = simulate(rb_limited(8), programs)
        dep = simulate(
            replace(rb_limited(8), name="dep", steering_policy="dependence"),
            programs,
        )
        # a serial chain steered to one scheduler never crosses clusters
        assert dep.cross_cluster_fraction() < rr.cross_cluster_fraction()
        assert dep.instructions == rr.instructions

    def test_policy_validated(self):
        from dataclasses import replace
        from repro.core import ideal
        with pytest.raises(ValueError, match="steering"):
            replace(ideal(8), steering_policy="chaotic")
