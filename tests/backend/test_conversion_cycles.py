"""Tests for the configurable RB -> TC converter depth."""

import pytest

from repro.backend.bypass import BypassModel
from repro.backend.formats import DataFormat
from repro.backend.latency import AdderStyle, LatencyModel
from repro.isa.opcodes import LatencyClass


class TestLatencyModelKnob:
    def test_default_is_paper_table(self):
        model = LatencyModel(AdderStyle.RB)
        assert model.tc_latency(LatencyClass.INT_ARITH) == 3
        assert model.tc_latency(LatencyClass.SHIFT_LEFT) == 5

    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_depth_applies_to_every_converting_class(self, depth):
        model = LatencyModel(AdderStyle.RB, conversion_cycles=depth)
        for cls in (LatencyClass.INT_ARITH, LatencyClass.INT_COMPARE,
                    LatencyClass.SHIFT_LEFT, LatencyClass.BYTE_MANIP):
            assert model.tc_latency(cls) == model.exec_latency(cls) + depth

    def test_non_converting_classes_untouched(self):
        model = LatencyModel(AdderStyle.RB, conversion_cycles=5)
        assert model.tc_latency(LatencyClass.INT_LOGICAL) == 1
        assert model.tc_latency(LatencyClass.INT_MUL) == 10

    def test_ideal_unaffected(self):
        model = LatencyModel(AdderStyle.IDEAL, conversion_cycles=7)
        assert model.tc_latency(LatencyClass.INT_ARITH) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(AdderStyle.RB, conversion_cycles=-1)


class TestBypassModelIntegration:
    def test_zero_conversion_collapses_formats(self):
        model = BypassModel(AdderStyle.RB, conversion_cycles=0)
        templates = model.templates(LatencyClass.INT_ARITH, True)
        assert templates[DataFormat.RB].first_offset == 1
        assert templates[DataFormat.TC].first_offset == 1

    def test_deeper_converter_widens_gap(self):
        shallow = BypassModel(AdderStyle.RB, conversion_cycles=1)
        deep = BypassModel(AdderStyle.RB, conversion_cycles=4)
        tc_shallow = shallow.templates(LatencyClass.INT_ARITH, True)[DataFormat.TC]
        tc_deep = deep.templates(LatencyClass.INT_ARITH, True)[DataFormat.TC]
        assert tc_deep.first_offset - tc_shallow.first_offset == 3
