"""Tests for the §4.1 register-file cost model."""

import pytest

from repro.backend.regfile import (
    RegisterFileOrganization,
    compare_organizations,
    register_file_cost,
)


class TestCosts:
    def test_tc_only_storage(self):
        cost = register_file_cost(RegisterFileOrganization.TC_ONLY, 128, 64)
        assert cost.storage_bits == 128 * 64

    def test_rb_entries_double_the_state(self):
        """'each entry in a redundant binary register file requires twice
        as many bits of state' — so TC+RB is 3x the TC-only storage."""
        both = compare_organizations(128, 64)
        assert both["tc+rb"].storage_bits == 3 * both["tc-only"].storage_bits

    def test_rb_file_removes_second_level_bypass(self):
        """'This configuration requires the same number of bypass paths as
        a machine with only TC ALUs. There is no second-level bypass.'"""
        both = compare_organizations()
        assert both["tc-only"].bypass_levels_rb_alu == 3
        assert both["tc+rb"].bypass_levels_rb_alu == 1
        assert both["tc+rb"].bypass_paths_per_fu < both["tc-only"].bypass_paths_per_fu

    def test_mux_fan_in_grows_with_fus(self):
        cost = register_file_cost(RegisterFileOrganization.TC_ONLY)
        assert cost.mux_fan_in(8) > cost.mux_fan_in(4)
        # the paper's complexity argument: TC-only needs wider muxes
        rb = register_file_cost(RegisterFileOrganization.TC_AND_RB)
        assert rb.mux_fan_in(8) < cost.mux_fan_in(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            register_file_cost(RegisterFileOrganization.TC_ONLY, entries=0)
