"""Tests for the select-2 wakeup scheduler."""

import pytest

from repro.backend.scheduler import Scheduler
from repro.backend.steering import RoundRobinSteering


def always_ready(record, cycle):
    return True, cycle


def never_ready(record, cycle):
    return False, cycle + 5


class TestScheduler:
    def test_capacity(self):
        sched = Scheduler(capacity=2)
        sched.insert("a", 0)
        assert sched.has_room()
        sched.insert("b", 0)
        assert not sched.has_room()
        with pytest.raises(RuntimeError):
            sched.insert("c", 0)

    def test_selects_oldest_first(self):
        sched = Scheduler(capacity=8, select_width=2)
        for name in "abcd":
            sched.insert(name, 0)
        assert sched.select(0, always_ready) == ["a", "b"]
        assert sched.select(1, always_ready) == ["c", "d"]
        assert sched.occupancy == 0

    def test_earliest_select_respected(self):
        sched = Scheduler(capacity=4)
        sched.insert("a", earliest_select=3)
        assert sched.select(2, always_ready) == []
        assert sched.select(3, always_ready) == ["a"]

    def test_not_ready_sleeps_until_candidate(self):
        sched = Scheduler(capacity=4)
        sched.insert("a", 0)
        calls = []

        def ready_fn(record, cycle):
            calls.append(cycle)
            return (cycle >= 5), max(cycle + 1, 5)

        for cycle in range(6):
            sched.select(cycle, ready_fn)
        # polled at 0, slept until 5, selected at 5 — not polled at 1-4
        assert calls == [0, 5]

    def test_stale_candidate_detected(self):
        sched = Scheduler(capacity=4)
        sched.insert("a", 0)
        with pytest.raises(AssertionError):
            sched.select(3, lambda record, cycle: (False, cycle))

    def test_ready_younger_waits_for_width(self):
        sched = Scheduler(capacity=8, select_width=2)
        for name in "abc":
            sched.insert(name, 0)
        granted = sched.select(0, always_ready)
        assert granted == ["a", "b"]
        assert sched.occupancy == 1

    def test_older_blocked_younger_selected(self):
        """Out-of-order selection: a stalled old entry does not block ready
        younger ones (this is a scheduler, not a queue)."""
        sched = Scheduler(capacity=8, select_width=2)
        sched.insert("old", 0)
        sched.insert("young", 0)

        def only_young(record, cycle):
            return (record == "young"), cycle + 10

        assert sched.select(0, only_young) == ["young"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Scheduler(capacity=0)
        with pytest.raises(ValueError):
            Scheduler(capacity=4, select_width=0)

    def test_statistics(self):
        sched = Scheduler(capacity=4)
        sched.insert("a", 0)
        sched.select(0, always_ready)
        assert sched.selected_total == 1


class TestSteering:
    def test_groups_of_two_round_robin(self):
        steering = RoundRobinSteering(num_schedulers=4, group_size=2)
        order = [steering.next_scheduler() for _ in range(10)]
        assert order == [0, 0, 1, 1, 2, 2, 3, 3, 0, 0]

    def test_peek_does_not_advance(self):
        steering = RoundRobinSteering(2)
        assert steering.peek() == 0
        assert steering.peek() == 0
        steering.next_scheduler()
        steering.next_scheduler()
        assert steering.peek() == 1

    def test_reset(self):
        steering = RoundRobinSteering(3)
        steering.next_scheduler()
        steering.reset()
        assert steering.peek() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinSteering(0)
        with pytest.raises(ValueError):
            RoundRobinSteering(2, group_size=0)


class TestFunctionalUnits:
    def test_pool(self):
        from repro.backend.fu import FunctionalUnitPool
        pool = FunctionalUnitPool(units=2)
        pool.issue(2, latency=1)
        assert pool.issued == 2
        assert pool.utilization(1) == 1.0
        with pytest.raises(ValueError):
            pool.issue(3, latency=1)
        with pytest.raises(ValueError):
            FunctionalUnitPool(units=0)
        assert FunctionalUnitPool(units=1).utilization(0) == 0.0
