"""Tests for the select-2 wakeup scheduler."""

import pytest

from repro.backend.scheduler import Scheduler
from repro.backend.steering import RoundRobinSteering


def always_ready(record, cycle):
    return True, cycle


def never_ready(record, cycle):
    return False, cycle + 5


class TestScheduler:
    def test_capacity(self):
        sched = Scheduler(capacity=2)
        sched.insert("a", 0)
        assert sched.has_room()
        sched.insert("b", 0)
        assert not sched.has_room()
        with pytest.raises(RuntimeError):
            sched.insert("c", 0)

    def test_selects_oldest_first(self):
        sched = Scheduler(capacity=8, select_width=2)
        for name in "abcd":
            sched.insert(name, 0)
        assert sched.select(0, always_ready) == ["a", "b"]
        assert sched.select(1, always_ready) == ["c", "d"]
        assert sched.occupancy == 0

    def test_earliest_select_respected(self):
        sched = Scheduler(capacity=4)
        sched.insert("a", earliest_select=3)
        assert sched.select(2, always_ready) == ()
        assert sched.select(3, always_ready) == ["a"]

    def test_idle_select_result_is_immutable(self):
        """A grantless select must not hand out shared mutable state.

        The scheduler used to return one module-level empty list from
        every idle select; a caller extending its "result" would corrupt
        every other scheduler's idle cycles.  The empty result is now an
        immutable tuple.
        """
        sched = Scheduler(capacity=4)
        grants = sched.select(0, always_ready)
        assert grants == ()
        with pytest.raises((AttributeError, TypeError)):
            grants.append("corruption")
        other = Scheduler(capacity=4)
        assert other.select(0, always_ready) == ()
        assert list(other.select(1, always_ready)) == []

    def test_not_ready_sleeps_until_candidate(self):
        sched = Scheduler(capacity=4)
        sched.insert("a", 0)
        calls = []

        def ready_fn(record, cycle):
            calls.append(cycle)
            return (cycle >= 5), max(cycle + 1, 5)

        for cycle in range(6):
            sched.select(cycle, ready_fn)
        # polled at 0, slept until 5, selected at 5 — not polled at 1-4
        assert calls == [0, 5]

    def test_stale_candidate_detected(self):
        sched = Scheduler(capacity=4)
        sched.insert("a", 0)
        with pytest.raises(AssertionError):
            sched.select(3, lambda record, cycle: (False, cycle))

    def test_ready_younger_waits_for_width(self):
        sched = Scheduler(capacity=8, select_width=2)
        for name in "abc":
            sched.insert(name, 0)
        granted = sched.select(0, always_ready)
        assert granted == ["a", "b"]
        assert sched.occupancy == 1

    def test_older_blocked_younger_selected(self):
        """Out-of-order selection: a stalled old entry does not block ready
        younger ones (this is a scheduler, not a queue)."""
        sched = Scheduler(capacity=8, select_width=2)
        sched.insert("old", 0)
        sched.insert("young", 0)

        def only_young(record, cycle):
            return (record == "young"), cycle + 10

        assert sched.select(0, only_young) == ["young"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Scheduler(capacity=0)
        with pytest.raises(ValueError):
            Scheduler(capacity=4, select_width=0)

    def test_contention_requires_a_ready_loser(self):
        """An entry that is due but whose operands are not ready did not
        lose a grant to bandwidth — it could not have issued at any
        width.  Such cycles must not count as contended."""
        sched = Scheduler(capacity=8, select_width=1)
        sched.insert("winner", 0)
        sched.insert("sleeper", 0)

        def only_winner(record, cycle):
            return (record == "winner"), cycle + 10

        assert sched.select(0, only_winner) == ["winner"]
        assert sched.contended_cycles == 0

    def test_contention_counted_when_ready_loser_waits(self):
        sched = Scheduler(capacity=8, select_width=1)
        sched.insert("winner", 0)
        sched.insert("loser", 0)
        assert sched.select(0, always_ready) == ["winner"]
        assert sched.contended_cycles == 1
        assert sched.select(1, always_ready) == ["loser"]
        assert sched.contended_cycles == 1

    def test_probed_loser_sleeps_until_candidate(self):
        """Probing a not-ready loser past the bandwidth limit updates its
        next_try, so it is not re-polled every cycle."""
        sched = Scheduler(capacity=8, select_width=1)
        sched.insert("winner", 0)
        sched.insert("sleeper", 0)
        polls = []

        def ready_fn(record, cycle):
            if record == "sleeper":
                polls.append(cycle)
                return (cycle >= 5), max(cycle + 1, 5)
            return True, cycle

        assert sched.select(0, ready_fn) == ["winner"]
        for cycle in range(1, 6):
            sched.select(cycle, ready_fn)
        # probed once at 0 (past the width limit), then slept until 5
        assert polls == [0, 5]

    def test_stale_candidate_from_probed_loser_detected(self):
        sched = Scheduler(capacity=8, select_width=1)
        sched.insert("winner", 0)
        sched.insert("stale", 0)

        def ready_fn(record, cycle):
            return (record == "winner"), cycle

        with pytest.raises(AssertionError):
            sched.select(0, ready_fn)

    def test_statistics(self):
        sched = Scheduler(capacity=4)
        sched.insert("a", 0)
        sched.select(0, always_ready)
        assert sched.selected_total == 1


class TestSteering:
    def test_groups_of_two_round_robin(self):
        steering = RoundRobinSteering(num_schedulers=4, group_size=2)
        order = [steering.next_scheduler() for _ in range(10)]
        assert order == [0, 0, 1, 1, 2, 2, 3, 3, 0, 0]

    def test_peek_does_not_advance(self):
        steering = RoundRobinSteering(2)
        assert steering.peek() == 0
        assert steering.peek() == 0
        steering.next_scheduler()
        steering.next_scheduler()
        assert steering.peek() == 1

    def test_reset(self):
        steering = RoundRobinSteering(3)
        steering.next_scheduler()
        steering.reset()
        assert steering.peek() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinSteering(0)
        with pytest.raises(ValueError):
            RoundRobinSteering(2, group_size=0)


class TestFunctionalUnits:
    def test_pool(self):
        from repro.backend.fu import FunctionalUnitPool
        pool = FunctionalUnitPool(units=2)
        pool.issue(2, latency=1)
        assert pool.issued == 2
        assert pool.utilization(1) == 1.0
        with pytest.raises(ValueError):
            pool.issue(3, latency=1)
        with pytest.raises(ValueError):
            FunctionalUnitPool(units=0)
        assert FunctionalUnitPool(units=1).utilization(0) == 0.0
