"""Tests for availability templates: the paper's §4.2 hole semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.backend.bypass import (
    AvailabilityTemplate,
    BypassModel,
    BypassStyle,
    template_from_levels,
)
from repro.backend.formats import DataFormat
from repro.backend.latency import AdderStyle
from repro.isa.opcodes import LatencyClass


class TestAvailabilityTemplate:
    def test_continuous(self):
        template = AvailabilityTemplate((), 2)
        assert not template.available(1)
        assert template.available(2)
        assert template.available(100)
        assert not template.has_hole()

    def test_hole_pattern(self):
        template = AvailabilityTemplate((1,), 4)
        assert [template.available(i) for i in range(1, 6)] == [
            True, False, False, True, True
        ]
        assert template.has_hole()

    def test_next_available(self):
        template = AvailabilityTemplate((1,), 4)
        assert template.next_available(1) == 1
        assert template.next_available(2) == 4
        assert template.next_available(10) == 10

    def test_first_offset(self):
        assert AvailabilityTemplate((2,), 5).first_offset == 2
        assert AvailabilityTemplate((), 3).first_offset == 3

    def test_shift_register_bits_match_paper_figure(self):
        """Fig. 8: holes appear as interleaved 0s in the countdown image."""
        template = AvailabilityTemplate((1,), 4)
        assert template.shift_register_bits(5) == [1, 0, 0, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilityTemplate((5,), 4)
        with pytest.raises(ValueError):
            AvailabilityTemplate((3, 2), 9)

    @given(st.integers(min_value=1, max_value=6),
           st.sets(st.integers(min_value=1, max_value=3)))
    def test_template_from_levels_consistent(self, latency, removed):
        template = template_from_levels(latency, frozenset(removed))
        # register file always reachable at latency + 3 and beyond
        assert template.available(latency + 3)
        assert template.available(latency + 10)
        # a kept level k is reachable at latency + k - 1
        for level in {1, 2, 3} - removed:
            assert template.available(latency + level - 1)
        # a removed level is not (unless the fold made it permanent)
        for level in removed:
            offset = latency + level - 1
            if offset < template.permanent_from:
                assert not template.available(offset)


class TestFullBypass:
    @pytest.mark.parametrize("style", [AdderStyle.BASELINE, AdderStyle.IDEAL])
    def test_tc_machines_continuous_from_latency(self, style):
        model = BypassModel(style)
        templates = model.templates(LatencyClass.INT_ARITH, False)
        latency = model.latency.exec_latency(LatencyClass.INT_ARITH)
        for fmt in DataFormat:
            assert templates[fmt].first_offset == latency
            assert not templates[fmt].has_hole()

    def test_rb_full_machine_split_formats(self):
        model = BypassModel(AdderStyle.RB)
        templates = model.templates(LatencyClass.INT_ARITH, True)
        assert templates[DataFormat.RB].first_offset == 1
        assert templates[DataFormat.TC].first_offset == 3
        assert not templates[DataFormat.RB].has_hole()
        assert not templates[DataFormat.TC].has_hole()


class TestRBLimited:
    """The §4.2 network: the paper's worked example timings."""

    @pytest.fixture(scope="class")
    def model(self):
        return BypassModel(AdderStyle.RB, BypassStyle.RB_LIMITED)

    def test_rb_consumer_two_cycle_hole(self, model):
        """'available ... immediately after it is produced, and then there
        is a 2-cycle hole in data availability.'"""
        template = model.templates(LatencyClass.INT_ARITH, True)[DataFormat.RB]
        assert [template.available(i) for i in (1, 2, 3, 4)] == [
            True, False, False, True
        ]

    def test_tc_consumer_no_hole(self, model):
        """'available from BYP-3, and then from the register file.'"""
        template = model.templates(LatencyClass.INT_ARITH, True)[DataFormat.TC]
        assert [template.available(i) for i in (2, 3, 4, 5)] == [
            False, True, True, True
        ]

    def test_tc_producer_loses_level_two(self, model):
        template = model.templates(LatencyClass.INT_LOGICAL, False)[DataFormat.RB]
        assert template.available(1)
        assert not template.available(2)
        assert template.available(3)

    def test_requires_rb_adders(self):
        with pytest.raises(ValueError):
            BypassModel(AdderStyle.IDEAL, BypassStyle.RB_LIMITED)


class TestFig14Limited:
    def test_no1_is_uniform_latency_increase(self):
        """'The difference between the Ideal machine and the No-1 machine is
        the effect of increasing all execution latencies by one cycle.'"""
        model = BypassModel(AdderStyle.IDEAL, BypassStyle.LIMITED, frozenset({1}))
        for cls in (LatencyClass.INT_ARITH, LatencyClass.INT_LOGICAL,
                    LatencyClass.SHIFT_LEFT):
            latency = model.latency.exec_latency(cls)
            template = model.templates(cls, False)[DataFormat.TC]
            assert template.first_offset == latency + 1
            assert not template.has_hole()

    def test_no2_hole(self):
        model = BypassModel(AdderStyle.IDEAL, BypassStyle.LIMITED, frozenset({2}))
        template = model.templates(LatencyClass.INT_ARITH, False)[DataFormat.TC]
        assert [template.available(i) for i in (1, 2, 3)] == [True, False, True]

    def test_no23_two_cycle_hole(self):
        model = BypassModel(AdderStyle.IDEAL, BypassStyle.LIMITED, frozenset({2, 3}))
        template = model.templates(LatencyClass.INT_ARITH, False)[DataFormat.TC]
        assert [template.available(i) for i in (1, 2, 3, 4)] == [
            True, False, False, True
        ]

    def test_no12_delays_to_third_level(self):
        model = BypassModel(AdderStyle.IDEAL, BypassStyle.LIMITED, frozenset({1, 2}))
        template = model.templates(LatencyClass.INT_ARITH, False)[DataFormat.TC]
        assert template.first_offset == 3
        assert not template.has_hole()

    def test_limited_needs_levels(self):
        with pytest.raises(ValueError):
            BypassModel(AdderStyle.IDEAL, BypassStyle.LIMITED)
        with pytest.raises(ValueError):
            BypassModel(AdderStyle.IDEAL, BypassStyle.LIMITED, frozenset({4}))
        with pytest.raises(ValueError):
            BypassModel(AdderStyle.IDEAL, removed_levels=frozenset({1}))


class TestLoadTemplates:
    def test_full_continuous(self):
        model = BypassModel(AdderStyle.IDEAL)
        template = model.load_template(3)
        assert template.first_offset == 3
        assert not template.has_hole()

    def test_rb_limited_load_hole(self):
        model = BypassModel(AdderStyle.RB, BypassStyle.RB_LIMITED)
        template = model.load_template(3)
        assert template.available(3)
        assert not template.available(4)
        assert template.available(5)

    def test_miss_latency_shifts_template(self):
        model = BypassModel(AdderStyle.IDEAL, BypassStyle.LIMITED, frozenset({1}))
        template = model.load_template(110)
        assert template.first_offset == 111

    def test_validation(self):
        with pytest.raises(ValueError):
            BypassModel(AdderStyle.IDEAL).load_template(0)
