"""Tests that the latency model is exactly Table 3."""

import pytest

from repro.backend.latency import TABLE3, AdderStyle, LatencyModel
from repro.isa.opcodes import LatencyClass


class TestTable3Values:
    """Pin every paper-specified number; changing one should fail a test."""

    @pytest.mark.parametrize("cls,base,rb,rb_tc,ideal", [
        (LatencyClass.INT_ARITH, 2, 1, 3, 1),
        (LatencyClass.INT_LOGICAL, 1, 1, 1, 1),
        (LatencyClass.SHIFT_LEFT, 3, 3, 5, 3),
        (LatencyClass.SHIFT_RIGHT, 3, 3, 3, 3),
        (LatencyClass.INT_COMPARE, 2, 1, 3, 1),
        (LatencyClass.BYTE_MANIP, 2, 1, 3, 1),
        (LatencyClass.INT_MUL, 10, 10, 10, 10),
        (LatencyClass.FP_ARITH, 8, 8, 8, 8),
        (LatencyClass.FP_DIV, 32, 32, 32, 32),
        (LatencyClass.MEM, 1, 1, 3, 1),
    ])
    def test_row(self, cls, base, rb, rb_tc, ideal):
        row = TABLE3[cls]
        assert (row.baseline, row.rb, row.rb_tc, row.ideal) == (base, rb, rb_tc, ideal)

    def test_all_classes_covered(self):
        assert set(TABLE3) == set(LatencyClass)


class TestLatencyModel:
    def test_baseline_adds_two_cycles(self):
        model = LatencyModel(AdderStyle.BASELINE)
        assert model.exec_latency(LatencyClass.INT_ARITH) == 2
        assert model.tc_latency(LatencyClass.INT_ARITH) == 2
        assert not model.produces_rb(LatencyClass.INT_ARITH)

    def test_rb_add_one_cycle_tc_three(self):
        model = LatencyModel(AdderStyle.RB)
        assert model.exec_latency(LatencyClass.INT_ARITH) == 1
        assert model.tc_latency(LatencyClass.INT_ARITH) == 3
        assert model.produces_rb(LatencyClass.INT_ARITH)

    def test_rb_logical_no_conversion(self):
        model = LatencyModel(AdderStyle.RB)
        assert model.tc_latency(LatencyClass.INT_LOGICAL) == 1
        assert not model.produces_rb(LatencyClass.INT_LOGICAL)

    def test_ideal_one_cycle(self):
        model = LatencyModel(AdderStyle.IDEAL)
        assert model.exec_latency(LatencyClass.INT_ARITH) == 1
        assert model.tc_latency(LatencyClass.INT_COMPARE) == 1

    def test_shift_left_conversion_is_two_cycles(self):
        model = LatencyModel(AdderStyle.RB)
        assert model.tc_latency(LatencyClass.SHIFT_LEFT) == 5

    def test_non_rb_machines_never_produce_rb(self):
        for style in (AdderStyle.BASELINE, AdderStyle.IDEAL):
            model = LatencyModel(style)
            assert not any(model.produces_rb(cls) for cls in LatencyClass)

    def test_conversion_cost_is_always_two_cycles(self):
        """Every RB-producing class pays exactly the 2-cycle converter."""
        for cls, row in TABLE3.items():
            if row.rb_tc != row.rb:
                assert row.rb_tc - row.rb == 2, cls
