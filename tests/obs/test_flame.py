"""Tests for the stack samplers, stage attribution, and flamegraph output."""

import re
import time

import pytest

from repro.core.machine import Machine
from repro.core.presets import rb_limited
from repro.obs.flame import (
    STAGES,
    CallStackSampler,
    SamplingProfiler,
    classify_frame,
    classify_stack,
    open_profiler,
)
from repro.workloads.suite import build


class TestClassification:
    def test_frame_rules(self):
        assert classify_frame("src/repro/backend/scheduler.py", "wakeup") == "schedule"
        assert classify_frame("src/repro/backend/bypass.py", "probe") == "bypass"
        assert classify_frame("src/repro/rb/adder.py", "add") == "execute"
        assert classify_frame("src/repro/mem/dcache.py", "access") == "memory"
        assert classify_frame("src/repro/core/window.py", "retire") == "retire"
        assert classify_frame("/usr/lib/python3/json/decoder.py", "decode") is None

    def test_function_prefix_rule(self):
        assert classify_frame("src/repro/core/machine.py", "is_ready_x") == "schedule"
        assert classify_frame("src/repro/core/machine.py", "run") is None

    def test_stack_uses_innermost_match(self):
        stack = (
            ("src/repro/backend/scheduler.py", "select"),
            ("src/repro/core/machine.py", "run"),
        )
        assert classify_stack(stack) == "schedule"

    def test_core_loop_and_host_fallbacks(self):
        assert classify_stack((("src/repro/core/machine.py", "run"),)) == "core-loop"
        assert classify_stack((("/usr/lib/runpy.py", "_run_code"),)) == "host"

    def test_windows_paths_normalize(self):
        assert classify_frame(r"src\repro\backend\bypass.py", "probe") == "bypass"


def burn(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_captures_samples_and_collapses(self):
        profiler = SamplingProfiler(interval=0.001, timer="cpu")
        with profiler:
            burn(time.perf_counter() + 0.2)
        assert profiler.total_samples > 0
        collapsed = profiler.collapsed()
        assert re.search(r"test_flame:burn \d+", collapsed)
        for line in collapsed.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit(), line

    def test_enable_disable_idempotent(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.enable()
        profiler.enable()   # second enable is a no-op
        assert profiler.enabled
        profiler.disable()
        profiler.disable()  # disabling an idle profiler is a no-op
        assert not profiler.enabled
        # the itimer is genuinely off: no samples accrue afterwards
        profiler.reset()
        burn(time.perf_counter() + 0.05)
        assert profiler.total_samples == 0

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)
        with pytest.raises(ValueError):
            SamplingProfiler(timer="sundial")

    def test_wall_timer_variant(self):
        profiler = SamplingProfiler(interval=0.001, timer="wall")
        with profiler:
            burn(time.perf_counter() + 0.1)
        assert profiler.total_samples > 0

    def test_refuses_worker_threads(self):
        import threading

        failures = []

        def attempt():
            try:
                SamplingProfiler(interval=0.01).enable()
            except RuntimeError as exc:
                failures.append(exc)

        thread = threading.Thread(target=attempt)
        thread.start()
        thread.join()
        assert len(failures) == 1


class TestCallStackSampler:
    def test_deterministic_for_deterministic_work(self):
        def workload():
            sampler = CallStackSampler(stride=16)
            with sampler:
                for _ in range(500):
                    classify_frame("src/repro/mem/dcache.py", "access")
            return sorted(sampler.collapsed().splitlines())

        assert workload() == workload()

    def test_enable_disable_idempotent(self):
        sampler = CallStackSampler(stride=4)
        sampler.enable()
        sampler.enable()
        sampler.disable()
        sampler.disable()
        assert not sampler.enabled
        before = sampler.total_samples
        for _ in range(100):
            classify_frame("x.py", "f")
        assert sampler.total_samples == before

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            CallStackSampler(stride=0)

    def test_open_profiler_picks_by_thread(self):
        import threading

        assert isinstance(open_profiler(), SamplingProfiler)
        picked = []
        thread = threading.Thread(target=lambda: picked.append(open_profiler()))
        thread.start()
        thread.join()
        assert isinstance(picked[0], CallStackSampler)


class TestStageReport:
    def test_simulator_run_attributes_to_stages(self):
        """A real simulation's samples land overwhelmingly inside the
        simulator's stage taxonomy, not in 'host'."""
        program = build("ijpeg")
        machine = Machine(rb_limited(4))
        sampler = CallStackSampler(stride=64)
        with sampler:
            machine.run(program)
        assert sampler.total_samples > 50
        report = sampler.stage_report()
        assert [entry["stage"] for entry in report[:1]] != ["host"]
        fractions = {entry["stage"]: entry["fraction"] for entry in report}
        assert set(fractions) >= set(STAGES)
        assert sum(fractions.values()) == pytest.approx(1.0, abs=0.01)
        assert fractions["host"] < 0.2

    def test_report_includes_zero_count_stages(self):
        sampler = CallStackSampler()
        report = sampler.stage_report()
        assert {entry["stage"] for entry in report} == set(STAGES)
        assert all(entry["samples"] == 0 for entry in report)

    def test_write_collapsed(self, tmp_path):
        sampler = CallStackSampler(stride=8)
        with sampler:
            for _ in range(200):
                classify_frame("src/repro/rb/adder.py", "add")
        path = sampler.write_collapsed(tmp_path / "deep" / "stacks.txt")
        assert path.read_text() == sampler.collapsed()
        assert path.read_text().endswith("\n")


class TestProfilerExceptionSafety:
    def test_raise_inside_context_restores_signal_state(self):
        """An exception out of the profiled callable must leave no trace:
        the itimer disarmed, the SIGPROF handler restored, and the
        profiler re-enableable."""
        import signal

        before = signal.getsignal(signal.SIGPROF)
        profiler = SamplingProfiler(interval=0.001, timer="cpu")
        with pytest.raises(RuntimeError, match="boom"):
            with profiler:
                raise RuntimeError("boom")
        assert not profiler.enabled
        assert profiler._previous_handler is None
        assert signal.getsignal(signal.SIGPROF) is before
        assert signal.getitimer(signal.ITIMER_PROF) == (0.0, 0.0)
        # the profiler is not wedged: a fresh session still samples
        profiler.reset()
        with profiler:
            burn(time.perf_counter() + 0.05)
        assert signal.getsignal(signal.SIGPROF) is before
        assert profiler.total_samples > 0

    def test_failed_enable_rolls_back_handler(self, monkeypatch):
        """If arming the itimer fails, enable() must restore the previous
        handler before re-raising — and disable() stays a no-op."""
        import signal as signal_module

        before = signal_module.getsignal(signal_module.SIGPROF)
        profiler = SamplingProfiler(interval=0.001, timer="cpu")

        def explode(which, seconds, interval=0.0):
            raise OSError("no timers today")

        monkeypatch.setattr("repro.obs.flame.signal.setitimer", explode)
        with pytest.raises(OSError):
            profiler.enable()
        assert not profiler.enabled
        assert profiler._previous_handler is None
        assert signal_module.getsignal(signal_module.SIGPROF) is before
