"""Tests for the distributed-tracing span model, tracer, and exports."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import EventBus, EventKind
from repro.obs.sinks import validate_chrome_trace
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    export_chrome,
    export_spans,
    now,
    span_depths,
    validate_span_tree,
)


class TestSpanModel:
    def test_round_trip(self):
        span = Span("t" * 16, "s" * 16, "machine.run", 1.0,
                    parent_id="p" * 16, end=2.5, attributes={"cycles": 7})
        reloaded = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert reloaded == span

    def test_context_and_duration(self):
        span = Span("t" * 16, "s" * 16, "x", 1.0, end=1.5)
        assert span.context == TraceContext("t" * 16, "s" * 16)
        assert span.duration == pytest.approx(0.5)
        assert Span("t" * 16, "a" * 16, "open", 1.0).duration is None

    def test_context_round_trip(self):
        ctx = TraceContext("feedfacefeedface", "cafecafecafecafe")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_monotonic_clock(self):
        readings = [now() for _ in range(100)]
        assert readings == sorted(readings)


class TestTracer:
    def test_parenting_pins_trace(self):
        tracer = Tracer()
        root = tracer.start("serve.request")
        child = tracer.start("serve.job", parent=root)
        grandchild = tracer.start("pool.worker", parent=child.context)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        for span in (grandchild, child, root):
            tracer.end(span)
        assert validate_span_tree(tracer.spans(root.trace_id)) == 3

    def test_span_context_manager_records_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("worker died")
        finished = tracer.spans()[-1]
        assert finished is span
        assert finished.end is not None
        assert "worker died" in finished.attributes["error"]

    def test_adopt_merges_serialized_spans(self):
        worker = Tracer()
        parent_ctx = TraceContext("a" * 16, "b" * 16)
        with worker.span("pool.worker", parent=parent_ctx):
            pass
        entries = [s.to_dict() for s in worker.spans()]

        tracer = Tracer()
        assert tracer.adopt(entries) == 1
        adopted = tracer.spans("a" * 16)
        assert adopted[0].parent_id == "b" * 16

    def test_bounded_buffer(self):
        tracer = Tracer(max_spans=4)
        for index in range(10):
            tracer.end(tracer.start(f"span-{index}"))
        names = [s.name for s in tracer.spans()]
        assert names == ["span-6", "span-7", "span-8", "span-9"]

    def test_bad_max_spans(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_emits_span_events_on_bus(self):
        bus = EventBus()
        tracer = Tracer(bus=bus)
        with tracer.span("serve.request"):
            pass
        span_events = [e for e in bus.events if e.kind is EventKind.SPAN]
        assert len(span_events) == 1
        event = span_events[0]
        assert event.text == "serve.request"
        assert event.dur >= 1
        assert event.args["span_id"] == tracer.spans()[0].span_id

    def test_trace_ids_in_first_seen_order(self):
        tracer = Tracer()
        first = tracer.end(tracer.start("a"))
        second = tracer.end(tracer.start("b"))
        tracer.end(tracer.start("c", parent=first))
        assert tracer.trace_ids() == [first.trace_id, second.trace_id]


class TestValidateSpanTree:
    def _tree(self):
        root = Span("t" * 16, "r" * 16, "root", 1.0, end=5.0)
        child = Span("t" * 16, "c" * 16, "child", 2.0,
                     parent_id="r" * 16, end=4.0)
        return [root, child]

    def test_valid_tree_counts(self):
        assert validate_span_tree(self._tree()) == 2

    def test_accepts_dict_entries(self):
        assert validate_span_tree([s.to_dict() for s in self._tree()]) == 2

    def test_rejects_orphan_parent(self):
        spans = self._tree()
        spans[1].parent_id = "x" * 16
        with pytest.raises(ValueError, match="not in trace"):
            validate_span_tree(spans)

    def test_rejects_duplicate_span_id(self):
        spans = self._tree()
        spans[1].span_id = spans[0].span_id
        with pytest.raises(ValueError, match="duplicate"):
            validate_span_tree(spans)

    def test_rejects_end_before_start(self):
        spans = self._tree()
        spans[1].end = 0.5
        spans[1].start = 3.0
        with pytest.raises(ValueError, match="before start"):
            validate_span_tree(spans)

    def test_rejects_child_outside_parent(self):
        spans = self._tree()
        spans[1].end = 9.0  # far past the parent's end and any tolerance
        with pytest.raises(ValueError, match="after its parent"):
            validate_span_tree(spans)

    def test_tolerance_allows_cross_process_skew(self):
        spans = self._tree()
        spans[1].start = 0.99  # 10ms before the parent: within tolerance
        validate_span_tree(spans, tolerance=0.05)
        with pytest.raises(ValueError, match="before its parent"):
            validate_span_tree(spans, tolerance=0.001)

    def test_rejects_parent_cycle(self):
        a = Span("t" * 16, "a" * 16, "a", 1.0, parent_id="b" * 16, end=2.0)
        b = Span("t" * 16, "b" * 16, "b", 1.0, parent_id="a" * 16, end=2.0)
        with pytest.raises(ValueError, match="cycle"):
            validate_span_tree([a, b])


class TestExports:
    def _tree(self):
        tracer = Tracer()
        root = tracer.start("serve.request")
        job = tracer.start("serve.job", parent=root)
        worker = tracer.start("pool.worker", parent=job)
        for span in (worker, job, root):
            tracer.end(span)
        return root.trace_id, tracer.spans(root.trace_id)

    def test_export_spans_document(self):
        trace_id, spans = self._tree()
        document = export_spans(trace_id, spans)
        assert document["version"] == 1
        assert document["trace_id"] == trace_id
        assert len(document["spans"]) == 3
        json.dumps(document)  # must be JSON-serializable as-is

    def test_export_chrome_is_valid_and_depth_laned(self):
        trace_id, spans = self._tree()
        document = export_chrome(spans, meta={"trace_id": trace_id})
        total, retires = validate_chrome_trace(document)
        assert retires == 0
        slices = [e for e in document["traceEvents"] if e.get("cat") == "trace"]
        by_name = {e["name"]: e["tid"] for e in slices}
        assert by_name == {"serve.request": 0, "serve.job": 1, "pool.worker": 2}

    def test_export_chrome_rejects_empty(self):
        with pytest.raises(ValueError):
            export_chrome([])

    def test_span_depths(self):
        _, spans = self._tree()
        depths = sorted(span_depths(spans).values())
        assert depths == [0, 1, 2]


@st.composite
def span_forests(draw):
    """Random well-formed span trees driven through a real Tracer."""
    tracer = Tracer()
    open_spans: list[Span] = []
    finished = 0
    for _ in range(draw(st.integers(min_value=1, max_value=24))):
        if open_spans and draw(st.booleans()):
            tracer.end(open_spans.pop())
            finished += 1
            continue
        parent = None
        if open_spans and draw(st.booleans()):
            parent = draw(st.sampled_from(open_spans))
        open_spans.append(tracer.start(draw(st.sampled_from(
            ["request", "job", "queue", "dispatch", "worker", "run"]
        )), parent=parent))
    while open_spans:
        tracer.end(open_spans.pop())
        finished += 1
    return tracer, finished


class TestSpanTreeProperty:
    @settings(max_examples=50, deadline=None)
    @given(span_forests())
    def test_tracer_output_always_validates(self, forest):
        """Any interleaving of starts/ends (LIFO per stack) yields spans
        that pass structural validation and export cleanly."""
        tracer, finished = forest
        spans = tracer.spans()
        assert validate_span_tree(spans) == finished
        if spans:
            document = export_chrome(spans)
            validate_chrome_trace(document)
