"""Tests for the dependence-graph critical-path analyzer
(``repro.obs.critpath``): synthetic-stream unit tests plus the Fig. 13
shape check on a real traced run — RB->TC conversions bind a strictly
smaller share of last-arriving operands than load producers do.
"""

import pytest

from repro.core.machine import Machine
from repro.core.presets import rb_full, rb_limited
from repro.obs.critpath import RF_LEVEL, CritPathReport, DepEdge, DependenceGraph
from repro.obs.events import EventBus, EventKind, TraceEvent
from repro.obs.sinks import CollectorSink
from repro.workloads.suite import build


def _bypass(cycle, seq, producer_seq, level, case="RB_TO_RB",
            arrival=None, producer_load=False):
    return TraceEvent(cycle, EventKind.BYPASS, seq, args={
        "level": level, "case": case, "producer_seq": producer_seq,
        "format": case.split("_TO_")[-1],
        "arrival": cycle if arrival is None else arrival,
        "producer_load": producer_load,
    })


def _lifecycle(seq, select, complete):
    return [
        TraceEvent(select, EventKind.SELECT, seq, f"i{seq}"),
        TraceEvent(complete + 1, EventKind.WRITEBACK, seq, f"i{seq}"),
        TraceEvent(complete + 2, EventKind.RETIRE, seq, f"i{seq}"),
    ]


class TestDepEdge:
    def test_service_names(self):
        assert _edge(level=1).service == "BYP-1"
        assert _edge(level=3).service == "BYP-3"
        assert _edge(level=RF_LEVEL).service == "RF"
        assert _edge(level=None).service == "RF"

    def test_conversion_flag(self):
        assert _edge(case="RB_TO_TC").is_conversion
        assert not _edge(case="TC_TO_TC").is_conversion


def _edge(level=1, case="RB_TO_RB", arrival=5):
    return DepEdge(consumer_seq=1, producer_seq=0, level=level,
                   case=case, fmt="RB", arrival=arrival)


class TestDependenceGraph:
    def test_reconstruction_from_synthetic_stream(self):
        events = (
            _lifecycle(0, 0, 3)
            + _lifecycle(1, 4, 7)
            + [_bypass(4, 1, 0, level=1, arrival=4)]
        )
        graph = DependenceGraph.from_events(events)
        assert set(graph.nodes) == {0, 1}
        assert graph.nodes[0].select == 0
        assert graph.nodes[0].complete == 3
        assert graph.nodes[1].retire == 9
        (edge,) = graph.nodes[1].edges
        assert edge.producer_seq == 0 and edge.service == "BYP-1"

    def test_machine_level_events_skipped(self):
        events = [TraceEvent(3, EventKind.STALL, -1, args={"cause": "frontend-empty"})]
        assert DependenceGraph.from_events(events).nodes == {}

    def test_last_arriving_prefers_latest_first_wins_ties(self):
        node_events = _lifecycle(2, 10, 12) + [
            _bypass(10, 2, 0, level=1, arrival=8),
            _bypass(10, 2, 1, level=2, arrival=10),
            _bypass(10, 2, 3, level=3, arrival=10),  # tie: first listed wins
        ]
        graph = DependenceGraph.from_events(node_events)
        binding = graph.nodes[2].last_arriving()
        assert binding.producer_seq == 1 and binding.level == 2

    def test_critical_chain_walks_backward(self):
        events = (
            _lifecycle(0, 0, 2) + _lifecycle(1, 3, 5) + _lifecycle(2, 6, 8)
            + [_bypass(3, 1, 0, level=1, arrival=3),
               _bypass(6, 2, 1, level=1, arrival=6)]
        )
        chain = DependenceGraph.from_events(events).critical_chain()
        assert [e.consumer_seq for e in chain] == [2, 1]
        assert [e.producer_seq for e in chain] == [1, 0]

    def test_chain_bounded(self):
        # a self-loop must not walk forever
        events = _lifecycle(0, 0, 2) + [_bypass(0, 0, 0, level=1)]
        chain = DependenceGraph.from_events(events).critical_chain(max_length=5)
        assert len(chain) == 5


class TestCritPathReport:
    def test_synthetic_aggregation(self):
        events = (
            _lifecycle(0, 0, 2)
            + _lifecycle(1, 3, 5)
            + _lifecycle(2, 6, 8)
            + [_bypass(3, 1, 0, level=1, case="RB_TO_TC", arrival=3),
               _bypass(6, 2, 1, level=RF_LEVEL, arrival=5, producer_load=True)]
        )
        report = CritPathReport.from_events(events)
        assert report.nodes == 3
        assert report.bound == 2
        assert report.by_service == {"BYP-1": 1, "RF": 1}
        assert report.conversions == 1 and report.conversion_fraction() == 0.5
        assert report.loads == 1 and report.load_fraction() == 0.5
        # seq 1's edge arrives exactly at its select cycle -> zero slack;
        # seq 2's arrives a cycle early -> slack 1.
        assert report.zero_slack == 1

    def test_as_dict_covers_every_service(self):
        entry = CritPathReport().as_dict()
        assert set(entry["by_service"]) == set(CritPathReport.SERVICES)
        assert entry["bound_operands"] == 0
        assert entry["conversion_fraction"] == 0.0

    @pytest.mark.parametrize("preset", [rb_full, rb_limited])
    def test_real_run_fig13_shape(self, preset):
        """Conversions bind strictly fewer critical operands than loads."""
        sink = CollectorSink()
        stats = Machine(preset(4)).run(build("li"), bus=EventBus([sink]))
        report = CritPathReport.from_events(sink.events)
        assert report.nodes == stats.instructions
        assert report.bound > 0
        assert sum(report.by_service.values()) == report.bound
        assert report.conversion_fraction() < report.load_fraction()
        assert 0.0 < report.zero_slack_fraction() <= 1.0
        assert report.chain, "a real run must have a nonempty critical chain"
