"""Tests for the event bus and the machine's trace emission: monotonic
cycles, determinism, JSON round-trips, and the acceptance check that IPC
recomputed purely from retire events matches ``SimStats.ipc`` exactly on
every paper machine model."""

import pytest

from repro.core.machine import SELECT_TO_EXEC, Machine
from repro.core.presets import baseline, ideal, rb_full, rb_limited
from repro.isa.assembler import assemble
from repro.obs.events import EventBus, EventKind, TraceEvent, ipc_from_events, lifecycle_events
from repro.obs.sinks import CollectorSink
from repro.workloads.suite import build

TINY = """
    .text
main:
    lda r1, 3(zero)
    lda r2, 5(zero)
    sll r1, #2, r3
    add r3, r2, r5
    sub r5, r3, r6
    halt
"""


def _run_with_bus(config, program):
    sink = CollectorSink()
    bus = EventBus([sink])
    stats = Machine(config).run(program, bus=bus)
    return stats, bus, sink


class TestTraceEvent:
    def test_dict_round_trip(self):
        event = TraceEvent(7, EventKind.BYPASS, 3, "add r1, r2, r3",
                           args={"level": 1, "case": "RB_TO_RB"})
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_defaults_omitted_from_dict(self):
        entry = TraceEvent(1, EventKind.FETCH, 0, "x").to_dict()
        assert "dur" not in entry and "args" not in entry


class TestLifecycleEvents:
    def test_unselected_record_yields_frontend_only(self):
        class Rec:
            seq = 0
            fetch_cycle = 2
            rename_cycle = -1
            select_cycle = None

            class instr:
                text = "nop"

        kinds = [e.kind for e in lifecycle_events(Rec(), SELECT_TO_EXEC)]
        assert kinds == [EventKind.FETCH]


class TestMachineEmission:
    @pytest.fixture(scope="class")
    def run(self):
        program = assemble(TINY, "tiny")
        return _run_with_bus(rb_full(4), program)

    def test_events_monotonic_in_cycle(self, run):
        _, bus, _ = run
        cycles = [e.cycle for e in bus.events]
        assert cycles == sorted(cycles)
        assert all(c >= 0 for c in cycles)

    def test_retires_match_instruction_count(self, run):
        stats, bus, _ = run
        retires = [e for e in bus.events if e.kind is EventKind.RETIRE]
        assert len(retires) == stats.instructions

    def test_every_retired_instruction_has_full_lifecycle(self, run):
        stats, bus, _ = run
        by_seq = {}
        for event in bus.events:
            # STALL events attribute cycles (seq -1 on an empty window), not
            # instruction lifecycles; skip them when grouping by instruction.
            if event.kind is EventKind.STALL or event.seq < 0:
                continue
            by_seq.setdefault(event.seq, set()).add(event.kind)
        assert len(by_seq) == stats.instructions
        for kinds in by_seq.values():
            assert {EventKind.FETCH, EventKind.SELECT, EventKind.EXECUTE,
                    EventKind.WRITEBACK, EventKind.RETIRE} <= kinds

    def test_bypass_events_present_with_level_and_case(self, run):
        stats, bus, _ = run
        bypasses = [e for e in bus.events if e.kind is EventKind.BYPASS]
        assert len(bypasses) == stats.bypassed_sources
        for event in bypasses:
            assert event.args["level"] in (1, 2, 3)
            assert event.args["case"] in (
                "TC_TO_TC", "TC_TO_RB", "RB_TO_RB", "RB_TO_TC"
            )
            assert event.args["producer_seq"] < event.seq

    def test_sink_meta(self, run):
        stats, _, sink = run
        assert sink.meta["machine"] == stats.machine
        assert sink.meta["ipc"] == stats.ipc

    def test_no_bus_no_events_attribute_change(self):
        program = assemble(TINY, "tiny")
        stats = Machine(rb_full(4)).run(program)
        assert stats.instructions > 0  # plain runs stay unaffected


class TestDeterminism:
    def test_identical_runs_identical_streams(self):
        program = assemble(TINY, "tiny")
        _, bus_a, _ = _run_with_bus(rb_limited(4), program)
        _, bus_b, _ = _run_with_bus(rb_limited(4), program)
        assert bus_a.events == bus_b.events

    def test_kernel_runs_deterministic(self):
        program = build("li")
        _, bus_a, _ = _run_with_bus(ideal(4), program)
        _, bus_b, _ = _run_with_bus(ideal(4), program)
        assert bus_a.events == bus_b.events


class TestBoundedBuffer:
    def test_capacity_keeps_newest_and_counts_dropped(self):
        bus = EventBus(capacity=10)
        for cycle in range(35):
            bus.emit(TraceEvent(cycle, EventKind.FETCH, cycle, "nop"))
        bus.close()
        assert len(bus.events) == 10
        assert [e.cycle for e in bus.events] == list(range(25, 35))
        assert bus.dropped == 25
        assert bus.meta["dropped_events"] == 25

    def test_unbounded_by_default(self):
        bus = EventBus()
        for cycle in range(1000):
            bus.emit(TraceEvent(cycle, EventKind.FETCH, cycle, "nop"))
        bus.close()
        assert len(bus.events) == 1000
        assert bus.dropped == 0
        assert "dropped_events" not in bus.meta

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)

    def test_bounded_real_run_keeps_tail_of_stream(self):
        program = assemble(TINY, "tiny")
        sink = CollectorSink()
        bus = EventBus([sink], capacity=8)
        stats = Machine(rb_full(4)).run(program, bus=bus)
        assert stats.instructions > 0
        assert len(bus.events) <= 8
        # the newest events survive: the last retire is always present
        assert any(e.kind is EventKind.RETIRE for e in bus.events)


class TestIPCFromRetireEvents:
    """Acceptance: trace-derived IPC equals SimStats.ipc exactly for all
    four machine models on three kernels."""

    @pytest.mark.parametrize("preset", [baseline, rb_limited, rb_full, ideal])
    @pytest.mark.parametrize("kernel", ["ijpeg", "li", "compress"])
    def test_ipc_exact(self, preset, kernel):
        stats, bus, _ = _run_with_bus(preset(4), build(kernel))
        assert ipc_from_events(bus.events) == stats.ipc

    def test_empty_stream(self):
        assert ipc_from_events([]) == 0.0

    def test_retire_free_stream_warns_and_returns_zero(self, caplog):
        events = [TraceEvent(0, EventKind.FETCH, 0, "nop"),
                  TraceEvent(5, EventKind.STALL, -1, args={"cause": "frontend-empty"})]
        with caplog.at_level("WARNING", logger="repro.obs.events"):
            assert ipc_from_events(events) == 0.0
        assert any("no retire events" in rec.message for rec in caplog.records)
