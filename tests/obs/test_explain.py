"""Tests for stall attribution and CPI stacks (``repro.obs.explain``).

The cross-machine invariants here are the PR's acceptance criteria: on
every paper machine model the per-cause components sum *exactly* to the
cycle count, the RB-limited machine (deleted BYP-2, Fig. 8 holes) shows
a nonzero ``bypass-hole`` component, and the full-network machines show
none.
"""

import pytest

from repro.core.machine import Machine
from repro.core.presets import baseline, ideal, rb_full, rb_limited
from repro.obs.events import EventBus, EventKind
from repro.obs.explain import (
    CPI_STACK_METRIC,
    CPIStack,
    Explanation,
    StallCause,
    classify_operand_wait,
    cpi_stack_from_events,
    explanations_to_json,
    render_explanations_markdown,
    render_explanations_text,
)
from repro.obs.sinks import CollectorSink
from repro.workloads.suite import build

KERNELS = ["li", "ijpeg", "compress"]
PRESETS = {
    "baseline": baseline,
    "rb-limited": rb_limited,
    "rb-full": rb_full,
    "ideal": ideal,
}


@pytest.fixture(scope="module")
def runs():
    """One (stats, events) pair per (preset, kernel); simulate once."""
    out = {}
    for name, preset in PRESETS.items():
        for kernel in KERNELS:
            sink = CollectorSink()
            bus = EventBus([sink])
            stats = Machine(preset(4)).run(build(kernel), bus=bus)
            out[(name, kernel)] = (stats, sink.events)
    return out


class TestClassifyOperandWait:
    class _Producer:
        def __init__(self, select_cycle=0, lat_rb=1, lat_tc=2,
                     produces_rb=True, is_load=False):
            self.select_cycle = select_cycle
            self.lat_rb = lat_rb
            self.lat_tc = lat_tc
            self.produces_rb = produces_rb

            class spec:
                pass

            spec.is_load = is_load

            class instr:
                pass

            instr.spec = spec
            self.instr = instr

    def test_blocked_past_compute_is_a_hole(self):
        producer = self._Producer(lat_rb=1, lat_tc=2)
        assert classify_operand_wait(producer, False, 2) is StallCause.BYPASS_HOLE

    def test_blocked_before_compute_is_the_pipeline(self):
        producer = self._Producer(lat_rb=2, lat_tc=2, produces_rb=False)
        assert classify_operand_wait(producer, True, 1) is StallCause.ADDER_PIPELINE

    def test_tc_consumer_in_converter_window(self):
        producer = self._Producer(lat_rb=1, lat_tc=3)
        assert classify_operand_wait(producer, True, 1) is StallCause.CONVERSION_LATENCY

    def test_load_producer_wins_before_compute(self):
        producer = self._Producer(lat_rb=3, lat_tc=3, produces_rb=False, is_load=True)
        assert classify_operand_wait(producer, False, 1) is StallCause.LOAD_LATENCY

    def test_unselected_producer_inherits_cause(self):
        producer = self._Producer(select_cycle=None)
        producer.stall_cause = StallCause.BYPASS_HOLE
        assert classify_operand_wait(producer, False, 0) is StallCause.BYPASS_HOLE


class TestCPIStackInvariants:
    @pytest.mark.parametrize("machine", list(PRESETS))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_components_sum_exactly_to_cycles(self, runs, machine, kernel):
        stats, _ = runs[(machine, kernel)]
        stack = stats.cpi_stack()
        stack.validate()
        assert sum(stack.components.values()) == stats.cycles
        # BASE counts *cycles* with at least one retire, so on a 4-wide
        # machine it is bounded by (never equal to) the instruction count.
        assert 0 < stack.cycles_for(StallCause.BASE) <= stats.instructions

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_rb_limited_has_bypass_holes(self, runs, kernel):
        stats, _ = runs[("rb-limited", kernel)]
        stack = stats.cpi_stack()
        assert stack.cycles_for(StallCause.BYPASS_HOLE) > 0

    @pytest.mark.parametrize("machine", ["baseline", "rb-full", "ideal"])
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_full_networks_have_no_bypass_holes(self, runs, machine, kernel):
        stats, _ = runs[(machine, kernel)]
        stack = stats.cpi_stack()
        assert stack.cycles_for(StallCause.BYPASS_HOLE) == 0

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_ideal_has_no_conversion_component(self, runs, kernel):
        stats, _ = runs[("ideal", kernel)]
        stack = stats.cpi_stack()
        assert stack.cycles_for(StallCause.CONVERSION_LATENCY) == 0

    @pytest.mark.parametrize("machine", list(PRESETS))
    def test_events_reproduce_the_stack_exactly(self, runs, machine):
        stats, events = runs[(machine, "li")]
        from_stats = stats.cpi_stack()
        from_events = cpi_stack_from_events(events, stats.machine, stats.workload)
        assert from_events.cycles == from_stats.cycles
        assert from_events.instructions == from_stats.instructions
        assert from_events.components == from_stats.components

    def test_one_stall_event_per_non_retiring_cycle(self, runs):
        stats, events = runs[("rb-limited", "compress")]
        stalls = [e for e in events
                  if e.kind is EventKind.STALL and "unit" not in (e.args or {})]
        retiring = {e.cycle for e in events if e.kind is EventKind.RETIRE}
        assert len(stalls) == stats.cycles - len(retiring)
        assert all(e.cycle not in retiring for e in stalls)


class TestCPIStackObject:
    def _stack(self):
        return CPIStack(
            machine="m", workload="w", cycles=10, instructions=4,
            components={StallCause.BASE: 4, StallCause.LOAD_LATENCY: 6},
        )

    def test_accessors(self):
        stack = self._stack()
        assert stack.total_cpi == 2.5
        assert stack.cpi(StallCause.LOAD_LATENCY) == 1.5
        assert stack.fraction(StallCause.BASE) == 0.4
        assert stack.cycles_for(StallCause.BYPASS_HOLE) == 0

    def test_validate_rejects_leaky_accounting(self):
        stack = self._stack()
        stack.components[StallCause.BASE] = 3
        with pytest.raises(ValueError, match="accounts for"):
            stack.validate()

    def test_as_dict_lists_every_cause(self):
        entry = self._stack().as_dict()
        assert set(entry["components"]) == {c.value for c in StallCause}
        assert entry["components"]["load-latency"]["cycles"] == 6

    def test_from_stats_round_trip(self, runs):
        stats, _ = runs[("baseline", "li")]
        stack = CPIStack.from_stats(stats)
        assert stack == stats.cpi_stack()
        assert stats.metrics.distribution(CPI_STACK_METRIC).total == stats.cycles


class TestRendering:
    @pytest.fixture()
    def explanations(self, runs):
        out = []
        for machine in ("baseline", "rb-limited"):
            stats, _ = runs[(machine, "li")]
            stack = stats.cpi_stack()
            out.append(Explanation(
                machine=stats.machine, workload=stats.workload,
                cycles=stats.cycles, instructions=stats.instructions,
                ipc=stats.ipc, stack=stack,
            ))
        return out

    def test_json_shape(self, explanations):
        doc = explanations_to_json(explanations)
        assert doc["report"] == "repro-explain"
        assert doc["version"] == 1
        assert len(doc["machines"]) == 2
        assert "cpi_stack" in doc["machines"][0]

    def test_text_report_names_every_machine(self, explanations):
        text = render_explanations_text(explanations)
        for e in explanations:
            assert e.machine in text
        assert "total CPI" in text

    def test_markdown_report_is_a_table(self, explanations):
        md = render_explanations_markdown(explanations)
        assert md.startswith("## CPI stacks:")
        assert "| **total CPI** |" in md

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_explanations_text([])
