"""Tests for the trace sinks: ring buffer, JSONL round-trip, Chrome
trace structure + validator, and the trace-driven pipeline viewer
matching the DynInstr-driven golden rendering."""

import json

import pytest

from repro.core.machine import Machine
from repro.core.presets import rb_full, rb_limited
from repro.harness.pipeview import pipeline_diagram, pipeline_diagram_from_events
from repro.isa.assembler import assemble
from repro.obs.events import EventBus, EventKind, TraceEvent
from repro.obs.sinks import (
    ChromeTraceSink,
    CollectorSink,
    JSONLSink,
    RingBufferSink,
    read_jsonl,
    validate_chrome_trace,
)

FIGURE4 = """
    .text
main:
    lda r1, 3(zero)
    lda r2, 5(zero)
    sll r1, #2, r3
    and r3, #15, r4
    add r3, r2, r5
    sub r5, r3, r6
    halt
"""


@pytest.fixture(scope="module")
def traced_run():
    program = assemble(FIGURE4, "figure4")
    collector = CollectorSink()
    bus = EventBus([collector])
    stats = Machine(rb_full(4)).run(program, bus=bus, record_trace=True)
    return stats, bus.events


class TestRingBufferSink:
    def test_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        sink.begin({})
        for cycle in range(10):
            sink.event(TraceEvent(cycle, EventKind.RETIRE, cycle))
        sink.finish()
        assert [e.cycle for e in sink.events] == [7, 8, 9]
        assert sink.dropped == 7

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)


class TestJSONLSink:
    def test_round_trip(self, tmp_path, traced_run):
        stats, events = traced_run
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(path)
        sink.begin({"machine": stats.machine, "workload": stats.workload})
        for event in events:
            sink.event(event)
        sink.finish()

        meta, reloaded = read_jsonl(path)
        assert meta["machine"] == stats.machine
        assert reloaded == list(events)

    def test_via_bus(self, tmp_path):
        path = tmp_path / "bus.jsonl"
        bus = EventBus([JSONLSink(path)])
        program = assemble(FIGURE4, "figure4")
        stats = Machine(rb_limited(4)).run(program, bus=bus)
        meta, events = read_jsonl(path)
        assert meta["cycles"] == stats.cycles
        assert len([e for e in events if e.kind is EventKind.RETIRE]) == stats.instructions


class TestChromeTraceSink:
    def test_writes_valid_trace(self, tmp_path, traced_run):
        _, events = traced_run
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path)
        sink.begin({"machine": "M", "workload": "W"})
        for event in events:
            sink.event(event)
        sink.finish()

        total, retires = validate_chrome_trace(path)
        assert retires == len([e for e in events if e.kind is EventKind.RETIRE])
        document = json.loads(path.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert {"select", "execute", "retire", "process_name"} <= names
        assert document["otherData"]["machine"] == "M"

    def test_lanes_bound_tids(self, tmp_path, traced_run):
        _, events = traced_run
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path, lanes=4)
        sink.begin({})
        for event in events:
            sink.event(event)
        sink.finish()
        document = json.loads(path.read_text())
        assert all(e["tid"] < 4 for e in document["traceEvents"])

    def test_bad_lanes(self, tmp_path):
        with pytest.raises(ValueError):
            ChromeTraceSink(tmp_path / "x.json", lanes=0)


class TestChromeValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_empty_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "Q", "ts": 0, "pid": 0, "tid": 0},
            ]})

    def test_rejects_missing_dur(self):
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"name": "retire", "ph": "i", "ts": 0, "pid": 0, "tid": 0, "s": "t"},
                {"name": "execute", "ph": "X", "ts": 1, "pid": 0, "tid": 0},
            ]})

    def test_rejects_pipeline_trace_without_retires(self):
        with pytest.raises(ValueError, match="retire"):
            validate_chrome_trace({"traceEvents": [
                {"name": "execute", "cat": "pipeline", "ph": "X",
                 "ts": 0, "dur": 1, "pid": 0, "tid": 0},
            ]})

    def test_accepts_span_only_trace(self):
        total, retires = validate_chrome_trace({"traceEvents": [
            {"name": "serve.request", "cat": "trace", "ph": "X",
             "ts": 0, "dur": 10, "pid": 0, "tid": 0},
        ]})
        assert (total, retires) == (1, 0)


class TestTraceDrivenPipeview:
    """The event stream is the source of truth: rendering from events
    must match the golden DynInstr-trace rendering exactly."""

    def test_matches_golden_rendering(self, traced_run):
        stats, events = traced_run
        golden = pipeline_diagram(stats.trace)
        assert pipeline_diagram_from_events(events) == golden
        assert "SCH" in golden and "EXE" in golden and "CV" in golden

    def test_matches_with_window_and_frontend(self, traced_run):
        stats, events = traced_run
        golden = pipeline_diagram(stats.trace, first=1, count=3,
                                  include_frontend=True)
        rendered = pipeline_diagram_from_events(events, first=1, count=3,
                                                include_frontend=True)
        assert rendered == golden

    def test_kernel_scale_equivalence(self):
        from repro.workloads.suite import build
        collector = CollectorSink()
        bus = EventBus([collector])
        stats = Machine(rb_limited(4)).run(build("ijpeg"), bus=bus, record_trace=True)
        golden = pipeline_diagram(stats.trace, first=40, count=12)
        assert pipeline_diagram_from_events(collector.events, first=40, count=12) == golden
