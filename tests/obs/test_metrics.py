"""Tests for the metrics registry: counters, histograms, time-series,
registry-level serialization, and enum-keyed distribution round-trips."""

import enum
import json

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    counter_property,
)


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestHistogram:
    def test_record_and_stats(self):
        h = Histogram("levels")
        h.record(1, 3)
        h.record(2)
        h.record(5)
        assert h.total == 5
        assert h.counts == {1: 3, 2: 1, 5: 1}
        assert h.min == 1 and h.max == 5
        assert h.mean() == pytest.approx((3 + 2 + 5) / 5)
        assert h.fraction(1) == pytest.approx(0.6)

    def test_empty(self):
        h = Histogram("e")
        assert h.mean() == 0.0
        assert h.fraction(3) == 0.0

    def test_round_trip(self):
        h = Histogram("levels")
        h.record(1, 2)
        h.record(7)
        reloaded = Histogram("levels")
        reloaded.load(json.loads(json.dumps(h.as_dict())))
        assert reloaded.counts == h.counts
        assert reloaded.total == h.total
        assert (reloaded.min, reloaded.max) == (h.min, h.max)

    def test_quantile_nearest_rank(self):
        h = Histogram("lat")
        for value in (1, 1, 2, 3, 10):
            h.record(value)
        # nearest-rank over 5 observations: ranks 1-5 map to 1,1,2,3,10
        assert h.quantile(0.0) == 1
        assert h.quantile(0.5) == 2
        assert h.quantile(0.6) == 2
        assert h.quantile(0.8) == 3
        assert h.quantile(0.95) == 10
        assert h.quantile(1.0) == 10

    def test_quantile_respects_counts(self):
        h = Histogram("lv")
        h.record(1, 99)
        h.record(50)
        assert h.quantile(0.5) == 1
        assert h.quantile(0.99) == 1
        assert h.quantile(1.0) == 50

    def test_quantile_empty_is_none(self):
        assert Histogram("e").quantile(0.5) is None

    def test_quantile_out_of_range_rejected(self):
        h = Histogram("lv")
        h.record(1)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestTimeSeries:
    def test_exact_mean_with_sparse_samples(self):
        ts = TimeSeries("occ", stride=10)
        for cycle in range(100):
            ts.record(cycle, cycle)
        assert ts.count == 100
        assert ts.mean() == pytest.approx(49.5)  # exact over all cycles
        assert ts.samples == [0, 10, 20, 30, 40, 50, 60, 70, 80, 90]

    def test_decimation_bounds_memory(self):
        ts = TimeSeries("occ", stride=1, max_samples=8)
        for cycle in range(100):
            ts.record(cycle, cycle)
        assert len(ts.samples) <= 8
        assert ts.stride > 1
        assert ts.count == 100  # running totals stay exact

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries("x", stride=0)

    @pytest.mark.parametrize("start,stop", [(0, 100), (3, 97), (64, 65), (7, 7), (9, 8)])
    def test_record_run_matches_per_cycle_loop(self, start, stop):
        """record_run is the cycle-skipper's bulk path; state must be identical."""
        bulk = TimeSeries("occ", stride=10)
        loop = TimeSeries("occ", stride=10)
        bulk.record_run(start, stop, 5)
        for cycle in range(start, stop):
            loop.record(cycle, 5)
        assert bulk.count == loop.count
        assert bulk.total == loop.total
        assert bulk.samples == loop.samples
        assert bulk.stride == loop.stride

    def test_record_run_decimates_like_the_loop(self):
        """Mid-run stride doubling must land at the same point in both paths."""
        bulk = TimeSeries("occ", stride=1, max_samples=8)
        loop = TimeSeries("occ", stride=1, max_samples=8)
        bulk.record_run(0, 50, 3)
        for cycle in range(50):
            loop.record(cycle, 3)
        assert bulk.samples == loop.samples
        assert bulk.stride == loop.stride
        assert bulk.count == loop.count

    def test_record_run_interleaves_with_record(self):
        bulk = TimeSeries("occ", stride=4)
        loop = TimeSeries("occ", stride=4)
        for ts in (bulk, loop):
            ts.record(0, 2)
            ts.record(1, 2)
        bulk.record_run(2, 30, 7)
        for cycle in range(2, 30):
            loop.record(cycle, 7)
        bulk.record(30, 1)
        loop.record(30, 1)
        assert bulk.as_dict() == loop.as_dict()


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.timeseries("t") is reg.timeseries("t")
        assert reg.distribution("d") is reg.distribution("d")
        assert "a" in reg and "z" not in reg
        assert reg.names() == ["a", "d", "h", "t"]

    def test_serialization_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.histogram("lv").record(2, 4)
        reg.timeseries("occ", stride=1).record(0, 7)
        reg.distribution("cases", keys=Color).record(Color.RED, 9)

        snapshot = json.loads(json.dumps(reg.as_dict()))
        reloaded = MetricsRegistry()
        reloaded.distribution("cases", keys=Color)  # pre-register the key type
        reloaded.load(snapshot)
        assert reloaded.counter("hits").value == 3
        assert reloaded.histogram("lv").counts == {2: 4}
        assert reloaded.timeseries("occ").total == 7
        assert reloaded.distribution("cases").count(Color.RED) == 9

    def test_unknown_distribution_keeps_string_keys(self):
        reg = MetricsRegistry()
        reg.distribution("cases", keys=Color).record(Color.BLUE, 2)
        reloaded = MetricsRegistry()
        reloaded.load(reg.as_dict())
        assert reloaded.distribution("cases").count("BLUE") == 2

    def test_counter_property_reads_and_writes_the_registry(self):
        class Unit:
            metrics = None  # set per instance
            hits = counter_property("unit.{self.name}.hits")

            def __init__(self, name, metrics):
                self.name = name
                self.metrics = metrics

        reg = MetricsRegistry()
        a, b = Unit("a", reg), Unit("b", reg)
        a.hits += 3
        b.hits = 7
        assert a.hits == 3 and b.hits == 7
        assert reg.counter("unit.a.hits").value == 3
        assert reg.counter("unit.b.hits").value == 7
        # class-level access returns the descriptor itself
        assert isinstance(Unit.hits, counter_property)

    def test_counter_property_serializes_through_the_registry(self):
        class Unit:
            total = counter_property("unit.{self.name}.total")

            def __init__(self, name, metrics):
                self.name = name
                self.metrics = metrics

        reg = MetricsRegistry()
        Unit("x", reg).total = 5
        snapshot = json.loads(json.dumps(reg.as_dict()))
        reloaded = MetricsRegistry()
        reloaded.load(snapshot)
        assert reloaded.counter("unit.x.total").value == 5

    def test_merge(self):
        a = MetricsRegistry()
        a.counter("n").inc(1)
        a.distribution("cases", keys=Color).record(Color.RED)
        b = MetricsRegistry()
        b.counter("n").inc(2)
        b.distribution("cases", keys=Color).record(Color.RED, 4)
        a.merge(b)
        assert a.counter("n").value == 3
        assert a.distribution("cases").count(Color.RED) == 5


class TestPrometheusQuantiles:
    def test_histogram_exports_summary_quantiles(self):
        from repro.obs.metrics import prometheus_text

        reg = MetricsRegistry()
        h = reg.histogram("bypass.source_level")
        for value in (1, 1, 2, 3, 10):
            h.record(value)
        text = prometheus_text({"runner": reg})
        assert "# TYPE repro_bypass_source_level summary" in text
        assert 'repro_bypass_source_level{registry="runner",quantile="0.5"} 2' in text
        assert 'repro_bypass_source_level{registry="runner",quantile="0.95"} 10' in text
        assert 'repro_bypass_source_level{registry="runner",quantile="0.99"} 10' in text
        assert 'repro_bypass_source_level_count{registry="runner"} 5' in text

    def test_empty_histogram_omits_quantile_lines(self):
        from repro.obs.metrics import prometheus_text

        reg = MetricsRegistry()
        reg.histogram("lv")  # registered but never recorded
        text = prometheus_text({"runner": reg})
        assert "quantile=" not in text
        assert 'repro_lv_count{registry="runner"} 0' in text
