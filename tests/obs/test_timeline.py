"""Interval-timeline tests: row algebra, sampler invariants, cycle-skip
bit-identity, decimation, phase segmentation, run diffing, and the
versioned export."""

import json
from pathlib import Path

import pytest

from repro.core.machine import Machine
from repro.core.presets import baseline, ideal, rb_limited
from repro.obs.timeline import (
    DEFAULT_STRIDE,
    TIMELINE_VERSION,
    IntervalSampler,
    Timeline,
    TimelineRow,
    export_timeline,
    render_timeline_text,
    segment_phases,
    timeline_diff,
)
from repro.obs.validate import validate_json_schema
from repro.verify.fuzz import fuzz_program
from repro.workloads.suite import build

SCHEMA = json.loads(
    (Path(__file__).resolve().parents[2] / "schemas" / "timeline.schema.json")
    .read_text()
)


def row(cycle_end, cycles, instructions, retired, **overrides) -> TimelineRow:
    fields = dict(
        cycle_end=cycle_end, cycles=cycles, instructions=instructions,
        retired_total=retired, rob_occupancy=8, fetch_occupancy=4,
        sched_occupancy=2,
    )
    fields.update(overrides)
    return TimelineRow(**fields)


class TestTimelineRow:
    def test_round_trip(self):
        original = row(255, 256, 100, 100,
                       stalls={"BASE": 200, "ADDER_PIPELINE": 56},
                       bypass_levels={"1": 30}, conversions=4, contended=7)
        assert TimelineRow.from_dict(original.to_dict()) == original

    def test_merge_adds_deltas_and_keeps_later_levels(self):
        first = row(255, 256, 100, 100, stalls={"BASE": 200}, rob_occupancy=12)
        second = row(511, 256, 50, 150, stalls={"BASE": 100, "MEM": 10},
                     rob_occupancy=3, conversions=2)
        merged = first.merge(second)
        assert merged.cycle_end == 511
        assert merged.cycles == 512
        assert merged.instructions == 150
        assert merged.retired_total == 150          # later boundary's total
        assert merged.rob_occupancy == 3            # point-in-time from later
        assert merged.stalls == {"BASE": 300, "MEM": 10}
        assert merged.conversions == 2
        assert merged.ipc == pytest.approx(150 / 512)


def fake_sampler(stride=16, max_rows=4) -> IntervalSampler:
    """A sampler over inert fake state: captures empty-delta rows."""
    from types import SimpleNamespace

    stats = SimpleNamespace(
        machine="Fake", workload="fake",
        instructions=0, bypassed_sources=0,
        stall_causes=SimpleNamespace(as_dict=lambda: {}),
        bypass_cases=SimpleNamespace(as_dict=lambda: {}),
        metrics=SimpleNamespace(peek_histogram=lambda name: None),
    )
    return IntervalSampler(
        stats, rob=SimpleNamespace(occupancy=0), fetch_queue=[],
        schedulers=(), stride=stride, max_rows=max_rows,
    )


class TestSamplerValidation:
    def test_bad_stride_rejected(self):
        machine = Machine(rb_limited(4))
        program = build("li")
        with pytest.raises(ValueError, match="stride"):
            machine.run(program, timeline_stride=0)

    def test_odd_max_rows_rejected(self):
        with pytest.raises(ValueError, match="even"):
            fake_sampler(max_rows=7)

    def test_capture_guard_ignores_stale_cycles(self):
        sampler = fake_sampler(stride=16, max_rows=8)
        sampler.capture(15)
        sampler.capture(15)  # replay of the same boundary is a no-op
        sampler.capture(10)  # and so is an earlier cycle
        assert [r.cycle_end for r in sampler.rows] == [15]
        assert sampler.next_capture == 31

    def test_decimation_merges_pairs_and_doubles_stride(self):
        sampler = fake_sampler(stride=16, max_rows=4)
        for cycle in (15, 31, 47, 63):
            sampler.capture(cycle)
        # hitting max_rows halves the row list and doubles the stride
        assert [r.cycle_end for r in sampler.rows] == [31, 63]
        assert [r.cycles for r in sampler.rows] == [32, 32]
        assert sampler.stride == 32
        assert sampler.next_capture == 95


class TestMachineIntegration:
    def test_rows_partition_the_run(self):
        stats = Machine(rb_limited(4)).run(build("ijpeg"))
        timeline = stats.timeline
        assert timeline.machine == "RB-limited-4w"
        assert timeline.workload == "ijpeg"
        assert timeline.stride == DEFAULT_STRIDE
        # rows tile [0, cycles) exactly: cycle coverage and instruction
        # deltas both sum to the run totals
        assert sum(r.cycles for r in timeline.rows) == timeline.cycles == stats.cycles
        assert timeline.rows[-1].retired_total == stats.instructions
        assert sum(r.instructions for r in timeline.rows) == stats.instructions
        previous_end = -1
        for r in timeline.rows:
            assert r.cycle_end - r.cycles == previous_end
            previous_end = r.cycle_end
        # stall deltas per row sum to the row's cycles (CPI conservation
        # holds interval-by-interval, not just at the end)
        for r in timeline.rows:
            assert sum(r.stalls.values()) == r.cycles

    def test_skip_and_no_skip_timelines_are_bit_identical(self):
        program = build("ijpeg")
        skipped = Machine(baseline(4)).run(program, cycle_skip=True)
        walked = Machine(baseline(4)).run(program, cycle_skip=False)
        assert skipped.timeline.to_dict() == walked.timeline.to_dict()

    def test_timeline_off_leaves_no_attribute(self):
        stats = Machine(rb_limited(4)).run(build("li"), timeline=False)
        assert getattr(stats, "timeline", None) is None

    def test_timeline_does_not_change_stats(self):
        program = build("li")
        with_timeline = Machine(rb_limited(4)).run(program, timeline=True)
        without = Machine(rb_limited(4)).run(program, timeline=False)
        assert with_timeline.to_dict() == without.to_dict()

    def test_sink_sees_every_row_in_order(self):
        seen = []
        stats = Machine(rb_limited(4)).run(
            build("li"), timeline_sink=seen.append
        )
        # finalize() captures the trailing partial after the loop ends,
        # so the sink sees every full-stride row; the timeline may carry
        # one more (the tail).
        assert [r.cycle_end for r in seen] == [
            r.cycle_end for r in stats.timeline.rows[:len(seen)]
        ]
        assert len(stats.timeline.rows) - len(seen) <= 1

    def test_decimation_bounds_rows_and_stays_skip_identical(self):
        program = build("ijpeg")
        kwargs = dict(timeline_stride=16)
        skipped = Machine(baseline(4)).run(program, cycle_skip=True, **kwargs)
        walked = Machine(baseline(4)).run(program, cycle_skip=False, **kwargs)
        assert skipped.timeline.to_dict() == walked.timeline.to_dict()



class TestPhases:
    def test_constant_series_is_one_phase(self):
        rows = [row(i * 10 + 9, 10, 20, (i + 1) * 20) for i in range(20)]
        phases = segment_phases(rows)
        assert len(phases) == 1
        assert phases[0].start_row == 0 and phases[0].end_row == 20
        assert phases[0].ipc == pytest.approx(2.0)

    def test_step_change_is_found_exactly(self):
        low = [row(i * 10 + 9, 10, 5, (i + 1) * 5) for i in range(10)]
        high = [
            row(100 + i * 10 + 9, 10, 30, 50 + (i + 1) * 30) for i in range(10)
        ]
        phases = segment_phases(low + high)
        assert [
            (phase.start_row, phase.end_row) for phase in phases
        ] == [(0, 10), (10, 20)]
        assert phases[0].ipc == pytest.approx(0.5)
        assert phases[1].ipc == pytest.approx(3.0)

    def test_min_rows_respected(self):
        rows = [row(i * 10 + 9, 10, (i % 2) * 10, 0) for i in range(4)]
        for phase in segment_phases(rows, min_rows=3):
            assert phase.end_row - phase.start_row >= 3

    def test_dominant_stall(self):
        rows = [
            row(9, 10, 5, 5, stalls={"BASE": 4, "MEM": 6}),
            row(19, 10, 5, 10, stalls={"BASE": 8, "ADDER_PIPELINE": 2}),
        ]
        (phase,) = segment_phases(rows)
        assert phase.dominant_stall == "MEM"  # heaviest non-BASE

    def test_empty(self):
        assert segment_phases([]) == []


class TestDiff:
    def test_workload_mismatch_raises(self):
        a = Timeline("A", "ijpeg", 256, 100, 100, [row(99, 100, 100, 100)])
        b = Timeline("B", "li", 256, 100, 100, [row(99, 100, 100, 100)])
        with pytest.raises(ValueError, match="different workloads"):
            timeline_diff(a, b)

    def test_identical_runs_do_not_diverge(self):
        stats = Machine(rb_limited(4)).run(build("li"))
        diff = timeline_diff(stats.timeline, stats.timeline)
        assert diff.summary["first_divergence_instruction"] is None
        assert diff.summary["cycle_ratio"] == pytest.approx(1.0)
        assert all(not bucket["diverged"] for bucket in diff.buckets)

    def test_faster_machine_shows_in_ratio(self):
        program = build("ijpeg")
        slow = Machine(baseline(4)).run(program)
        fast = Machine(rb_limited(4)).run(program)
        diff = timeline_diff(slow.timeline, fast.timeline)
        assert diff.aligned_instructions == min(
            slow.instructions, fast.instructions
        )
        assert diff.summary["cycle_ratio"] < 1.0
        assert diff.summary["first_divergence_instruction"] is not None
        text = diff.describe()
        assert "Baseline-4w (A)" in text and "RB-limited-4w (B)" in text

    def test_diff_document_shape(self):
        stats = Machine(rb_limited(4)).run(build("li"))
        payload = timeline_diff(stats.timeline, stats.timeline).to_dict()
        assert set(payload) == {
            "workload", "a_machine", "b_machine", "aligned_instructions",
            "buckets", "phases", "summary",
        }


class TestExport:
    def test_export_matches_schema(self):
        stats = Machine(rb_limited(4)).run(build("ijpeg"))
        document = export_timeline(stats.timeline)
        validate_json_schema(document, SCHEMA)
        assert document["version"] == TIMELINE_VERSION
        assert document["phases"]

    def test_timeline_round_trip(self):
        stats = Machine(rb_limited(4)).run(build("li"))
        timeline = stats.timeline
        assert Timeline.from_dict(timeline.to_dict()).to_dict() == timeline.to_dict()

    def test_render_text(self):
        stats = Machine(rb_limited(4)).run(build("li"))
        text = render_timeline_text(stats.timeline)
        assert "RB-limited-4w on li" in text
        assert "phase" in text or "phases" in text
        assert "IPC" in text

    def test_export_is_deterministic(self):
        a = export_timeline(Machine(rb_limited(4)).run(build("li")).timeline)
        b = export_timeline(Machine(rb_limited(4)).run(build("li")).timeline)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestFuzzedSkipIdentity:
    @pytest.mark.parametrize("profile,seed", [("mixed", 3), ("branchy", 5)])
    def test_fuzzed_kernels_stay_identical(self, profile, seed):
        program = fuzz_program(profile, seed)
        for config in (rb_limited(4), ideal(4)):
            skipped = Machine(config).run(
                program, cycle_skip=True, timeline_stride=32
            )
            walked = Machine(config).run(
                program, cycle_skip=False, timeline_stride=32
            )
            assert skipped.timeline.to_dict() == walked.timeline.to_dict()
