"""Tests for logging setup and the host-side profiling artifacts."""

import io
import json
import logging

from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import BENCH_VERSION, BenchLog, RunProfile


class TestLogging:
    def test_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("repro.core.machine").name == "repro.core.machine"
        assert get_logger("harness").name == "repro.harness"

    def test_levels(self):
        logger = setup_logging(0)
        assert logger.level == logging.WARNING
        assert setup_logging(1).level == logging.INFO
        assert setup_logging(2).level == logging.DEBUG
        assert setup_logging(9).level == logging.DEBUG

    def test_idempotent_handler(self):
        setup_logging(1)
        logger = setup_logging(1)
        ours = [h for h in logger.handlers if getattr(h, "_repro_handler", False)]
        assert len(ours) == 1

    def test_output_goes_to_stream(self):
        stream = io.StringIO()
        setup_logging(1, stream=stream)
        get_logger("test").info("hello from the harness")
        assert "hello from the harness" in stream.getvalue()
        setup_logging(0)  # restore default level for other tests

    def test_json_lines_round_trip(self):
        stream = io.StringIO()
        setup_logging(1, stream=stream, json_lines=True)
        get_logger("harness.runner").info("simulated %d pairs", 8)
        get_logger("serve").warning("health -> %s", "degraded")
        lines = stream.getvalue().strip().splitlines()
        entries = [json.loads(line) for line in lines]  # every line parses
        assert entries[0]["message"] == "simulated 8 pairs"
        assert entries[0]["logger"] == "repro.harness.runner"
        assert entries[0]["level"] == "INFO"
        assert isinstance(entries[0]["ts"], float)
        assert entries[1] == {
            "ts": entries[1]["ts"], "level": "WARNING",
            "logger": "repro.serve", "message": "health -> degraded",
        }
        setup_logging(0)

    def test_json_exceptions_embedded(self):
        stream = io.StringIO()
        setup_logging(1, stream=stream, json_lines=True)
        try:
            raise ValueError("bad span")
        except ValueError:
            get_logger("test").exception("span validation failed")
        entry = json.loads(stream.getvalue().strip().splitlines()[-1])
        assert entry["level"] == "ERROR"
        assert "ValueError: bad span" in entry["exc"]
        setup_logging(0)

    def test_json_toggle_is_reversible(self):
        stream = io.StringIO()
        setup_logging(1, stream=stream, json_lines=True)
        setup_logging(1, stream=stream, json_lines=False)
        get_logger("test").info("plain again")
        tail = stream.getvalue().strip().splitlines()[-1]
        assert "plain again" in tail
        with io.StringIO(tail) as check:
            import pytest
            with pytest.raises(json.JSONDecodeError):
                json.loads(check.read())
        logger = setup_logging(0)
        ours = [h for h in logger.handlers if getattr(h, "_repro_handler", False)]
        assert len(ours) == 1  # toggling reused the one handler


class TestRunProfile:
    def test_measure_rates(self):
        profile = RunProfile.measure("M", "W", wall_seconds=2.0,
                                     cycles=1000, instructions=500)
        assert profile.sim_instr_per_sec == 250.0
        assert profile.sim_cycles_per_sec == 500.0

    def test_zero_wall_does_not_divide_by_zero(self):
        profile = RunProfile.measure("M", "W", 0.0, cycles=10, instructions=10)
        assert profile.sim_instr_per_sec > 0


class TestBenchLog:
    def test_write_and_reload(self, tmp_path):
        path = tmp_path / "BENCH_obs.json"
        bench = BenchLog(path)
        bench.record(RunProfile.measure("M", "W", 1.0, 100, 50))
        metrics = MetricsRegistry()
        metrics.counter("cache.hits").inc(2)
        metrics.counter("cache.misses").inc(1)
        bench.save(cache_metrics=metrics)

        payload = json.loads(path.read_text())
        assert payload["version"] == BENCH_VERSION
        assert payload["runs"][0]["machine"] == "M"
        assert payload["cache"] == {
            "cache.hits": 2, "cache.misses": 1, "cache.invalidations": 0,
        }
        assert "python" in payload["host"]

        # a second log appends to the existing history
        bench2 = BenchLog(path)
        assert len(bench2.runs) == 1
        bench2.record(RunProfile.measure("M", "W2", 1.0, 100, 70))
        bench2.save()
        assert len(json.loads(path.read_text())["runs"]) == 2

    def test_corrupt_file_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH_obs.json"
        path.write_text("{nope")
        assert BenchLog(path).runs == []

    def test_memory_only(self):
        bench = BenchLog(None)
        bench.record(RunProfile.measure("M", "W", 1.0, 1, 1))
        bench.save()  # no-op, must not raise
