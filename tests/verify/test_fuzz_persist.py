"""Failing fuzz programs are persisted as standalone assembly.

A ``fuzz:<profile>:<seed>`` name in a check failure is only replayable
by whoever knows the suite's build hook; ``repro check`` therefore
writes the deterministic assembly next to the report so the divergence
artifact stands alone.  These tests pin the selection (fuzz names only,
deduplicated across sections and key spellings), the file contents
(exactly :func:`~repro.verify.fuzz.fuzz_source`), and the
never-raises contract.
"""

from repro.verify.check import CheckReport, Section, persist_failing_fuzz_sources
from repro.verify.fuzz import fuzz_source


def _report(*sections):
    return CheckReport(quick=True, sections=list(sections))


class TestPersistFailingFuzzSources:
    def test_writes_each_distinct_fuzz_program_once(self, tmp_path):
        report = _report(
            Section(name="differential:batch", cases=4, failures=[
                {"pair": "batch", "workload": "fuzz:mixed:0", "field": "ipc"},
                {"pair": "batch", "workload": "fuzz:mixed:0", "field": "cycles"},
                {"pair": "fuzz", "program": "fuzz:serial:2", "field": "x"},
            ]),
            Section(name="differential:engine", cases=1, failures=[
                {"pair": "engine", "workload": "fuzz:serial:2", "field": "y"},
            ]),
        )
        written = persist_failing_fuzz_sources(report, tmp_path)
        assert sorted(path.name for path in written) == [
            "fuzz-mixed-0.asm", "fuzz-serial-2.asm",
        ]
        assert (tmp_path / "fuzz-mixed-0.asm").read_text(
            encoding="utf-8"
        ) == fuzz_source("mixed", 0)

    def test_non_fuzz_workloads_skipped(self, tmp_path):
        report = _report(Section(name="differential:batch", cases=1, failures=[
            {"pair": "batch", "workload": "ijpeg", "field": "ipc"},
        ]))
        assert persist_failing_fuzz_sources(report, tmp_path) == []
        assert list(tmp_path.iterdir()) == []

    def test_passing_report_writes_nothing(self, tmp_path):
        report = _report(Section(name="differential:batch", cases=8))
        assert persist_failing_fuzz_sources(report, tmp_path) == []

    def test_underivable_name_logged_not_raised(self, tmp_path, caplog):
        report = _report(Section(name="differential:batch", cases=2, failures=[
            {"pair": "batch", "workload": "fuzz:nosuchprofile:9", "field": "x"},
            {"pair": "batch", "workload": "fuzz:mixed:1", "field": "y"},
        ]))
        written = persist_failing_fuzz_sources(report, tmp_path)
        # The bad name must not mask the good one.
        assert [path.name for path in written] == ["fuzz-mixed-1.asm"]
