"""Tests for the deterministic fault-injection workloads (``fault:``)."""

from __future__ import annotations

import pytest

from repro.verify import faults
from repro.verify.faults import (
    InjectedFault,
    build_fault,
    fault_name,
    is_fault_name,
    parse_fault_name,
)
from repro.workloads import suite


# -- name grammar ------------------------------------------------------------

def test_fault_name_round_trips_through_parse():
    name = fault_name("raise-once", "tok", "fuzz:mixed:3")
    assert name == "fault:raise-once:tok:fuzz:mixed:3"
    assert is_fault_name(name)
    assert parse_fault_name(name) == ("raise-once", "tok", "fuzz:mixed:3")


def test_slow_once_carries_its_millisecond_argument_in_the_mode():
    name = fault_name("slow-once:250", "tok", "li")
    assert parse_fault_name(name) == ("slow-once:250", "tok", "li")


def test_inner_workload_may_contain_colons():
    mode, token, inner = parse_fault_name("fault:kill-once:t1:fault:raise-once:t2:li")
    assert (mode, token) == ("kill-once", "t1")
    assert inner == "fault:raise-once:t2:li"


@pytest.mark.parametrize("bad", ["ijpeg", "fault:", "fault:kill-once", "fault:kill-once:tok", "fault:no-such-mode:tok:li"])
def test_parse_rejects_malformed_names(bad):
    with pytest.raises(ValueError):
        parse_fault_name(bad)


@pytest.mark.parametrize("mode, token", [("explode", "tok"), ("kill-once", ""), ("kill-once", "a/b"), ("kill-once", "a:b")])
def test_fault_name_rejects_bad_mode_or_token(mode, token):
    with pytest.raises(ValueError):
        fault_name(mode, token, "li")


# -- firing semantics --------------------------------------------------------

def test_disarmed_without_fault_dir(monkeypatch):
    monkeypatch.delenv(faults.FAULT_DIR_ENV, raising=False)
    name = fault_name("raise-once", "never-fires", "fuzz:serial:1")
    program = build_fault(name)  # would raise InjectedFault if armed
    assert program.name == name


def test_raise_once_fires_exactly_once_then_builds_inner(monkeypatch, tmp_path):
    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path))
    name = fault_name("raise-once", "fires-once", "fuzz:serial:1")
    with pytest.raises(InjectedFault):
        build_fault(name)
    assert (tmp_path / "fires-once").exists()
    program = build_fault(name)  # marker present: behaves as the inner workload
    assert program.name == name
    inner = suite.build("fuzz:serial:1")
    assert program.instructions == inner.instructions


def test_suite_build_routes_fault_names(monkeypatch, tmp_path):
    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path))
    name = fault_name("raise-once", "via-suite", "fuzz:serial:2")
    with pytest.raises(InjectedFault):
        suite.build(name)
    program = suite.build(name)
    assert program.name == name


def test_slow_once_delays_then_builds(monkeypatch, tmp_path):
    import time

    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path))
    name = fault_name("slow-once:50", "slowpoke", "fuzz:serial:3")
    started = time.perf_counter()
    program = build_fault(name)
    assert time.perf_counter() - started >= 0.05
    assert program.name == name
    # Second build skips the sleep.
    started = time.perf_counter()
    build_fault(name)
    assert time.perf_counter() - started < 0.05
