"""The fuzzer's contract: deterministic, well-formed, terminating kernels."""

import pytest

from repro.core.machine import Machine
from repro.core.presets import rb_limited
from repro.isa.shadow import shadow_check
from repro.verify.fuzz import (
    PROFILES,
    build_fuzz,
    fuzz_name,
    fuzz_program,
    fuzz_source,
    is_fuzz_name,
    parse_fuzz_name,
)
from repro.workloads.suite import build


class TestNames:
    def test_roundtrip(self):
        name = fuzz_name("branchy", 7)
        assert name == "fuzz:branchy:7"
        assert is_fuzz_name(name)
        assert parse_fuzz_name(name) == ("branchy", 7)
        assert not is_fuzz_name("ijpeg")

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError):
            parse_fuzz_name("fuzz:nope:0")
        with pytest.raises(ValueError):
            parse_fuzz_name("fuzz:mixed:notanint")
        with pytest.raises(ValueError):
            parse_fuzz_name("ijpeg")


class TestDeterminism:
    def test_source_is_a_pure_function_of_profile_and_seed(self):
        for profile in PROFILES:
            assert fuzz_source(profile, 3) == fuzz_source(profile, 3)

    def test_seeds_and_profiles_vary_the_program(self):
        assert fuzz_source("mixed", 0) != fuzz_source("mixed", 1)
        assert fuzz_source("mixed", 0) != fuzz_source("branchy", 0)

    def test_suite_build_reconstructs_from_name_alone(self):
        """What lets pool workers simulate fuzz kernels with no transfer."""
        name = fuzz_name("memory", 2)
        direct = fuzz_program("memory", 2)
        via_registry = build(name)
        via_builder = build_fuzz(name)
        assert direct.name == via_registry.name == via_builder.name == name
        assert direct.instructions == via_registry.instructions
        assert direct.instructions == via_builder.instructions


class TestGeneratedPrograms:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_assembles_terminates_and_loops(self, profile):
        program = fuzz_program(profile, 0)
        stats = Machine(rb_limited(4)).run(program)
        assert stats.cycles > 0
        # outer loop: dynamic count strictly exceeds the static body
        assert stats.instructions > len(program.instructions) // 2

    def test_shadow_execution_is_clean(self):
        report = shadow_check(fuzz_program("mixed", 4))
        assert report.clean

    def test_branchy_profile_is_branch_heavy(self):
        branchy = fuzz_source("branchy", 0)
        serial = fuzz_source("serial", 0)
        count = lambda src: sum(  # noqa: E731
            1 for line in src.splitlines() if line.strip().startswith(("beq", "bne", "blt", "bge", "bgt", "ble"))
        )
        assert count(branchy) > count(serial)
