"""End-to-end ``repro check``: the report, its JSON artifact, and the CLI."""

import json

from repro.cli import main
from repro.verify.check import REPORT_VERSION, run_check


class TestRunCheck:
    def test_quick_check_passes_end_to_end(self, tmp_path, capsys):
        """One bounded check through the CLI: every section green, exit 0,
        and a parseable JSON report on disk."""
        out_path = tmp_path / "report.json"
        code = main([
            "check", "--quick", "--seeds", "1", "--profiles", "mixed,serial",
            "--jobs", "2", "-o", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert code == 0, printed
        assert "PASS" in printed
        payload = json.loads(out_path.read_text())
        assert payload["version"] == REPORT_VERSION
        assert payload["ok"] is True
        assert payload["failures"] == 0
        names = {section["name"] for section in payload["sections"]}
        assert {
            "fuzz",
            "differential:cycle-skip",
            "differential:timeline-skip",
            "differential:machine-reuse",
            "differential:run-matrix",
            "differential:rb-adder",
            "invariant:machine-ordering",
            "invariant:bypass-monotonicity",
            "invariant:shadow-state",
            "invariant:cpi-conservation",
        } <= names
        assert all(section["ok"] for section in payload["sections"])

    def test_report_records_failures(self):
        """A synthetic failing section flips ok and the counters."""
        from repro.verify.check import CheckReport, Section

        report = CheckReport(quick=True)
        report.sections.append(Section("fuzz", cases=3))
        report.sections.append(Section(
            "differential:cycle-skip", cases=2,
            failures=[{"detail": "cycles: 10 != 11"}],
        ))
        assert not report.ok
        assert report.total_cases() == 5
        assert report.total_failures() == 1
        assert "FAIL" in report.summary()
        assert "cycles: 10 != 11" in report.summary()

    def test_run_check_api_defaults(self, tmp_path):
        report = run_check(
            quick=True, seeds=[0], profiles=["mixed"],
            workdir=tmp_path, adder_trials=50,
        )
        assert report.ok
        assert report.quick
