"""Regression tests for ``repro check`` exit-code and report-write paths.

Three contracts, each of which has broken (or could break) silently:

* a clean ``--quick`` check exits 0 (covered end-to-end in
  ``test_check.py``; re-asserted here on a minimal run);
* an injected invariant violation exits nonzero *and* the JSON report is
  written;
* an audit that **raises** (not merely reports a violation) no longer
  aborts the check — the report is still written, the crashed section
  carries the failure, and the exit code is nonzero.  Before the
  ``_Timer`` fix, the exception escaped ``run_check`` and ``-o`` never
  produced a file.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.verify import check, differential, invariants
from repro.verify.check import run_check


@pytest.fixture
def tiny_check(monkeypatch):
    """Shrink the heavyweight audit workloads so each check run is fast."""
    monkeypatch.setattr(check, "QUICK_ORDERING_WORKLOADS", ["fuzz:serial:5"])
    monkeypatch.setattr(check, "MONOTONICITY_WORKLOAD", "fuzz:serial:5")


def run_cli_check(tmp_path):
    out_path = tmp_path / "check-report.json"
    code = main([
        "check", "--quick", "--seeds", "1", "--profiles", "serial",
        "--jobs", "1", "-o", str(out_path),
    ])
    return code, out_path


def test_clean_quick_check_exits_zero(tiny_check, tmp_path):
    code, out_path = run_cli_check(tmp_path)
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is True and payload["failures"] == 0


def test_injected_invariant_failure_exits_nonzero_with_report(
    tiny_check, monkeypatch, tmp_path
):
    class FakeViolation:
        def as_dict(self):
            return {"detail": "injected: ideal slower than baseline"}

    monkeypatch.setattr(
        invariants, "audit_machine_ordering",
        lambda *args, **kwargs: [FakeViolation()],
    )
    code, out_path = run_cli_check(tmp_path)
    assert code == 1
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is False and payload["failures"] >= 1
    ordering = next(
        s for s in payload["sections"] if s["name"] == "invariant:machine-ordering"
    )
    assert ordering["failures"][0]["detail"].startswith("injected")


def test_crashing_audit_still_writes_report_and_exits_nonzero(
    tiny_check, monkeypatch, tmp_path
):
    def explode(*args, **kwargs):
        raise RuntimeError("audit blew up")

    monkeypatch.setattr(differential, "diff_cycle_skip", explode)
    code, out_path = run_cli_check(tmp_path)
    assert code == 1
    assert out_path.exists(), "check-report.json must be written on failure"
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is False
    crashed = next(
        s for s in payload["sections"] if s["name"] == "differential:cycle-skip"
    )
    assert not crashed["ok"]
    assert "audit crashed" in crashed["failures"][0]["detail"]
    assert "RuntimeError" in crashed["failures"][0]["detail"]
    # The crash did not abort the later sections.
    later = [s["name"] for s in payload["sections"]]
    assert "invariant:cpi-conservation" in later


def test_crashing_audit_does_not_swallow_keyboard_interrupt(tiny_check, monkeypatch):
    def interrupt(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(differential, "diff_cycle_skip", interrupt)
    with pytest.raises(KeyboardInterrupt):
        run_check(quick=True, seeds=[0], profiles=["serial"], adder_trials=10)
