"""The differential harness: finds real divergences, stays quiet otherwise."""

import pytest

from repro.core.presets import ideal, rb_limited, resolve_machine
from repro.verify.differential import (
    Divergence,
    diff_cycle_skip,
    diff_machine_reuse,
    diff_rb_adder,
    diff_timeline_skip,
    first_divergence,
)
from repro.verify.fuzz import fuzz_program
from repro.workloads.suite import build


class TestFirstDivergence:
    def test_identical(self):
        value = {"a": [1, {"b": 2}], "c": "x"}
        assert first_divergence(value, dict(value)) is None

    def test_reports_deepest_path(self):
        left = {"a": {"b": [1, 2, 3]}}
        right = {"a": {"b": [1, 9, 3]}}
        assert first_divergence(left, right) == ("a.b[1]", 2, 9)

    def test_sorted_key_order_is_stable(self):
        left = {"z": 1, "a": 1}
        right = {"z": 2, "a": 2}
        assert first_divergence(left, right) == ("a", 1, 2)

    def test_missing_key(self):
        assert first_divergence({"a": 1}, {}) == ("a", 1, "<absent>")
        assert first_divergence({}, {"a": 1}) == ("a", "<absent>", 1)

    def test_length_mismatch(self):
        assert first_divergence([1], [1, 2]) == ("[1]", "<absent>", 2)

    def test_type_mismatch_is_a_divergence(self):
        assert first_divergence({"a": 1}, {"a": 1.0}) == ("a", 1, 1.0)
        assert first_divergence({"a": True}, {"a": 1}) == ("a", True, 1)


class TestPairs:
    def test_cycle_skip_pair_is_clean(self):
        program = fuzz_program("mixed", 11)
        for config in (rb_limited(4), ideal(4)):
            assert diff_cycle_skip(config, program) is None

    def test_timeline_skip_pair_is_clean(self):
        program = fuzz_program("mixed", 11)
        for config in (rb_limited(4), ideal(4)):
            assert diff_timeline_skip(config, program) is None

    def test_machine_reuse_pair_is_clean(self):
        warmup = fuzz_program("branchy", 11)
        program = fuzz_program("serial", 11)
        assert diff_machine_reuse(rb_limited(4), warmup, program) is None

    def test_rb_adder_pair_is_clean(self):
        assert diff_rb_adder(seed=123, trials=500) == []

    def test_divergence_reporting(self):
        divergence = Divergence(
            pair="cycle-skip", machine="Ideal-4w", workload="fuzz:mixed:0",
            field="cycles", left=100, right=101,
        )
        text = divergence.describe()
        assert "cycle-skip" in text and "'cycles'" in text
        payload = divergence.as_dict()
        assert payload["field"] == "cycles"
        assert payload["left"] == "100"


#: The golden corpus's machine x kernel x width grid (mirrors
#: tests/integration/test_golden_results.py) — the issue's acceptance bar
#: is that *every* corpus pair has a bit-identical skip/no-skip timeline.
CORPUS = [
    (machine, kernel, width)
    for machine in ("baseline", "staggered", "rb-limited", "rb-full")
    for kernel in ("ijpeg", "li", "compress")
    for width in (4, 8)
]


@pytest.mark.slow
@pytest.mark.parametrize(
    "machine, kernel, width", CORPUS,
    ids=[f"{m}-{w}w-{k}" for m, k, w in CORPUS],
)
def test_timeline_skip_clean_across_golden_corpus(machine, kernel, width):
    config = resolve_machine(machine, width)
    divergence = diff_timeline_skip(config, build(kernel))
    assert divergence is None, divergence and divergence.describe()
