"""The invariant auditor: quiet on correct runs, loud on synthetic breakage."""

from repro.core.machine import Machine
from repro.core.presets import rb_limited
from repro.core.statistics import SimStats
from repro.verify.fuzz import fuzz_program
from repro.verify.invariants import (
    audit_bypass_monotonicity,
    audit_cpi_stack,
    audit_machine_ordering,
    audit_shadow_state,
)


def _fake_stats(machine: str, ipc: float, cycles: int = 10_000) -> SimStats:
    return SimStats(
        machine=machine, workload="w",
        cycles=cycles, instructions=round(ipc * cycles),
    )


class TestCPIStack:
    def test_real_run_conserves_cycles(self):
        stats = Machine(rb_limited(4)).run(fuzz_program("mixed", 5))
        assert audit_cpi_stack(stats) is None


class TestMachineOrdering:
    def test_correct_ordering_is_quiet(self):
        per_machine = {
            "Baseline": _fake_stats("Baseline", 0.8),
            "RB": _fake_stats("RB", 0.9),
            "Ideal": _fake_stats("Ideal", 1.0),
        }
        assert audit_machine_ordering(
            per_machine, ideal_name="Ideal", baseline_name="Baseline",
            workload="w",
        ) == []

    def test_machine_above_ideal_is_flagged(self):
        per_machine = {
            "Baseline": _fake_stats("Baseline", 0.8),
            "RB": _fake_stats("RB", 1.2),
            "Ideal": _fake_stats("Ideal", 1.0),
        }
        violations = audit_machine_ordering(
            per_machine, ideal_name="Ideal", baseline_name="Baseline",
            workload="w",
        )
        assert len(violations) == 1
        assert "RB" in violations[0].subject
        assert "fastest" in violations[0].detail

    def test_machine_below_baseline_is_flagged(self):
        per_machine = {
            "Baseline": _fake_stats("Baseline", 0.8),
            "RB": _fake_stats("RB", 0.5),
            "Ideal": _fake_stats("Ideal", 1.0),
        }
        violations = audit_machine_ordering(
            per_machine, ideal_name="Ideal", baseline_name="Baseline",
            workload="w",
        )
        assert len(violations) == 1
        assert "slowest" in violations[0].detail

    def test_scheduling_noise_within_tolerance_is_allowed(self):
        """Greedy select-N inversions of a fraction of a percent are
        scheduling artifacts, not modelling bugs (RB-full beats Ideal on
        ``li`` by 8 cycles in ~12.5k this way)."""
        per_machine = {
            "Baseline": _fake_stats("Baseline", 0.8),
            "RB": _fake_stats("RB", 1.0005),
            "Ideal": _fake_stats("Ideal", 1.0),
        }
        assert audit_machine_ordering(
            per_machine, ideal_name="Ideal", baseline_name="Baseline",
            workload="w",
        ) == []


class TestBypassMonotonicity:
    def test_monotone_lattice_is_quiet(self):
        full = _fake_stats("Ideal", 1.0)
        by_removed = {
            frozenset({1}): _fake_stats("No-1", 0.95),
            frozenset({2}): _fake_stats("No-2", 0.90),
            frozenset({1, 2}): _fake_stats("No-1,2", 0.85),
        }
        assert audit_bypass_monotonicity(by_removed, full, "w") == []

    def test_superset_faster_than_subset_is_flagged(self):
        full = _fake_stats("Ideal", 1.0)
        by_removed = {
            frozenset({1}): _fake_stats("No-1", 0.85),
            frozenset({1, 2}): _fake_stats("No-1,2", 0.95),
        }
        violations = audit_bypass_monotonicity(by_removed, full, "w")
        assert len(violations) == 1
        assert "[1, 2]" in violations[0].detail

    def test_variant_above_full_bypass_is_flagged(self):
        full = _fake_stats("Ideal", 1.0)
        by_removed = {frozenset({1}): _fake_stats("No-1", 1.1)}
        violations = audit_bypass_monotonicity(by_removed, full, "w")
        assert len(violations) == 1
        assert "full-bypass" in violations[0].detail


class TestShadowState:
    def test_fuzzed_kernel_matches_shadow(self):
        violations = audit_shadow_state(rb_limited(4), fuzz_program("memory", 3))
        assert violations == []
