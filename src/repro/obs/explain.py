"""Stall attribution and CPI stacks: *why* each cycle was spent.

The machine classifies every simulated cycle into exactly one
:class:`StallCause` (top-down CPI-stack accounting, keyed off the
oldest unretired instruction), records the classification in the
metrics registry under :data:`CPI_STACK_METRIC`, and — when a bus is
attached — emits one ``stall`` :class:`~repro.obs.events.TraceEvent`
per non-retiring cycle.  A :class:`CPIStack` folds either source into
per-cause cycles-per-instruction components that sum *exactly* to the
measured CPI, which turns the paper's causal claims into per-cycle
accounting:

* bypass holes delaying dependent issue (Fig. 8) become the
  ``bypass-hole`` component;
* the RB->TC converter's latency (Fig. 13's conversion cases) becomes
  ``conversion-latency``;
* the Baseline machine's pipelined 2-cycle adders (Fig. 14's reason for
  keeping bypass level 1) become ``adder-pipeline``.

Attribution rules (one cause per cycle, first match wins).  Dependence
stalls are read off the **select frontier** — the oldest unselected
instruction across the schedulers — not the ROB head: a hole-blocked
consumer is always selected *before* its producer retires, so the head
alone can never witness a bypass hole.

1. an instruction retired this cycle -> ``BASE``;
2. the ROB is empty -> ``FRONTEND_EMPTY``;
3. the select frontier is waiting on a source operand -> the operand's
   wait cause (``LOAD_LATENCY`` / ``BYPASS_HOLE`` /
   ``CONVERSION_LATENCY`` / ``ADDER_PIPELINE``), recorded by the
   scheduler's readiness callback;
4. the head has completed and is spending its one write-back-to-retire
   cycle -> ``RETIRE_BOUND``;
5. dispatch was blocked this cycle by a full ROB or scheduler ->
   ``WINDOW_FULL``;
6. the select frontier has not been evaluated yet (still traversing the
   rename pipeline) -> ``FRONTEND_EMPTY``;
7. everything in flight is selected -> the head's occupancy cause
   (``LOAD_LATENCY`` for loads, ``CONVERSION_LATENCY`` in the
   converter, ``ADDER_PIPELINE`` otherwise).

``FU_CONTENTION`` exists in the taxonomy (and in every report) but is
structurally zero on the paper's machines: the select-2 schedulers grant
oldest-first, so the ROB head is always examined before select bandwidth
runs out.  The per-scheduler ``contended_cycles`` counter measures the
bandwidth pressure the head never feels.

This module deliberately has no dependency on :mod:`repro.core`: the
classifiers duck-type over ``DynInstr``-like records the same way
:func:`repro.obs.events.lifecycle_events` does.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.obs.critpath import CritPathReport
from repro.obs.events import EventKind, TraceEvent
from repro.utils.tables import format_table

#: Name of the per-cycle stall-cause distribution in the metrics registry.
CPI_STACK_METRIC = "cpi.stack"


class StallCause(enum.Enum):
    """Where one cycle went, in CPI-stack presentation order."""

    BASE = "retiring"
    FRONTEND_EMPTY = "frontend-empty"
    WINDOW_FULL = "window-full"
    LOAD_LATENCY = "load-latency"
    BYPASS_HOLE = "bypass-hole"
    CONVERSION_LATENCY = "conversion-latency"
    ADDER_PIPELINE = "adder-pipeline"
    FU_CONTENTION = "fu-contention"
    RETIRE_BOUND = "retire-bound"


#: The operand-not-ready sub-causes (rule 3 above).
OPERAND_WAIT_CAUSES = frozenset({
    StallCause.LOAD_LATENCY,
    StallCause.BYPASS_HOLE,
    StallCause.CONVERSION_LATENCY,
    StallCause.ADDER_PIPELINE,
})


# ---------------------------------------------------------------------------
# Classification (called by the machine, duck-typed over DynInstr)
# ---------------------------------------------------------------------------

def classify_operand_wait(producer, wants_tc: bool, offset: int) -> StallCause:
    """Why a source operand is not ready at select offset ``offset``.

    ``offset`` is a select-cycle offset from the producer (the space the
    availability templates live in); callers pass the *last blocked*
    offset — the one just before the operand becomes reachable — so the
    wait is attributed to its binding reason.  The value exists in the
    consumed format from offset ``lat_tc`` (TC consumers of an RB
    producer) or ``lat_rb``; being blocked *past* that point means the
    bypass network has a hole there (Fig. 8), being blocked before it
    means the producer is still computing.
    """
    if producer.select_cycle is None:
        # The producer itself has not issued: inherit its recorded wait
        # (one level of transitive attribution), else attribute by type.
        inherited = getattr(producer, "stall_cause", None)
        if inherited in OPERAND_WAIT_CAUSES:
            return inherited
        if producer.instr.spec.is_load:
            return StallCause.LOAD_LATENCY
        return StallCause.ADDER_PIPELINE
    computed_at = producer.lat_tc if wants_tc else producer.lat_rb
    if offset >= computed_at:
        return StallCause.BYPASS_HOLE
    if producer.instr.spec.is_load:
        return StallCause.LOAD_LATENCY
    if wants_tc and producer.produces_rb and offset >= producer.lat_rb:
        return StallCause.CONVERSION_LATENCY
    return StallCause.ADDER_PIPELINE


def classify_stall_cycle(
    head,
    oldest_unselected,
    cycle: int,
    select_to_exec: int,
    dispatch_blocked: bool,
) -> StallCause:
    """Attribute one non-retiring cycle (rules 2-7 above).

    ``head`` is the oldest unretired instruction (None when the ROB is
    empty); ``oldest_unselected`` is the select frontier — the oldest
    instruction still sitting in a scheduler (None when everything in
    flight has been selected).  Evaluated at the end of the machine's
    cycle loop, after select and dispatch have run; ``dispatch_blocked``
    reports whether rename/dispatch was stopped this cycle by a full ROB
    or scheduler.
    """
    if head is None:
        return StallCause.FRONTEND_EMPTY
    frontier_cause = (
        getattr(oldest_unselected, "stall_cause", None)
        if oldest_unselected is not None else None
    )
    if frontier_cause is not None:
        return frontier_cause
    if head.complete_cycle is not None and head.complete_cycle <= cycle:
        return StallCause.RETIRE_BOUND
    if dispatch_blocked:
        return StallCause.WINDOW_FULL
    if oldest_unselected is not None:
        # Due but never evaluated: still traversing the rename pipeline.
        return StallCause.FRONTEND_EMPTY
    select = head.select_cycle
    if select is None:
        return StallCause.FRONTEND_EMPTY
    if head.instr.spec.is_load:
        return StallCause.LOAD_LATENCY
    exec_start = select + select_to_exec
    if head.produces_rb and head.lat_tc > head.lat_rb and cycle >= exec_start + head.lat_rb:
        return StallCause.CONVERSION_LATENCY
    return StallCause.ADDER_PIPELINE


# ---------------------------------------------------------------------------
# CPI stacks
# ---------------------------------------------------------------------------

@dataclass
class CPIStack:
    """Per-cause cycle components of one run, summing exactly to cycles."""

    machine: str
    workload: str
    cycles: int
    instructions: int
    components: dict[StallCause, int]

    @classmethod
    def from_stats(cls, stats) -> "CPIStack":
        """Build from a :class:`SimStats` (its ``cpi.stack`` distribution)."""
        dist = stats.metrics.distribution(CPI_STACK_METRIC)
        components = {
            cause: dist.count(cause) for cause in StallCause if dist.count(cause)
        }
        return cls(
            machine=stats.machine,
            workload=stats.workload,
            cycles=stats.cycles,
            instructions=stats.instructions,
            components=components,
        )

    def validate(self) -> None:
        """Raise unless the components account for every cycle exactly."""
        total = sum(self.components.values())
        if total != self.cycles:
            raise ValueError(
                f"CPI stack for {self.machine} on {self.workload} accounts for "
                f"{total} of {self.cycles} cycles"
            )

    @property
    def total_cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def cycles_for(self, cause: StallCause) -> int:
        return self.components.get(cause, 0)

    def cpi(self, cause: StallCause) -> float:
        if not self.instructions:
            return 0.0
        return self.components.get(cause, 0) / self.instructions

    def fraction(self, cause: StallCause) -> float:
        if not self.cycles:
            return 0.0
        return self.components.get(cause, 0) / self.cycles

    def as_dict(self) -> dict:
        return {
            "machine": self.machine,
            "workload": self.workload,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "total_cpi": self.total_cpi,
            "components": {
                cause.value: {
                    "cycles": self.cycles_for(cause),
                    "cpi": self.cpi(cause),
                    "fraction": self.fraction(cause),
                }
                for cause in StallCause
            },
        }


def cpi_stack_from_events(
    events: Iterable[TraceEvent], machine: str = "", workload: str = ""
) -> CPIStack:
    """Recompute a CPI stack purely from a *complete* event stream.

    Uses the machine's ``stall`` events (one per non-retiring cycle,
    tagged with the cause) and the retire events (instruction count and
    the final cycle).  Scheduler-emitted ``stall`` events carry a
    ``unit`` arg naming the full scheduler; they are back-pressure
    detail, not per-cycle attribution, and are skipped here.  Matches
    :meth:`CPIStack.from_stats` exactly on unbounded streams; a bounded
    bus that dropped events cannot reproduce the stack (the dropped
    prefix is unaccounted).
    """
    by_value = {cause.value: cause for cause in StallCause}
    stall_counts: dict[StallCause, int] = {}
    retires = 0
    last_cycle = -1
    for event in events:
        if event.cycle > last_cycle:
            last_cycle = event.cycle
        if event.kind is EventKind.RETIRE:
            retires += 1
        elif event.kind is EventKind.STALL and "unit" not in (event.args or {}):
            cause = by_value[event.args["cause"]]
            stall_counts[cause] = stall_counts.get(cause, 0) + 1
    cycles = last_cycle + 1 if last_cycle >= 0 else 0
    components = dict(stall_counts)
    base = cycles - sum(stall_counts.values())
    if base:
        components[StallCause.BASE] = base
    return CPIStack(
        machine=machine,
        workload=workload,
        cycles=cycles,
        instructions=retires,
        components=components,
    )


# ---------------------------------------------------------------------------
# The differential report behind ``repro explain``
# ---------------------------------------------------------------------------

@dataclass
class Explanation:
    """One machine's full accounting of a run: CPI stack + critical path."""

    machine: str
    workload: str
    cycles: int
    instructions: int
    ipc: float
    stack: CPIStack
    critpath: CritPathReport | None = None
    hole_summary: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        entry = {
            "machine": self.machine,
            "workload": self.workload,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "cpi_stack": self.stack.as_dict(),
        }
        if self.critpath is not None:
            entry["critical_path"] = self.critpath.as_dict()
        if self.hole_summary:
            entry["bypass_holes"] = list(self.hole_summary)
        return entry


def explanations_to_json(explanations: Sequence[Explanation]) -> dict:
    """The machine-readable form of ``repro explain --json``.

    The structure is pinned by ``schemas/explain.schema.json`` (CI
    validates a generated document against it on every push).
    """
    first = explanations[0] if explanations else None
    return {
        "report": "repro-explain",
        "version": 1,
        "workload": first.workload if first else "",
        "machines": [e.as_dict() for e in explanations],
    }


def _stack_table(explanations: Sequence[Explanation]) -> str:
    headers = ["component"] + [e.machine for e in explanations]
    rows: list[list[object]] = []
    for cause in StallCause:
        if all(e.stack.cycles_for(cause) == 0 for e in explanations):
            if cause not in (StallCause.BASE,):
                continue
        rows.append(
            [cause.value]
            + [f"{e.stack.cpi(cause):.3f} ({e.stack.fraction(cause):5.1%})"
               for e in explanations]
        )
    rows.append(["total CPI"] + [f"{e.stack.total_cpi:.3f}" for e in explanations])
    rows.append(["IPC"] + [f"{e.ipc:.3f}" for e in explanations])
    return format_table(headers, rows, title="CPI stack (cycles/instruction, % of cycles)")


def _critpath_table(explanations: Sequence[Explanation]) -> str:
    with_crit = [e for e in explanations if e.critpath is not None]
    if not with_crit:
        return ""
    headers = ["critical last-arriving operand"] + [e.machine for e in with_crit]
    rows: list[list[object]] = []
    for service in CritPathReport.SERVICES:
        rows.append(
            [f"served by {service}"]
            + [f"{e.critpath.service_fraction(service):.1%}" for e in with_crit]
        )
    rows.append(["RB->TC conversions"]
                + [f"{e.critpath.conversion_fraction():.1%}" for e in with_crit])
    rows.append(["load producers"]
                + [f"{e.critpath.load_fraction():.1%}" for e in with_crit])
    rows.append(["zero-slack (bound the select)"]
                + [f"{e.critpath.zero_slack_fraction():.1%}" for e in with_crit])
    rows.append(["instructions with in-flight sources"]
                + [str(e.critpath.bound) for e in with_crit])
    rows.append(["critical-chain length"]
                + [str(len(e.critpath.chain)) for e in with_crit])
    return format_table(
        headers, rows,
        title="Critical-path report (fractions of last-arriving operand edges)",
    )


def render_explanations_text(explanations: Sequence[Explanation]) -> str:
    """Side-by-side human-readable differential report."""
    if not explanations:
        raise ValueError("nothing to explain")
    lines = [
        f"explain: {explanations[0].workload} on "
        + ", ".join(e.machine for e in explanations),
        "",
        _stack_table(explanations),
    ]
    crit = _critpath_table(explanations)
    if crit:
        lines += ["", crit]
    holes = [e for e in explanations if e.hole_summary]
    if holes:
        lines.append("")
        lines.append("bypass holes (Fig. 8 availability patterns):")
        for e in holes:
            lines.append(f"  {e.machine}:")
            lines.extend(f"    {line}" for line in e.hole_summary)
    return "\n".join(lines)


def render_explanations_markdown(explanations: Sequence[Explanation]) -> str:
    """The same differential report as GitHub-flavored markdown tables."""
    if not explanations:
        raise ValueError("nothing to explain")
    out = [f"## CPI stacks: `{explanations[0].workload}`", ""]
    header = ["component"] + [e.machine for e in explanations]
    out.append("| " + " | ".join(header) + " |")
    out.append("|" + "---|" * len(header))
    for cause in StallCause:
        if all(e.stack.cycles_for(cause) == 0 for e in explanations) \
                and cause is not StallCause.BASE:
            continue
        cells = [cause.value] + [f"{e.stack.cpi(cause):.3f}" for e in explanations]
        out.append("| " + " | ".join(cells) + " |")
    out.append("| **total CPI** | "
               + " | ".join(f"**{e.stack.total_cpi:.3f}**" for e in explanations) + " |")
    with_crit = [e for e in explanations if e.critpath is not None]
    if with_crit:
        out += ["", "### Critical last-arriving operands", ""]
        header = ["share"] + [e.machine for e in with_crit]
        out.append("| " + " | ".join(header) + " |")
        out.append("|" + "---|" * len(header))
        for service in CritPathReport.SERVICES:
            out.append("| " + " | ".join(
                [service] + [f"{e.critpath.service_fraction(service):.1%}"
                             for e in with_crit]) + " |")
        out.append("| " + " | ".join(
            ["RB->TC conversions"]
            + [f"{e.critpath.conversion_fraction():.1%}" for e in with_crit]) + " |")
        out.append("| " + " | ".join(
            ["load producers"]
            + [f"{e.critpath.load_fraction():.1%}" for e in with_crit]) + " |")
    return "\n".join(out) + "\n"
