"""Event-stream sinks: ring buffer, collector, JSONL, Chrome trace.

Sinks receive the sorted event stream from :class:`repro.obs.events.EventBus`
through a three-call protocol: ``begin(meta)`` once, ``event(e)`` per
event, ``finish()`` once.  The Chrome sink writes the ``trace_event``
JSON format, so a ``repro trace --format chrome`` artifact opens
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
:func:`validate_chrome_trace` checks that structure and is what CI runs
against the smoke-test trace.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.obs.events import EventKind, TraceEvent

#: Perfetto rows ("threads") instructions are folded onto: enough that
#: concurrently in-flight instructions rarely share a row, few enough
#: that the UI stays navigable.
CHROME_LANES = 32

#: Event kinds rendered as zero-width instants rather than slices.
_INSTANT_KINDS = frozenset({
    EventKind.BYPASS, EventKind.OPERAND, EventKind.RETIRE, EventKind.STALL,
})


class TraceSink:
    """Base sink: subclasses override any of begin/event/finish."""

    def begin(self, meta: dict) -> None:
        pass

    def event(self, event: TraceEvent) -> None:
        pass

    def finish(self) -> None:
        pass


class CollectorSink(TraceSink):
    """Keeps every event in a list (tests, in-process consumers)."""

    def __init__(self) -> None:
        self.meta: dict = {}
        self.events: list[TraceEvent] = []

    def begin(self, meta: dict) -> None:
        self.meta = meta

    def event(self, event: TraceEvent) -> None:
        self.events.append(event)


class RingBufferSink(TraceSink):
    """Keeps only the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.meta: dict = {}
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def begin(self, meta: dict) -> None:
        self.meta = meta

    def event(self, event: TraceEvent) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)


class JSONLSink(TraceSink):
    """One JSON object per line: a ``{"meta": ...}`` header, then events."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._fh = None
        self.count = 0

    def begin(self, meta: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps({"meta": meta}) + "\n")

    def event(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_dict()) + "\n")
        self.count += 1

    def finish(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_jsonl(path: Path | str) -> tuple[dict, list[TraceEvent]]:
    """Load a JSONL trace back into ``(meta, events)``."""
    meta: dict = {}
    events: list[TraceEvent] = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if "meta" in entry and "kind" not in entry:
                meta = entry["meta"]
            else:
                events.append(TraceEvent.from_dict(entry))
    return meta, events


class ChromeTraceSink(TraceSink):
    """Writes the Chrome ``trace_event`` format (Perfetto-loadable).

    Cycles map one-to-one onto trace microseconds.  Stage events become
    complete slices (``ph: "X"``); bypass forwards and retires become
    instants (``ph: "i"``).  Instructions are folded onto
    ``lanes`` pseudo-threads by ``seq % lanes`` so the timeline stays
    readable for long runs.
    """

    def __init__(self, path: Path | str, lanes: int = CHROME_LANES) -> None:
        if lanes <= 0:
            raise ValueError(f"lane count must be positive, got {lanes}")
        self.path = Path(path)
        self.lanes = lanes
        self.meta: dict = {}
        self._events: list[dict] = []

    def begin(self, meta: dict) -> None:
        self.meta = meta

    def event(self, event: TraceEvent) -> None:
        if event.kind is EventKind.SPAN:
            # Spans carry their own name and microsecond duration; they
            # render as slices on the "trace" category so a serve batch
            # shows request/queue/worker spans next to pipeline events.
            self._events.append({
                "name": event.text or "span",
                "cat": "trace",
                "ph": "X",
                "ts": event.cycle,
                "dur": event.dur,
                "pid": 0,
                "tid": event.seq % self.lanes,
                "args": dict(event.args or {}),
            })
            return
        args = {"seq": event.seq, "instr": event.text}
        if event.args:
            args.update(event.args)
        entry: dict = {
            "name": event.kind.value,
            "cat": "pipeline",
            "ts": event.cycle,
            "pid": 0,
            "tid": event.seq % self.lanes,
            "args": args,
        }
        if event.kind in _INSTANT_KINDS:
            entry["ph"] = "i"
            entry["s"] = "t"
        else:
            entry["ph"] = "X"
            entry["dur"] = event.dur
        self._events.append(entry)

    def finish(self) -> None:
        label = "repro"
        machine = self.meta.get("machine")
        workload = self.meta.get("workload")
        if machine and workload:
            label = f"{machine} on {workload}"
        metadata = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": label},
        }]
        metadata += [
            {
                "name": "thread_name", "ph": "M", "pid": 0, "tid": lane,
                "args": {"name": f"lane {lane:02d}"},
            }
            for lane in range(self.lanes)
        ]
        payload = {
            "traceEvents": metadata + self._events,
            "displayTimeUnit": "ms",
            "otherData": self.meta,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload))


def validate_chrome_trace(source: Path | str | dict) -> tuple[int, int]:
    """Structurally validate a Chrome ``trace_event`` JSON document.

    Accepts a path or an already-parsed document.  Checks the envelope
    (``traceEvents`` list), every event's required fields per phase, and
    that the pipeline slices are cycle-monotonic per lane.  A document
    with pipeline-category events must contain retire events; span-only
    documents (``repro.obs.trace.export_chrome``) are exempt.  Returns
    ``(total_events, retire_count)``; raises :class:`ValueError` listing
    every problem found.
    """
    if isinstance(source, (str, Path)):
        document = json.loads(Path(source).read_text())
    else:
        document = source

    errors: list[str] = []
    if not isinstance(document, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("chrome trace needs a non-empty 'traceEvents' list")

    retires = 0
    pipeline_events = 0
    last_ts_per_lane: dict = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs a non-negative dur")
        elif phase == "i":
            if event.get("s") not in (None, "t", "p", "g"):
                errors.append(f"{where}: bad instant scope {event.get('s')!r}")
        lane = (event.get("pid"), event.get("tid"))
        previous = last_ts_per_lane.get(lane)
        if previous is not None and ts < previous:
            errors.append(f"{where}: ts {ts} goes backwards on lane {lane}")
        last_ts_per_lane[lane] = ts
        if event.get("cat") == "pipeline":
            pipeline_events += 1
        if event.get("name") == EventKind.RETIRE.value:
            retires += 1

    if pipeline_events and retires == 0:
        errors.append("trace contains no retire events")
    if errors:
        preview = "; ".join(errors[:10])
        raise ValueError(f"invalid chrome trace ({len(errors)} problems): {preview}")
    return len(events), retires
