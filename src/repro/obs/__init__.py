"""Observability layer: event tracing, metrics, logging, and profiling.

``repro.obs`` is the single measurement substrate for the simulator:

* :mod:`repro.obs.events` — a cycle-stamped event bus fed by
  :class:`repro.core.machine.Machine`; the trace is the source of truth
  for the pipeline viewer, the Chrome/Perfetto exporter, and any
  IPC-style metric recomputed from first principles.
* :mod:`repro.obs.sinks` — pluggable consumers of the event stream
  (ring buffer, JSONL, Chrome ``trace_event`` format).
* :mod:`repro.obs.metrics` — a registry of counters, histograms,
  distributions, and sampled time-series that :class:`SimStats`, the
  schedulers, and the result cache record into; the registry serializes
  generically so new counters need no per-field persistence code.
* :mod:`repro.obs.explain` / :mod:`repro.obs.critpath` — per-cycle
  stall attribution folded into CPI stacks, and dependence-graph
  critical-path analysis over the event stream (``repro explain``).
* :mod:`repro.obs.log` — ``logging`` setup shared by the CLI and
  harness (``repro run -v``).
* :mod:`repro.obs.profile` — host-side wall-clock profiling of
  simulation runs, written to ``BENCH_obs.json`` so performance work
  has a trajectory.
"""

from repro.obs.critpath import CritPathReport, DepEdge, DependenceGraph
from repro.obs.events import EventBus, EventKind, TraceEvent, ipc_from_events, lifecycle_events
from repro.obs.explain import (
    CPI_STACK_METRIC,
    CPIStack,
    StallCause,
    cpi_stack_from_events,
    render_explanations_markdown,
    render_explanations_text,
)
from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, TimeSeries, counter_property
from repro.obs.sinks import (
    ChromeTraceSink,
    CollectorSink,
    JSONLSink,
    RingBufferSink,
    read_jsonl,
    validate_chrome_trace,
)

__all__ = [
    "EventBus",
    "EventKind",
    "TraceEvent",
    "ipc_from_events",
    "lifecycle_events",
    "CPI_STACK_METRIC",
    "CPIStack",
    "StallCause",
    "cpi_stack_from_events",
    "render_explanations_markdown",
    "render_explanations_text",
    "CritPathReport",
    "DepEdge",
    "DependenceGraph",
    "get_logger",
    "setup_logging",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "counter_property",
    "ChromeTraceSink",
    "CollectorSink",
    "JSONLSink",
    "RingBufferSink",
    "read_jsonl",
    "validate_chrome_trace",
]
