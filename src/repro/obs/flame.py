"""Hot-loop profiling: stack samplers, stage attribution, flamegraphs.

The planned structure-of-arrays core rewrite needs to know where the
simulator's wall-clock actually goes — which pipeline stage's Python
code burns the cycles — before deciding what to attack first.  This
module provides two opt-in, stdlib-only stack samplers:

:class:`SamplingProfiler`
    Signal-based (``signal.setitimer``): the OS interrupts the process
    every ``interval`` seconds of CPU (or wall) time and the handler
    records the current Python stack.  Negligible overhead, honest
    time attribution, but main-thread only (POSIX signal rules).
:class:`CallStackSampler`
    ``sys.setprofile``-based: records the stack on every ``stride``-th
    function call.  Works on any thread and is deterministic for a
    deterministic workload, at the price of attributing by call count
    rather than by time.  The fallback when signals are unavailable.

Both classes are idempotent to enable/disable, usable as context
managers, and share the reporting surface: :meth:`~StackProfiler.collapsed`
writes Brendan-Gregg-style collapsed stacks (one ``frame;frame;... N``
line per unique stack — feed it to ``flamegraph.pl`` or
https://www.speedscope.app), and :meth:`~StackProfiler.stage_report`
folds every sample onto the pipeline stage taxonomy below for the
``repro profile`` CLI table.

Stage attribution walks each sampled stack innermost-out and assigns
the first frame that matches a known stage (scheduler wakeup code is
"schedule" even when it was called from the core loop); samples that
only ever touch ``core/machine.py`` are the un-factored cycle loop
itself ("core-loop"), and everything outside the simulator is "host".
"""

from __future__ import annotations

import signal
import sys
import threading
from collections import Counter
from pathlib import Path

#: Stage taxonomy: (stage, filename fragment, function-name prefixes).
#: Scanned in order against each frame; first frame with a match wins.
_STAGE_RULES: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("fetch", "/frontend/", ()),
    ("schedule", "/backend/scheduler", ()),
    ("schedule", "/core/machine", ("is_ready",)),
    ("bypass", "/backend/bypass", ()),
    ("execute", "/isa/semantics", ()),
    ("execute", "/backend/fu", ()),
    ("execute", "/backend/latency", ()),
    ("execute", "/rb/", ()),
    ("execute", "/circuits/", ()),
    ("memory", "/mem/", ()),
    ("retire", "/core/window", ()),
    ("frontend-decode", "/isa/", ()),
)

#: Stages in presentation order for reports (others appended as seen).
STAGES = (
    "fetch", "schedule", "execute", "bypass", "memory", "retire",
    "frontend-decode", "core-loop", "host",
)

_MAX_DEPTH = 64


def classify_frame(filename: str, funcname: str) -> str | None:
    """The pipeline stage a single frame belongs to, if any."""
    normalized = filename.replace("\\", "/")
    for stage, fragment, prefixes in _STAGE_RULES:
        if fragment in normalized:
            if not prefixes or funcname.startswith(prefixes):
                return stage
    return None


def classify_stack(frames: tuple[tuple[str, str], ...]) -> str:
    """The stage of one sampled stack (frames innermost-first)."""
    in_core = False
    for filename, funcname in frames:
        stage = classify_frame(filename, funcname)
        if stage is not None:
            return stage
        if "/core/machine" in filename.replace("\\", "/"):
            in_core = True
    return "core-loop" if in_core else "host"


def _capture(frame) -> tuple[tuple[str, str], ...]:
    """The stack at ``frame``, innermost-first, as (filename, funcname)."""
    frames: list[tuple[str, str]] = []
    depth = 0
    while frame is not None and depth < _MAX_DEPTH:
        code = frame.f_code
        frames.append((code.co_filename, code.co_name))
        frame = frame.f_back
        depth += 1
    return tuple(frames)


class StackProfiler:
    """Shared sample store and reporting for both sampler flavors."""

    def __init__(self) -> None:
        #: stack tuple (innermost-first) -> observation count
        self.samples: Counter = Counter()
        self._enabled = False

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def reset(self) -> None:
        self.samples.clear()

    def record(self, frame) -> None:
        self.samples[_capture(frame)] += 1

    # -- lifecycle (subclasses implement _install/_uninstall) --------------

    def enable(self) -> None:
        """Start sampling; a second enable is a no-op."""
        if self._enabled:
            return
        self._install()
        self._enabled = True

    def disable(self) -> None:
        """Stop sampling; disabling an idle profiler is a no-op.

        The flag is cleared *before* :meth:`_uninstall` runs: a partial
        uninstall must not leave the profiler claiming to be enabled
        (which would make a retry no-op and strand the hook installed).
        """
        if not self._enabled:
            return
        self._enabled = False
        self._uninstall()

    def _install(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _uninstall(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __enter__(self) -> "StackProfiler":
        self.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disable()

    # -- reporting ---------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack flamegraph lines: ``root;...;leaf count``."""
        lines = []
        for frames, count in self.samples.items():
            names = [
                f"{Path(filename).stem}:{funcname}"
                for filename, funcname in reversed(frames)
            ]
            lines.append(f"{';'.join(names)} {count}")
        return "\n".join(sorted(lines)) + ("\n" if lines else "")

    def write_collapsed(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.collapsed())
        return path

    def stage_report(self) -> list[dict]:
        """Per-stage sample attribution, heaviest first.

        Every known stage appears (zero-count stages included) so the
        ``repro profile`` table always shows the full taxonomy.
        """
        by_stage: Counter = Counter({stage: 0 for stage in STAGES})
        for frames, count in self.samples.items():
            by_stage[classify_stack(frames)] += count
        total = sum(by_stage.values())
        return [
            {
                "stage": stage,
                "samples": count,
                "fraction": round(count / total, 4) if total else 0.0,
            }
            for stage, count in sorted(
                by_stage.items(), key=lambda item: (-item[1], item[0])
            )
        ]


class SamplingProfiler(StackProfiler):
    """Signal-driven stack sampler (main thread only).

    ``timer="cpu"`` samples every ``interval`` seconds of process CPU
    time (``ITIMER_PROF``/``SIGPROF``) — the right default for a
    CPU-bound simulator; ``timer="wall"`` uses ``ITIMER_REAL``/
    ``SIGALRM`` for workloads that block.
    """

    def __init__(self, interval: float = 0.005, timer: str = "cpu") -> None:
        super().__init__()
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if timer not in ("cpu", "wall"):
            raise ValueError(f"timer must be 'cpu' or 'wall', got {timer!r}")
        self.interval = interval
        self.timer = timer
        self._itimer = signal.ITIMER_PROF if timer == "cpu" else signal.ITIMER_REAL
        self._signal = signal.SIGPROF if timer == "cpu" else signal.SIGALRM
        self._previous_handler = None

    def _handle(self, signum, frame) -> None:
        if frame is not None:
            self.record(frame)

    def _install(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            raise RuntimeError(
                "SamplingProfiler needs the main thread (POSIX signal "
                "delivery); use CallStackSampler on worker threads"
            )
        self._previous_handler = signal.signal(self._signal, self._handle)
        try:
            signal.setitimer(self._itimer, self.interval, self.interval)
        except BaseException:
            # Roll the handler back: a half-installed profiler would keep
            # our handler active while enable() reports failure (and
            # disable(), seeing _enabled False, would never restore it).
            signal.signal(self._signal, self._previous_handler or signal.SIG_DFL)
            self._previous_handler = None
            raise

    def _uninstall(self) -> None:
        try:
            signal.setitimer(self._itimer, 0.0)
        finally:
            # Restore the previous handler even if disarming raised, so
            # an exception out of the profiled callable (context-manager
            # __exit__ path) can never strand our handler installed.
            signal.signal(self._signal, self._previous_handler or signal.SIG_DFL)
            self._previous_handler = None


class CallStackSampler(StackProfiler):
    """``sys.setprofile``-based sampler: every ``stride``-th call event.

    Attribution is by call frequency, not elapsed time — a long-running
    leaf call is under-weighted relative to the signal sampler — but it
    needs no signals, works on any thread, and is deterministic, which
    is what the tests and the pool-worker path want.
    """

    def __init__(self, stride: int = 512) -> None:
        super().__init__()
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        self.stride = stride
        self._calls = 0
        self._previous = None

    def _hook(self, frame, event, arg) -> None:
        if event not in ("call", "c_call"):
            return
        self._calls += 1
        if self._calls % self.stride == 0:
            self.record(frame)

    def _install(self) -> None:
        self._previous = sys.getprofile()
        sys.setprofile(self._hook)

    def _uninstall(self) -> None:
        sys.setprofile(self._previous)
        self._previous = None


def open_profiler(interval: float = 0.005, stride: int = 512) -> StackProfiler:
    """The best available profiler: signal-based on the main thread,
    ``sys.setprofile``-based anywhere else."""
    if threading.current_thread() is threading.main_thread():
        return SamplingProfiler(interval=interval)
    return CallStackSampler(stride=stride)
