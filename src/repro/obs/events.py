"""Cycle-stamped pipeline events and the bus that delivers them to sinks.

The machine emits one :class:`TraceEvent` per pipeline stage a dynamic
instruction occupies (fetch, rename, select, register read, execute,
format conversion, writeback, retire) plus one ``bypass_forward`` event
per operand served off the bypass network (carrying the level and the
Fig. 13 case).  Events are buffered by the :class:`EventBus` and
delivered to every attached sink in ``(cycle, seq, stage-order)`` order
when the run closes, so every consumer — the ASCII pipeline viewer, the
JSONL/Chrome exporters, metric recomputation — sees one deterministic,
cycle-monotonic stream.

This module deliberately has no dependency on :mod:`repro.core`: events
are plain data, and :func:`lifecycle_events` duck-types over the
``DynInstr`` record (the pipeline-shape constant ``SELECT_TO_EXEC`` is
passed in by the caller).
"""

from __future__ import annotations

import enum
import logging
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

logger = logging.getLogger(__name__)


class EventKind(enum.Enum):
    """Pipeline event types, in within-cycle presentation order."""

    FETCH = "fetch"
    RENAME = "rename"
    SELECT = "select"
    REGISTER_READ = "register_read"
    OPERAND = "operand_read"
    BYPASS = "bypass_forward"
    EXECUTE = "execute"
    CONVERT = "convert"
    WRITEBACK = "writeback"
    RETIRE = "retire"
    STALL = "stall"
    #: Service-plane events (repro.serve): requests, batches, retries,
    #: health transitions.  ``cycle`` carries the service's monotonic
    #: tick and ``seq`` the request/batch id, so the same bus, sinks,
    #: and sort order work unchanged for the serving layer.
    SERVICE = "service"
    #: Distributed-tracing spans (repro.obs.trace): one finished span
    #: per event.  ``cycle`` carries microseconds since the tracer's
    #: origin, ``dur`` the span duration in microseconds, ``text`` the
    #: span name, and ``args`` the serialized span (trace_id, span_id,
    #: parent_id, timestamps, attributes).
    SPAN = "span"


_KIND_ORDER = {kind: index for index, kind in enumerate(EventKind)}
_KIND_BY_VALUE = {kind.value: kind for kind in EventKind}


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One cycle-stamped pipeline event for one dynamic instruction.

    ``cycle`` is the first cycle the stage occupies and ``dur`` how many
    cycles it lasts (1 for point events).  ``args`` carries kind-specific
    detail (e.g. bypass level and case).
    """

    cycle: int
    kind: EventKind
    seq: int
    text: str = ""
    dur: int = 1
    args: dict | None = None

    def sort_key(self) -> tuple[int, int, int]:
        return (self.cycle, self.seq, _KIND_ORDER[self.kind])

    def to_dict(self) -> dict:
        entry: dict = {
            "cycle": self.cycle,
            "kind": self.kind.value,
            "seq": self.seq,
            "text": self.text,
        }
        if self.dur != 1:
            entry["dur"] = self.dur
        if self.args:
            entry["args"] = self.args
        return entry

    @classmethod
    def from_dict(cls, entry: dict) -> "TraceEvent":
        return cls(
            cycle=entry["cycle"],
            kind=_KIND_BY_VALUE[entry["kind"]],
            seq=entry["seq"],
            text=entry.get("text", ""),
            dur=entry.get("dur", 1),
            args=entry.get("args"),
        )


class EventBus:
    """Buffers events during a run and replays them, sorted, to sinks.

    Sorting at close (rather than forcing the machine to emit in cycle
    order) lets the simulator stamp an instruction's whole lifecycle the
    moment it retires while still handing every sink a cycle-monotonic
    stream; it also makes the stream deterministic regardless of
    emission order.

    ``capacity`` bounds the buffer: when set, the bus keeps only the
    newest ``capacity`` events (by cycle order) and counts the rest in
    :attr:`dropped`.  Compaction runs when the buffer reaches twice the
    capacity so emission stays amortised O(1) per event.
    """

    def __init__(self, sinks: Sequence = (), capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("EventBus capacity must be positive")
        self.sinks = list(sinks)
        self.events: list[TraceEvent] = []
        self.meta: dict = {}
        self.capacity = capacity
        self.dropped = 0
        self._closed = False

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)
        if self.capacity is not None and len(self.events) >= 2 * self.capacity:
            self._compact()

    def emit_many(self, events: Iterable[TraceEvent]) -> None:
        self.events.extend(events)
        if self.capacity is not None and len(self.events) >= 2 * self.capacity:
            self._compact()

    def _compact(self) -> None:
        """Sort and keep the newest ``capacity`` events."""
        self.events.sort(key=TraceEvent.sort_key)
        excess = len(self.events) - self.capacity
        if excess > 0:
            del self.events[:excess]
            self.dropped += excess

    def close(self, meta: dict | None = None) -> list[TraceEvent]:
        """Sort the stream, replay it through every sink, return it."""
        if self._closed:
            return self.events
        self._closed = True
        self.meta = dict(meta or {})
        if self.capacity is not None:
            self._compact()
            if self.dropped:
                self.meta.setdefault("dropped_events", self.dropped)
        self.events.sort(key=TraceEvent.sort_key)
        for sink in self.sinks:
            sink.begin(self.meta)
        for event in self.events:
            for sink in self.sinks:
                sink.event(event)
        for sink in self.sinks:
            sink.finish()
        return self.events


def lifecycle_events(
    rec,
    select_to_exec: int,
    include_frontend: bool = True,
) -> list[TraceEvent]:
    """The full stage timeline of one retired ``DynInstr``-like record.

    This is the single source of the pipeline shape shared by the
    machine's bus emission and the pipeline viewer: select, a
    ``select_to_exec - 1``-cycle register read, execution for the
    redundant-format latency, format conversion for the TC/RB latency
    gap, writeback the cycle after completion, and retirement.
    """
    events: list[TraceEvent] = []
    seq = rec.seq
    text = rec.instr.text
    if include_frontend:
        events.append(TraceEvent(rec.fetch_cycle, EventKind.FETCH, seq, text))
        if rec.rename_cycle >= 0:
            events.append(TraceEvent(rec.rename_cycle, EventKind.RENAME, seq, text))
    select = rec.select_cycle
    if select is None:
        return events
    events.append(TraceEvent(
        select, EventKind.SELECT, seq, text,
        args={"scheduler": rec.scheduler, "cluster": rec.cluster},
    ))
    read_cycles = select_to_exec - 1
    if read_cycles > 0:
        events.append(TraceEvent(select + 1, EventKind.REGISTER_READ, seq, text, dur=read_cycles))
    exec_start = select + select_to_exec
    exec_cycles = max(1, rec.lat_rb)
    events.append(TraceEvent(exec_start, EventKind.EXECUTE, seq, text, dur=exec_cycles))
    convert_cycles = rec.lat_tc - rec.lat_rb
    if convert_cycles > 0:
        events.append(TraceEvent(
            exec_start + exec_cycles, EventKind.CONVERT, seq, text, dur=convert_cycles,
        ))
    if rec.complete_cycle is not None:
        events.append(TraceEvent(rec.complete_cycle + 1, EventKind.WRITEBACK, seq, text))
    retire_cycle = getattr(rec, "retire_cycle", None)
    if retire_cycle is not None:
        events.append(TraceEvent(retire_cycle, EventKind.RETIRE, seq, text))
    return events


def ipc_from_events(events: Iterable[TraceEvent]) -> float:
    """IPC recomputed purely from the retire events of a trace.

    The machine's final cycle is the one retiring the last instruction
    (the pipeline is empty afterwards, so the run ends that cycle), so
    the cycle count is ``max retire cycle + 1`` and the instruction
    count is simply the number of retire events.  Matches
    :attr:`SimStats.ipc` exactly.
    """
    retires = [e for e in events if e.kind is EventKind.RETIRE]
    if not retires:
        logger.warning(
            "ipc_from_events: no retire events in stream; returning 0.0 "
            "(was the trace truncated or the bus never closed?)"
        )
        return 0.0
    cycles = max(e.cycle for e in retires) + 1
    return len(retires) / cycles
