"""Validate observability artifacts structurally.

Two modes, both used by CI's trace smoke job::

    PYTHONPATH=src python -m repro.obs.validate trace.json
    PYTHONPATH=src python -m repro.obs.validate --schema schemas/explain.schema.json explain.json

The first checks a Chrome ``trace_event`` document; the second checks
any JSON document against a checked-in schema using the small
JSON-Schema subset implemented here (enough to pin a report's shape
without a jsonschema dependency).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.sinks import validate_chrome_trace

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check(instance, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            errors.append(f"{path}: expected type {expected}, got {type(instance).__name__}")
            return
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']!r}")
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append(f"{path}: {instance} below minimum {schema['minimum']}")
        if "maximum" in schema and instance > schema["maximum"]:
            errors.append(f"{path}: {instance} above maximum {schema['maximum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, value in instance.items():
            if name in properties:
                _check(value, properties[name], f"{path}.{name}", errors)
            else:
                extra = schema.get("additionalProperties", True)
                if extra is False:
                    errors.append(f"{path}: unexpected property {name!r}")
                elif isinstance(extra, dict):
                    _check(value, extra, f"{path}.{name}", errors)
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(f"{path}: fewer than {schema['minItems']} items")
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(instance):
                _check(value, items, f"{path}[{index}]", errors)


def validate_json_schema(instance, schema: dict) -> None:
    """Raise :class:`ValueError` listing every schema violation found.

    Supports the JSON-Schema subset the repo's checked-in schemas use:
    ``type`` (single or list), ``required``, ``properties``,
    ``additionalProperties`` (bool or schema), ``items``, ``enum``,
    ``const``, ``minimum``/``maximum``, ``minItems``.
    """
    errors: list[str] = []
    _check(instance, schema, "$", errors)
    if errors:
        preview = "; ".join(errors[:10])
        raise ValueError(f"schema violations ({len(errors)}): {preview}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="validate a Chrome trace_event file, or any JSON file "
        "against a checked-in schema",
    )
    parser.add_argument("document", help="path to the JSON file to validate")
    parser.add_argument(
        "--schema", metavar="PATH", default=None,
        help="validate against this JSON schema instead of as a chrome trace",
    )
    args = parser.parse_args(argv)
    try:
        if args.schema is not None:
            schema = json.loads(Path(args.schema).read_text())
            instance = json.loads(Path(args.document).read_text())
            validate_json_schema(instance, schema)
            print(f"OK: {args.document} matches {args.schema}")
        else:
            total, retires = validate_chrome_trace(args.document)
            print(f"OK: {args.document}: {total} trace events, {retires} retires")
    except (OSError, ValueError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
