"""Validate a Chrome ``trace_event`` artifact structurally.

Used by CI's trace smoke job::

    PYTHONPATH=src python -m repro.obs.validate trace.json
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.sinks import validate_chrome_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="structurally validate a Chrome trace_event JSON file",
    )
    parser.add_argument("trace", help="path to a chrome-format trace JSON file")
    args = parser.parse_args(argv)
    try:
        total, retires = validate_chrome_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {args.trace}: {total} trace events, {retires} retires")
    return 0


if __name__ == "__main__":
    sys.exit(main())
