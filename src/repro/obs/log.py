"""Logging setup shared by the CLI and harness.

The whole package logs under the ``repro`` namespace; by default nothing
below WARNING is shown.  ``repro <command> -v`` turns on INFO (per-phase
progress: which simulation is running, cache hits, timings) and ``-vv``
DEBUG (per-run internals).

``repro <command> --log-json`` (or ``setup_logging(json_lines=True)``)
switches the handler to :class:`JSONFormatter` — one JSON object per
line, machine-parseable, so service logs can be shipped to a collector
without a regex in sight.
"""

from __future__ import annotations

import json
import logging
import sys

ROOT_LOGGER = "repro"

_LEVELS = {0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}


class JSONFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message (+exc)."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True)


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    Pass ``__name__`` from inside the package (module paths already
    start with ``repro.``); other names are nested under ``repro.``.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def setup_logging(
    verbosity: int = 0, stream=None, json_lines: bool = False
) -> logging.Logger:
    """Configure the ``repro`` logger for ``verbosity`` -v flags.

    Idempotent: repeated calls reconfigure the level, stream, and
    formatter (``json_lines`` switches to :class:`JSONFormatter`) and
    reuse the existing handler rather than stacking duplicates.  Returns
    the root package logger.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    level = _LEVELS.get(min(verbosity, 2), logging.DEBUG)
    logger.setLevel(level)
    logger.propagate = False

    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_handler", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_handler = True
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    if json_lines:
        handler.setFormatter(JSONFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s", datefmt="%H:%M:%S"
        ))
    handler.setLevel(level)
    return logger
