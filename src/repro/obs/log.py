"""Logging setup shared by the CLI and harness.

The whole package logs under the ``repro`` namespace; by default nothing
below WARNING is shown.  ``repro <command> -v`` turns on INFO (per-phase
progress: which simulation is running, cache hits, timings) and ``-vv``
DEBUG (per-run internals).
"""

from __future__ import annotations

import logging
import sys

ROOT_LOGGER = "repro"

_LEVELS = {0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    Pass ``__name__`` from inside the package (module paths already
    start with ``repro.``); other names are nested under ``repro.``.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def setup_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger for ``verbosity`` -v flags.

    Idempotent: repeated calls reconfigure the level and reuse the
    existing handler rather than stacking duplicates.  Returns the root
    package logger.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    level = _LEVELS.get(min(verbosity, 2), logging.DEBUG)
    logger.setLevel(level)
    logger.propagate = False

    handler = next(
        (h for h in logger.handlers if getattr(h, "_repro_handler", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_handler = True
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s", datefmt="%H:%M:%S"
        ))
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    return logger
