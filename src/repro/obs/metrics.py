"""The metrics registry: counters, histograms, distributions, time-series.

Everything that counts something during a simulation records it here
instead of growing a new hand-maintained field plus matching
serialization code.  A :class:`MetricsRegistry` serializes itself
generically (:meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.load`),
so adding a counter anywhere in the stack automatically persists through
the result cache and shows up in ``repro run --json`` output.

Categorical distributions reuse :class:`repro.utils.stats.Distribution`;
when a distribution's categories are an :class:`enum.Enum`, registering
the enum class lets the registry encode keys by name and decode them on
load.
"""

from __future__ import annotations

import enum
import math
import re
from collections.abc import Mapping

from repro.utils.stats import Distribution


class Counter:
    """A monotonic (but resettable) integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class counter_property:
    """Expose a registry :class:`Counter` as a plain integer attribute.

    ``template`` is formatted with ``self`` (the owning instance) to name
    the counter, e.g. ``counter_property("scheduler.{self.name}.selected")``.
    Reads return the counter's value and writes set it, so call sites keep
    the ergonomics of an ``int`` field while the count lives in — and
    serializes through — the instance's ``metrics`` registry.  The bound
    counter is cached per instance after the first access.
    """

    def __init__(self, template: str) -> None:
        self.template = template
        self._cache_key = ""

    def __set_name__(self, owner, name: str) -> None:
        self._cache_key = f"_counter_{name}"

    def _counter(self, obj) -> Counter:
        cached = obj.__dict__.get(self._cache_key)
        if cached is None:
            cached = obj.metrics.counter(self.template.format(self=obj))
            obj.__dict__[self._cache_key] = cached
        return cached

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return self._counter(obj).value

    def __set__(self, obj, value: int) -> None:
        self._counter(obj).value = value


class Gauge:
    """A point-in-time level (queue depth, in-flight batches, health).

    Unlike a :class:`Counter` it can go down, and merging two registries
    keeps the *latest observed* value rather than summing — the level of
    a restarted service is not the sum of its incarnations.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        self.value -= amount

    def as_dict(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Counts of discrete observed values with running sum/min/max."""

    __slots__ = ("name", "counts", "total", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: dict[int, int] = {}
        self.total = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None

    def record(self, value: int, amount: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + amount
        self.total += amount
        self.sum += value * amount
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def fraction(self, value: int) -> float:
        return self.counts.get(value, 0) / self.total if self.total else 0.0

    def quantile(self, q: float) -> int | None:
        """The q-quantile of the observed values, or ``None`` when empty.

        Exact (nearest-rank over the full discrete ``counts`` map), not
        an estimate: the smallest observed value whose cumulative count
        reaches ``ceil(q * total)``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.total:
            return None
        rank = max(1, math.ceil(q * self.total))
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= rank:
                return value
        return self.max

    def as_dict(self) -> dict:
        return {
            "counts": {str(v): c for v, c in sorted(self.counts.items())},
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def load(self, entry: Mapping) -> None:
        for value, count in entry.get("counts", {}).items():
            self.counts[int(value)] = self.counts.get(int(value), 0) + count
        self.total += entry.get("total", 0)
        self.sum += entry.get("sum", 0)
        for bound, better in (("min", min), ("max", max)):
            loaded = entry.get(bound)
            if loaded is not None:
                current = getattr(self, bound)
                setattr(self, bound, loaded if current is None else better(current, loaded))

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.total}, mean={self.mean():.2f})"


class TimeSeries:
    """A per-cycle series sampled every ``stride`` cycles.

    The running ``total``/``count`` cover *every* recorded cycle (so means
    are exact); ``samples`` keeps one value per ``stride`` cycles for
    plotting, decimating (stride doubling) past ``max_samples`` so the
    memory and serialized footprint stay bounded.
    """

    __slots__ = ("name", "stride", "max_samples", "samples", "count", "total")

    def __init__(self, name: str, stride: int = 64, max_samples: int = 4096) -> None:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        self.name = name
        self.stride = stride
        self.max_samples = max_samples
        self.samples: list[int] = []
        self.count = 0
        self.total = 0

    def record(self, cycle: int, value: int) -> None:
        self.count += 1
        self.total += value
        if cycle % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) > self.max_samples:
                self.samples = self.samples[::2]
                self.stride *= 2

    def record_run(self, start: int, stop: int, value: int) -> None:
        """Record ``value`` for every cycle in ``[start, stop)`` at once.

        State-identical to calling :meth:`record` once per cycle —
        including mid-run decimation — but only touches the cycles that
        land on a sample point, so a cycle-skipping simulator can account
        for a long idle stretch in O(samples) instead of O(cycles).
        """
        if stop <= start:
            return
        span = stop - start
        self.count += span
        self.total += value * span
        cycle = start + (-start) % self.stride
        while cycle < stop:
            self.samples.append(value)
            if len(self.samples) > self.max_samples:
                self.samples = self.samples[::2]
                self.stride *= 2
            cycle += self.stride
            cycle -= cycle % self.stride

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "stride": self.stride,
            "count": self.count,
            "total": self.total,
            "samples": list(self.samples),
        }

    def load(self, entry: Mapping) -> None:
        self.stride = entry.get("stride", self.stride)
        self.count += entry.get("count", 0)
        self.total += entry.get("total", 0)
        self.samples.extend(entry.get("samples", ()))

    def __repr__(self) -> str:
        return f"TimeSeries({self.name}, n={self.count}, mean={self.mean():.2f})"


class MetricsRegistry:
    """Named metrics with get-or-create access and generic serialization."""

    __slots__ = (
        "_counters", "_gauges", "_histograms", "_timeseries", "_distributions", "_dist_keys"
    )

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timeseries: dict[str, TimeSeries] = {}
        self._distributions: dict[str, Distribution] = {}
        #: distribution name -> Enum class used to decode serialized keys
        self._dist_keys: dict[str, type[enum.Enum]] = {}

    # -- get-or-create accessors ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def peek_histogram(self, name: str) -> Histogram | None:
        """The named histogram if it exists, without creating it.

        Observers (e.g. the interval sampler) must read through this:
        :meth:`histogram` would register an empty metric, changing the
        serialized snapshot of a registry the observer only meant to
        watch.
        """
        return self._histograms.get(name)

    def timeseries(self, name: str, stride: int = 64, max_samples: int = 4096) -> TimeSeries:
        metric = self._timeseries.get(name)
        if metric is None:
            metric = self._timeseries[name] = TimeSeries(name, stride, max_samples)
        return metric

    def distribution(self, name: str, keys: type[enum.Enum] | None = None) -> Distribution:
        metric = self._distributions.get(name)
        if metric is None:
            metric = self._distributions[name] = Distribution()
        if keys is not None:
            self._dist_keys[name] = keys
        return metric

    # -- introspection ---------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(
            [*self._counters, *self._gauges, *self._histograms,
             *self._timeseries, *self._distributions]
        )

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
            or name in self._timeseries
            or name in self._distributions
        )

    # -- serialization ---------------------------------------------------------------

    def _encode_dist(self, name: str, dist: Distribution) -> dict:
        encoded = {}
        for key, count in dist.as_dict().items():
            encoded[key.name if isinstance(key, enum.Enum) else str(key)] = count
        return encoded

    def _decode_dist_key(self, name: str, key: str) -> object:
        enum_class = self._dist_keys.get(name)
        if enum_class is not None:
            try:
                return enum_class[key]
            except KeyError:
                pass
        return key

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every registered metric."""
        entry = {
            "counters": {n: c.as_dict() for n, c in sorted(self._counters.items())},
            "histograms": {n: h.as_dict() for n, h in sorted(self._histograms.items())},
            "timeseries": {n: t.as_dict() for n, t in sorted(self._timeseries.items())},
            "distributions": {
                n: self._encode_dist(n, d) for n, d in sorted(self._distributions.items())
            },
        }
        # Gauges are a service-side concept; simulations never register
        # one, so the key is emitted only when present to keep existing
        # serialized SimStats (caches, golden corpus) byte-stable.
        if self._gauges:
            entry["gauges"] = {n: g.as_dict() for n, g in sorted(self._gauges.items())}
        return entry

    def load(self, entry: Mapping) -> None:
        """Merge a serialized snapshot into this registry.

        Distribution keys decode through the enum classes registered via
        :meth:`distribution`; unknown distributions keep string keys.
        """
        for name, value in entry.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in entry.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, sub in entry.get("histograms", {}).items():
            self.histogram(name).load(sub)
        for name, sub in entry.get("timeseries", {}).items():
            self.timeseries(name).load(sub)
        for name, counts in entry.get("distributions", {}).items():
            dist = self.distribution(name)
            dist.merge(Distribution.from_dict(
                {self._decode_dist_key(name, key): count for key, count in counts.items()}
            ))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one."""
        self._dist_keys.update(other._dist_keys)
        self.load(other.as_dict())

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)}, "
            f"timeseries={len(self._timeseries)}, "
            f"distributions={len(self._distributions)})"
        )


_PROM_UNSAFE = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, suffix: str = "") -> str:
    """A registry metric name as a Prometheus metric name.

    Dots (and anything else outside ``[a-zA-Z0-9_]``) become underscores
    and every metric is namespaced under ``repro_``, so
    ``serve.jobs.submitted`` scrapes as ``repro_serve_jobs_submitted``.
    """
    return "repro_" + _PROM_UNSAFE.sub("_", name) + suffix


def prometheus_text(registries: Mapping[str, MetricsRegistry]) -> str:
    """Registries in Prometheus text exposition format 0.0.4.

    ``registries`` maps a label value to a registry (e.g. ``service`` and
    ``runner`` on the serve endpoint); each sample carries its source as
    a ``registry="..."`` label so one scrape distinguishes them.
    Counters gain the conventional ``_total`` suffix, gauges export
    as-is, histograms export as summaries (``_sum``/``_count``), and
    distributions become counters labelled by category key.  Time-series
    are plot data, not scrape data, and are omitted.
    """
    by_metric: dict[str, tuple[str, list[str]]] = {}

    def add(metric: str, mtype: str, sample: str) -> None:
        entry = by_metric.setdefault(metric, (mtype, []))
        entry[1].append(sample)

    for label, registry in registries.items():
        tag = f'registry="{label}"'
        for name, counter in registry._counters.items():
            metric = prometheus_name(name, "_total")
            add(metric, "counter", f"{metric}{{{tag}}} {counter.value}")
        for name, gauge in registry._gauges.items():
            metric = prometheus_name(name)
            add(metric, "gauge", f"{metric}{{{tag}}} {gauge.value}")
        for name, hist in registry._histograms.items():
            metric = prometheus_name(name)
            for q in (0.5, 0.95, 0.99):
                value = hist.quantile(q)
                if value is not None:
                    add(metric, "summary",
                        f'{metric}{{{tag},quantile="{q}"}} {value}')
            add(metric, "summary", f"{metric}_sum{{{tag}}} {hist.sum}")
            add(metric, "summary", f"{metric}_count{{{tag}}} {hist.total}")
        for name, dist in registry._distributions.items():
            metric = prometheus_name(name, "_total")
            for key, count in sorted(dist.as_dict().items(), key=lambda kv: str(kv[0])):
                label_key = key.name if isinstance(key, enum.Enum) else str(key)
                add(metric, "counter",
                    f'{metric}{{{tag},key="{label_key}"}} {count}')

    lines: list[str] = []
    for metric in sorted(by_metric):
        mtype, samples = by_metric[metric]
        lines.append(f"# TYPE {metric} {mtype}")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")
