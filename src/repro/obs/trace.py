"""Request-scoped distributed tracing: spans, context propagation, export.

The serving pipeline crosses an event loop, a dispatcher thread, and a
process pool; wall-clock questions ("where did this request's 40 ms
go?") need one identity that survives all three hops.  A
:class:`Span` is one timed operation (``trace_id``/``span_id``/
``parent_id``, epoch-anchored monotonic timestamps, free-form
attributes); a :class:`TraceContext` is the two-id tuple that crosses
boundaries — picklable, so it rides to pool workers next to the
workload name exactly like the ``suite.build`` hook arguments do (see
:mod:`repro.verify.faults` for the pattern), and workers hand their
finished spans back for the parent's :class:`Tracer` to
:meth:`~Tracer.adopt`.

Finished spans are kept in a bounded buffer and — when the tracer has a
bus — emitted as :data:`~repro.obs.events.EventKind.SPAN` events on the
existing :class:`~repro.obs.events.EventBus`, so the PR 1 sinks (JSONL,
Chrome ``trace_event``) render a whole batch as one timeline alongside
service-plane events.  :func:`export_chrome` turns any span set into a
standalone Perfetto-loadable document, and :func:`validate_span_tree`
is the structural checker the property tests and the serve e2e test
share.

Timestamps are ``time.perf_counter()`` readings re-anchored to the
epoch once per process (``_ANCHOR``): monotonic within a process, and
comparable across the pool boundary to within wall-clock skew — which
is why :func:`validate_span_tree` takes a small tolerance.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from collections.abc import Iterable, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.obs.events import EventBus, EventKind, TraceEvent

#: Version stamped into span-export documents (schemas/trace.schema.json).
TRACE_EXPORT_VERSION = 1

#: Epoch-anchored monotonic clock: monotonic within a process, roughly
#: comparable across processes on one host.
_ANCHOR = time.time() - time.perf_counter()


def now() -> float:
    """Epoch-anchored monotonic seconds (see module docstring)."""
    return _ANCHOR + time.perf_counter()


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class TraceContext(NamedTuple):
    """The (trace_id, span_id) pair that crosses async/process boundaries."""

    trace_id: str
    span_id: str

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, entry: Mapping) -> "TraceContext":
        return cls(entry["trace_id"], entry["span_id"])


@dataclass
class Span:
    """One timed operation within a trace."""

    trace_id: str
    span_id: str
    name: str
    start: float
    parent_id: str | None = None
    end: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        entry: dict = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attributes:
            entry["attributes"] = self.attributes
        return entry

    @classmethod
    def from_dict(cls, entry: Mapping) -> "Span":
        return cls(
            trace_id=entry["trace_id"],
            span_id=entry["span_id"],
            name=entry["name"],
            start=entry["start"],
            parent_id=entry.get("parent_id"),
            end=entry.get("end"),
            attributes=dict(entry.get("attributes", {})),
        )


def _as_context(parent: "TraceContext | Span | tuple | None") -> TraceContext | None:
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.context
    if isinstance(parent, TraceContext):
        return parent
    return TraceContext(*parent)


class Tracer:
    """Creates, finishes, buffers, and (optionally) emits spans.

    Thread-safe: the serve dispatcher finishes spans from a worker
    thread while the event loop serves ``/trace`` reads.  ``max_spans``
    bounds the finished-span buffer (oldest evicted first), mirroring
    the bounded-by-default event bus.
    """

    def __init__(self, bus: EventBus | None = None, max_spans: int = 65536) -> None:
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.bus = bus
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._origin = now()
        self._seq = 0
        self._lock = threading.Lock()

    # -- span lifecycle ----------------------------------------------------

    def start(
        self,
        name: str,
        parent: TraceContext | Span | None = None,
        trace_id: str | None = None,
        attributes: Mapping | None = None,
    ) -> Span:
        """Begin a span; a ``parent`` pins the trace, else one is minted."""
        context = _as_context(parent)
        if trace_id is None:
            trace_id = context.trace_id if context is not None else new_trace_id()
        return Span(
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=context.span_id if context is not None else None,
            name=name,
            start=now(),
            attributes=dict(attributes or {}),
        )

    def end(self, span: Span, **attributes: object) -> Span:
        """Finish a span, record it, and emit it on the bus (if any)."""
        if span.end is None:
            span.end = now()
        if attributes:
            span.attributes.update(attributes)
        self._record(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: TraceContext | Span | None = None,
        trace_id: str | None = None,
        attributes: Mapping | None = None,
    ):
        """``with tracer.span("machine.run", parent=ctx) as s: ...``"""
        started = self.start(name, parent=parent, trace_id=trace_id, attributes=attributes)
        try:
            yield started
        except BaseException as exc:
            started.attributes.setdefault("error", repr(exc))
            raise
        finally:
            self.end(started)

    def adopt(self, entries: Iterable[Mapping | Span]) -> int:
        """Merge spans finished elsewhere (a pool worker, a JSON file)."""
        count = 0
        for entry in entries:
            span = entry if isinstance(entry, Span) else Span.from_dict(entry)
            self._record(span)
            count += 1
        return count

    def _record(self, span: Span) -> None:
        with self._lock:
            self._seq += 1
            seq = self._seq
            self._finished.append(span)
        if self.bus is not None:
            end = span.end if span.end is not None else span.start
            self.bus.emit(TraceEvent(
                cycle=max(0, int((span.start - self._origin) * 1e6)),
                kind=EventKind.SPAN,
                seq=seq,
                text=span.name,
                dur=max(1, int((end - span.start) * 1e6)),
                args=span.to_dict(),
            ))

    # -- introspection -----------------------------------------------------

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Finished spans, optionally restricted to one trace, in finish order."""
        with self._lock:
            snapshot = list(self._finished)
        if trace_id is None:
            return snapshot
        return [span for span in snapshot if span.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)


# -- validation and export -------------------------------------------------


def validate_span_tree(spans: Iterable[Span | Mapping], tolerance: float = 0.05) -> int:
    """Structurally validate one or more span trees.

    Checks, per trace: span ids are unique, every non-root span's parent
    exists in the same trace, there are no parent cycles, and intervals
    nest — a child starts no earlier than its parent (minus
    ``tolerance`` seconds of cross-process clock skew) and, when both
    have ended, ends no later.  Returns the span count; raises
    :class:`ValueError` listing every problem found.
    """
    normalized = [s if isinstance(s, Span) else Span.from_dict(s) for s in spans]
    errors: list[str] = []
    by_trace: dict[str, dict[str, Span]] = {}
    for span in normalized:
        tree = by_trace.setdefault(span.trace_id, {})
        if span.span_id in tree:
            errors.append(f"{span.trace_id}: duplicate span id {span.span_id}")
        tree[span.span_id] = span
    for trace_id, tree in by_trace.items():
        for span in tree.values():
            if span.end is not None and span.end < span.start - 1e-9:
                errors.append(
                    f"{trace_id}/{span.name}: end {span.end} before start {span.start}"
                )
            if span.parent_id is None:
                continue
            parent = tree.get(span.parent_id)
            if parent is None:
                errors.append(
                    f"{trace_id}/{span.name}: parent {span.parent_id} not in trace"
                )
                continue
            if span.start < parent.start - tolerance:
                errors.append(
                    f"{trace_id}/{span.name}: starts {parent.start - span.start:.6f}s "
                    f"before its parent {parent.name}"
                )
            if (
                span.end is not None and parent.end is not None
                and span.end > parent.end + tolerance
            ):
                errors.append(
                    f"{trace_id}/{span.name}: ends {span.end - parent.end:.6f}s "
                    f"after its parent {parent.name}"
                )
        # Cycle detection: walk each span's ancestor chain with a budget.
        for span in tree.values():
            seen = {span.span_id}
            cursor = tree.get(span.parent_id) if span.parent_id else None
            while cursor is not None:
                if cursor.span_id in seen:
                    errors.append(f"{trace_id}/{span.name}: parent chain cycles")
                    break
                seen.add(cursor.span_id)
                cursor = tree.get(cursor.parent_id) if cursor.parent_id else None
    if errors:
        preview = "; ".join(errors[:10])
        raise ValueError(f"invalid span tree ({len(errors)} problems): {preview}")
    return len(normalized)


def span_depths(spans: Iterable[Span]) -> dict[str, int]:
    """Depth of every span below its trace's root (roots are 0)."""
    by_id = {span.span_id: span for span in spans}
    depths: dict[str, int] = {}

    def depth(span: Span) -> int:
        cached = depths.get(span.span_id)
        if cached is not None:
            return cached
        parent = by_id.get(span.parent_id) if span.parent_id else None
        value = 0 if parent is None else depth(parent) + 1
        depths[span.span_id] = value
        return value

    for span in by_id.values():
        depth(span)
    return depths


def export_spans(trace_id: str, spans: Iterable[Span]) -> dict:
    """The span-export document (``schemas/trace.schema.json``)."""
    return {
        "version": TRACE_EXPORT_VERSION,
        "trace_id": trace_id,
        "spans": [span.to_dict() for span in spans],
    }


def export_chrome(spans: Iterable[Span], meta: Mapping | None = None) -> dict:
    """Spans as a standalone Chrome ``trace_event`` document.

    Spans become complete slices (``ph: "X"``) with microsecond
    timestamps relative to the earliest span; tree depth maps to the
    Perfetto row, so a request renders as a cascade:
    request → queue → dispatch → worker → machine.run.
    """
    ordered = sorted(spans, key=lambda span: (span.start, span.span_id))
    if not ordered:
        raise ValueError("no spans to export")
    depths = span_depths(ordered)
    base = ordered[0].start
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "repro trace"},
    }]
    max_depth = max(depths.values(), default=0)
    events += [
        {
            "name": "thread_name", "ph": "M", "pid": 0, "tid": level,
            "args": {"name": f"depth {level}"},
        }
        for level in range(max_depth + 1)
    ]
    for span in ordered:
        end = span.end if span.end is not None else span.start
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        args.update(span.attributes)
        events.append({
            "name": span.name,
            "cat": "trace",
            "ph": "X",
            "ts": int((span.start - base) * 1e6),
            "dur": max(1, int((end - span.start) * 1e6)),
            "pid": 0,
            "tid": depths[span.span_id],
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }
