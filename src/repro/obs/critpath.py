"""Dependence-graph critical-path analysis over the event stream.

Reconstructs, purely from a recorded trace, the producer->consumer
dependence graph with one edge per register source served to a selected
instruction: ``bypass_forward`` events carry the bypassed edges (levels
1-3) and ``operand_read`` events the register-file-served ones.  Each
edge knows its *arrival* — the first select cycle at which the producer's
value was reachable in the consumed format — so the **last-arriving**
edge of each instruction (the one the paper's Fig. 13 calls the
potentially critical bypass) falls out by comparison, and a backward
walk over last-arriving edges recovers the run's critical dependence
chain.

This makes the paper's Fig. 13 claim a measured artifact: over the
last-arriving operand edges, RB->TC format conversions are a small
fraction while load producers dominate — so serving conversions without
a dedicated bypass level costs little (§4.2), which is what licenses the
limited network Fig. 14 evaluates.

No dependency on :mod:`repro.core`: everything is reconstructed from
:class:`~repro.obs.events.TraceEvent` records.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.obs.events import EventKind, TraceEvent

#: Bypass levels below this are network forwards; at/after it the
#: register file serves the value (mirrors ``repro.backend.bypass``).
RF_LEVEL = 4


@dataclass(frozen=True)
class DepEdge:
    """One register-source dependence served to a selected consumer."""

    consumer_seq: int
    producer_seq: int
    #: 1-3: bypass level; >= RF_LEVEL (or None in old traces): register file.
    level: int | None
    case: str
    fmt: str
    #: First select cycle the value was reachable for this consumer.
    arrival: int
    producer_load: bool = False
    cross_cluster: bool = False

    @property
    def service(self) -> str:
        """Which datapath served the value: ``BYP-1``..``BYP-3`` or ``RF``."""
        if self.level is None or self.level >= RF_LEVEL:
            return "RF"
        return f"BYP-{self.level}"

    @property
    def is_conversion(self) -> bool:
        """An RB result consumed by a TC-only operation (Fig. 13's RB->TC)."""
        return self.case == "RB_TO_TC"


@dataclass
class DepNode:
    """One dynamic instruction reconstructed from its events."""

    seq: int
    text: str = ""
    select: int | None = None
    complete: int | None = None
    retire: int | None = None
    edges: list[DepEdge] = field(default_factory=list)

    def last_arriving(self) -> DepEdge | None:
        """The binding edge: strictly latest arrival, earliest listed wins
        ties (the same rule the machine uses for Fig. 13)."""
        best: DepEdge | None = None
        for edge in self.edges:
            if best is None or edge.arrival > best.arrival:
                best = edge
        return best


class DependenceGraph:
    """All instructions of one trace, with their served source edges."""

    def __init__(self) -> None:
        self.nodes: dict[int, DepNode] = {}

    def _node(self, seq: int) -> DepNode:
        node = self.nodes.get(seq)
        if node is None:
            node = self.nodes[seq] = DepNode(seq)
        return node

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "DependenceGraph":
        graph = cls()
        for event in events:
            if event.seq < 0:
                continue  # machine-level events (e.g. empty-ROB stalls)
            if event.kind is EventKind.SELECT:
                node = graph._node(event.seq)
                node.select = event.cycle
                node.text = node.text or event.text
            elif event.kind is EventKind.WRITEBACK:
                # Write-back happens the cycle after completion.
                graph._node(event.seq).complete = event.cycle - 1
            elif event.kind is EventKind.RETIRE:
                graph._node(event.seq).retire = event.cycle
            elif event.kind in (EventKind.BYPASS, EventKind.OPERAND):
                args = event.args or {}
                node = graph._node(event.seq)
                node.text = node.text or event.text
                node.edges.append(DepEdge(
                    consumer_seq=event.seq,
                    producer_seq=args.get("producer_seq", -1),
                    level=args.get("level"),
                    case=args.get("case", ""),
                    fmt=args.get("format", ""),
                    # Old traces carry no arrival; the select cycle (zero
                    # slack) is the conservative reading.
                    arrival=args.get("arrival", event.cycle),
                    producer_load=bool(args.get("producer_load", False)),
                    cross_cluster=bool(args.get("cross_cluster", False)),
                ))
        return graph

    def critical_chain(self, max_length: int = 10_000) -> list[DepEdge]:
        """Backward walk over last-arriving edges from the last completion.

        Returns the chain's edges, consumer-first (the end of the run
        backwards towards its data-flow root).
        """
        if not self.nodes:
            return []
        tail = max(
            self.nodes.values(),
            key=lambda n: (
                n.complete if n.complete is not None else (n.select or -1),
                n.seq,
            ),
        )
        chain: list[DepEdge] = []
        node = tail
        while len(chain) < max_length:
            edge = node.last_arriving()
            if edge is None:
                break
            chain.append(edge)
            producer = self.nodes.get(edge.producer_seq)
            if producer is None:
                break
            node = producer
        return chain


@dataclass
class CritPathReport:
    """Aggregated criticality of one trace's last-arriving operand edges."""

    SERVICES = ("BYP-1", "BYP-2", "BYP-3", "RF")

    nodes: int = 0
    #: instructions with at least one in-flight register source
    bound: int = 0
    by_service: dict[str, int] = field(default_factory=dict)
    conversions: int = 0
    loads: int = 0
    #: binding edges whose arrival equals the consumer's select cycle —
    #: the operand demonstrably set the issue time
    zero_slack: int = 0
    chain: list[DepEdge] = field(default_factory=list)

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "CritPathReport":
        return cls.from_graph(DependenceGraph.from_events(events))

    @classmethod
    def from_graph(cls, graph: DependenceGraph) -> "CritPathReport":
        report = cls(nodes=len(graph.nodes))
        for node in graph.nodes.values():
            edge = node.last_arriving()
            if edge is None:
                continue
            report.bound += 1
            service = edge.service
            report.by_service[service] = report.by_service.get(service, 0) + 1
            if edge.is_conversion:
                report.conversions += 1
            if edge.producer_load:
                report.loads += 1
            if node.select is not None and edge.arrival >= node.select:
                report.zero_slack += 1
        report.chain = graph.critical_chain()
        return report

    # -- fractions over the binding edges ------------------------------------------

    def service_fraction(self, service: str) -> float:
        if not self.bound:
            return 0.0
        return self.by_service.get(service, 0) / self.bound

    def conversion_fraction(self) -> float:
        return self.conversions / self.bound if self.bound else 0.0

    def load_fraction(self) -> float:
        return self.loads / self.bound if self.bound else 0.0

    def zero_slack_fraction(self) -> float:
        return self.zero_slack / self.bound if self.bound else 0.0

    def chain_services(self) -> dict[str, int]:
        """Service mix along the critical chain itself."""
        mix: dict[str, int] = {}
        for edge in self.chain:
            mix[edge.service] = mix.get(edge.service, 0) + 1
        return mix

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "bound_operands": self.bound,
            "by_service": {s: self.by_service.get(s, 0) for s in self.SERVICES},
            "conversions": self.conversions,
            "conversion_fraction": self.conversion_fraction(),
            "loads": self.loads,
            "load_fraction": self.load_fraction(),
            "zero_slack_fraction": self.zero_slack_fraction(),
            "chain_length": len(self.chain),
            "chain_services": self.chain_services(),
        }
