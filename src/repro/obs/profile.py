"""Host-side profiling of simulation runs -> ``BENCH_obs.json``.

Every uncached simulation the harness performs is timed on the host
(wall clock, simulated instructions per host-second) and appended to a
persistent ``BENCH_obs.json`` artifact, together with the result-cache
hit/miss counters.  Performance PRs read this trajectory to prove a
speedup; the file is additive, so old entries remain as history.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.utils.files import atomic_write_text

log = get_logger(__name__)

BENCH_VERSION = 1
BENCH_FILENAME = "BENCH_obs.json"


@dataclass
class RunProfile:
    """Host-side measurements for one (machine, workload) simulation."""

    machine: str
    workload: str
    wall_seconds: float
    cycles: int
    instructions: int
    #: simulated instructions retired per host second
    sim_instr_per_sec: float
    #: simulated cycles stepped per host second
    sim_cycles_per_sec: float
    timestamp: float

    @classmethod
    def measure(cls, machine: str, workload: str, wall_seconds: float,
                cycles: int, instructions: int) -> "RunProfile":
        wall = max(wall_seconds, 1e-9)
        return cls(
            machine=machine,
            workload=workload,
            wall_seconds=round(wall_seconds, 6),
            cycles=cycles,
            instructions=instructions,
            sim_instr_per_sec=round(instructions / wall, 1),
            sim_cycles_per_sec=round(cycles / wall, 1),
            timestamp=time.time(),
        )


class BenchLog:
    """Appends :class:`RunProfile` entries to a ``BENCH_obs.json`` file."""

    def __init__(self, path: Path | str | None) -> None:
        self.path = Path(path) if path is not None else None
        self.runs: list[dict] = []
        if self.path is not None and self.path.exists():
            try:
                loaded = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                log.warning("bench log %s unreadable (%s); starting fresh", self.path, exc)
                loaded = {}
            if loaded.get("version") == BENCH_VERSION:
                self.runs = list(loaded.get("runs", []))
            elif loaded:
                log.warning(
                    "bench log %s has version %r, expected %r; starting fresh",
                    self.path, loaded.get("version"), BENCH_VERSION,
                )

    def record(self, profile: RunProfile) -> None:
        self.runs.append(asdict(profile))

    def save(self, cache_metrics: MetricsRegistry | None = None) -> None:
        if self.path is None:
            return
        payload = {
            "version": BENCH_VERSION,
            "host": {
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            "runs": self.runs,
        }
        if cache_metrics is not None:
            payload["cache"] = {
                name: cache_metrics.counter(name).value
                for name in ("cache.hits", "cache.misses", "cache.invalidations")
            }
        atomic_write_text(self.path, json.dumps(payload, indent=2))
