"""Interval telemetry: per-window microarchitectural time-series.

The paper's figures are end-of-run aggregates; this module captures the
*dynamics* behind them.  An :class:`IntervalSampler` hooks into
:meth:`Machine.run <repro.core.machine.Machine.run>` and, every
``stride`` cycles, snapshots the run's cumulative counters into a
:class:`TimelineRow` — retired instructions (so per-interval IPC),
window/fetch-queue/scheduler occupancy at the boundary, and the
interval's *deltas* of the CPI-stack stall attribution, the per-level
bypass-hit histogram, the Fig. 13 RB->TC conversion count, and scheduler
contention.

Everything is a snapshot of counters the simulator maintains anyway, so
correctness does not depend on *when* within an interval events landed —
which is what makes the sampler compatible with the event-driven cycle
skip: a skipped range replays its boundary captures in closed form (see
``_replay_stall_range`` in :mod:`repro.core.machine`) and produces a
timeline bit-identical to the per-cycle loop's
(``repro.verify.differential.diff_timeline_skip`` audits that claim).

On top of the sampled rows:

* :func:`segment_phases` — change-point phase segmentation by recursive
  binary splitting of the per-interval IPC series (each split is the
  variance-reduction-maximizing cut point);
* :func:`timeline_diff` — alignment of two runs of the same workload on
  the retired-instruction axis, reporting per-interval and per-phase
  divergence for regression triage between adders/machines/widths;
* :func:`export_timeline` — the versioned export document pinned by
  ``schemas/timeline.schema.json`` and served by ``repro timeline --json``.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

#: Version stamped into export documents (schemas/timeline.schema.json).
TIMELINE_VERSION = 1

#: Default sampling stride in cycles.  Suite kernels run ~10-25k cycles,
#: so this yields 40-100 rows — fine-grained enough for phase detection,
#: coarse enough that the per-cycle hook is one integer compare.
DEFAULT_STRIDE = 256

#: Row-count bound: past this the sampler merges adjacent row pairs and
#: doubles its stride (deterministically — skip and no-skip runs decimate
#: at the same captured-row counts), bounding memory on long runs.
#: Must be even so pairwise merging is exact.
DEFAULT_MAX_ROWS = 2048


@dataclass
class TimelineRow:
    """One sampled interval: point-in-time levels + cumulative deltas.

    The interval covers cycles ``(cycle_end - cycles, cycle_end]``.
    ``stalls`` / ``bypass_levels`` hold only nonzero entries, keyed by
    stall-cause name and bypass level (as strings, for JSON stability).
    """

    cycle_end: int
    cycles: int
    #: instructions retired within the interval
    instructions: int
    #: cumulative retires at ``cycle_end`` (the diff alignment axis)
    retired_total: int
    #: reorder-buffer occupancy at the boundary cycle
    rob_occupancy: int
    #: fetch-queue depth at the boundary cycle
    fetch_occupancy: int
    #: summed scheduler occupancy at the boundary cycle
    sched_occupancy: int
    #: interval delta of the per-cycle stall attribution (CPI stack)
    stalls: dict[str, int] = field(default_factory=dict)
    #: interval delta of bypass-level hit counts (level -> hits)
    bypass_levels: dict[str, int] = field(default_factory=dict)
    #: bypassed sources delivered within the interval
    bypassed_sources: int = 0
    #: RB->TC conversion bypasses (Fig. 13's format-conversion case)
    conversions: int = 0
    #: scheduler contended-cycles delta
    contended: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def to_dict(self) -> dict:
        return {
            "cycle_end": self.cycle_end,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "retired_total": self.retired_total,
            "ipc": round(self.ipc, 6),
            "rob_occupancy": self.rob_occupancy,
            "fetch_occupancy": self.fetch_occupancy,
            "sched_occupancy": self.sched_occupancy,
            "stalls": dict(sorted(self.stalls.items())),
            "bypass_levels": dict(sorted(self.bypass_levels.items())),
            "bypassed_sources": self.bypassed_sources,
            "conversions": self.conversions,
            "contended": self.contended,
        }

    @classmethod
    def from_dict(cls, entry: dict) -> "TimelineRow":
        return cls(
            cycle_end=entry["cycle_end"],
            cycles=entry["cycles"],
            instructions=entry["instructions"],
            retired_total=entry["retired_total"],
            rob_occupancy=entry["rob_occupancy"],
            fetch_occupancy=entry["fetch_occupancy"],
            sched_occupancy=entry["sched_occupancy"],
            stalls=dict(entry.get("stalls", {})),
            bypass_levels=dict(entry.get("bypass_levels", {})),
            bypassed_sources=entry.get("bypassed_sources", 0),
            conversions=entry.get("conversions", 0),
            contended=entry.get("contended", 0),
        )

    def merge(self, other: "TimelineRow") -> "TimelineRow":
        """This interval fused with the (adjacent, later) ``other``.

        Deltas add; point-in-time levels and the cumulative total come
        from the later boundary — exactly the row a sampler with double
        the stride would have captured.
        """
        stalls = dict(self.stalls)
        for key, count in other.stalls.items():
            stalls[key] = stalls.get(key, 0) + count
        levels = dict(self.bypass_levels)
        for key, count in other.bypass_levels.items():
            levels[key] = levels.get(key, 0) + count
        return TimelineRow(
            cycle_end=other.cycle_end,
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            retired_total=other.retired_total,
            rob_occupancy=other.rob_occupancy,
            fetch_occupancy=other.fetch_occupancy,
            sched_occupancy=other.sched_occupancy,
            stalls=stalls,
            bypass_levels=levels,
            bypassed_sources=self.bypassed_sources + other.bypassed_sources,
            conversions=self.conversions + other.conversions,
            contended=self.contended + other.contended,
        )


@dataclass
class Timeline:
    """The full sampled time-series of one run."""

    machine: str
    workload: str
    stride: int
    cycles: int
    instructions: int
    rows: list[TimelineRow] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def to_dict(self) -> dict:
        return {
            "machine": self.machine,
            "workload": self.workload,
            "stride": self.stride,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, entry: dict) -> "Timeline":
        return cls(
            machine=entry.get("machine", ""),
            workload=entry.get("workload", ""),
            stride=entry.get("stride", DEFAULT_STRIDE),
            cycles=entry.get("cycles", 0),
            instructions=entry.get("instructions", 0),
            rows=[TimelineRow.from_dict(row) for row in entry.get("rows", [])],
        )

    def phases(self, **kwargs) -> list["Phase"]:
        return segment_phases(self.rows, **kwargs)


def _metric_key(key: object) -> str:
    """A distribution/histogram key as a stable string (enum -> name)."""
    if isinstance(key, enum.Enum):
        return key.name
    return str(key)


class IntervalSampler:
    """Captures a :class:`TimelineRow` every ``stride`` cycles of a run.

    The sampler reads *cumulative* state the machine maintains anyway —
    ``stats.instructions``, the CPI-stack distribution, the bypass-level
    histogram, the Fig. 13 case distribution, scheduler counters — and
    emits each interval as the delta between consecutive boundary
    snapshots, plus the point-in-time occupancies at the boundary.

    The machine drives it through two entry points:

    * the per-cycle loop calls :meth:`capture` when
      ``cycle == next_capture`` (after the stall-attribution block, so
      the snapshot covers every cycle ``<= cycle``);
    * the cycle-skip replay passes the sampler into
      ``_replay_stall_range``, which chunks the skipped range at
      ``next_capture`` boundaries and calls :meth:`capture` with the
      same ordering guarantee — occupancies are frozen during a skip,
      so both paths produce bit-identical rows.

    ``on_row`` (if given) is invoked with each finished row — the live
    streaming hook for ``repro serve``/``repro watch``.
    """

    def __init__(
        self,
        stats,
        rob,
        fetch_queue,
        schedulers,
        stride: int = DEFAULT_STRIDE,
        max_rows: int = DEFAULT_MAX_ROWS,
        on_row: Callable[[TimelineRow], None] | None = None,
    ) -> None:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        if max_rows < 2 or max_rows % 2:
            raise ValueError(f"max_rows must be even and >= 2, got {max_rows}")
        self._stats = stats
        self._rob = rob
        self._fetch_queue = fetch_queue
        self._schedulers = schedulers
        self.stride = stride
        self.max_rows = max_rows
        self.on_row = on_row
        self.rows: list[TimelineRow] = []
        #: the next cycle at which the machine should call capture()
        self.next_capture = stride - 1
        self._last_cycle_end = -1
        self._prev_instructions = 0
        self._prev_stalls: dict[str, int] = {}
        self._prev_levels: dict[str, int] = {}
        self._prev_bypassed = 0
        self._prev_conversions = 0
        self._prev_contended = 0
        self._finalized = False

    # -- snapshot helpers --------------------------------------------------

    def _stall_counts(self) -> dict[str, int]:
        return {
            _metric_key(key): count
            for key, count in self._stats.stall_causes.as_dict().items()
        }

    def _conversion_count(self) -> int:
        for key, count in self._stats.bypass_cases.as_dict().items():
            if _metric_key(key) == "RB_TO_TC":
                return count
        return 0

    @staticmethod
    def _delta(now: dict[str, int], prev: dict[str, int]) -> dict[str, int]:
        out = {}
        for key, count in now.items():
            change = count - prev.get(key, 0)
            if change:
                out[key] = change
        return out

    # -- capture -----------------------------------------------------------

    def capture(self, cycle: int) -> None:
        """Close the interval ending at ``cycle`` (inclusive) as a row."""
        if cycle <= self._last_cycle_end:
            return
        stats = self._stats
        stalls = self._stall_counts()
        # peek: get-or-create would register an empty histogram and
        # perturb the stats' serialized (golden) form.
        hist = stats.metrics.peek_histogram("bypass.source_level")
        levels = (
            {str(value): count for value, count in hist.counts.items()}
            if hist is not None else {}
        )
        conversions = self._conversion_count()
        contended = sum(s.contended_cycles for s in self._schedulers)
        row = TimelineRow(
            cycle_end=cycle,
            cycles=cycle - self._last_cycle_end,
            instructions=stats.instructions - self._prev_instructions,
            retired_total=stats.instructions,
            rob_occupancy=self._rob.occupancy,
            fetch_occupancy=len(self._fetch_queue),
            sched_occupancy=sum(s.occupancy for s in self._schedulers),
            stalls=self._delta(stalls, self._prev_stalls),
            bypass_levels=self._delta(levels, self._prev_levels),
            bypassed_sources=stats.bypassed_sources - self._prev_bypassed,
            conversions=conversions - self._prev_conversions,
            contended=contended - self._prev_contended,
        )
        self._last_cycle_end = cycle
        self._prev_instructions = stats.instructions
        self._prev_stalls = stalls
        self._prev_levels = levels
        self._prev_bypassed = stats.bypassed_sources
        self._prev_conversions = conversions
        self._prev_contended = contended
        self.rows.append(row)
        if self.on_row is not None:
            self.on_row(row)
        self.next_capture = cycle + self.stride
        if len(self.rows) >= self.max_rows:
            self._decimate()

    def _decimate(self) -> None:
        """Merge adjacent row pairs and double the stride.

        Triggered purely by the captured-row count, so skip and no-skip
        runs decimate at the same points and stay bit-identical.
        """
        self.rows = [
            self.rows[i].merge(self.rows[i + 1])
            for i in range(0, len(self.rows) - 1, 2)
        ]
        self.stride *= 2
        self.next_capture = self._last_cycle_end + self.stride

    def finalize(self, final_cycle: int) -> Timeline:
        """Capture the trailing partial interval and build the timeline."""
        if not self._finalized:
            self.capture(final_cycle)
            self._finalized = True
        stats = self._stats
        return Timeline(
            machine=stats.machine,
            workload=stats.workload,
            stride=self.stride,
            cycles=final_cycle + 1,
            instructions=stats.instructions,
            rows=self.rows,
        )


# ---------------------------------------------------------------------------
# Phase segmentation
# ---------------------------------------------------------------------------

@dataclass
class Phase:
    """One detected execution phase: a run of rows with similar IPC."""

    #: row span [start_row, end_row)
    start_row: int
    end_row: int
    start_cycle: int
    end_cycle: int
    cycles: int
    instructions: int
    ipc: float
    mean_rob_occupancy: float
    #: heaviest non-BASE stall cause over the phase ("" when none)
    dominant_stall: str

    def to_dict(self) -> dict:
        return {
            "start_row": self.start_row,
            "end_row": self.end_row,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": round(self.ipc, 6),
            "mean_rob_occupancy": round(self.mean_rob_occupancy, 3),
            "dominant_stall": self.dominant_stall,
        }


def segment_phases(
    rows: Sequence[TimelineRow],
    max_phases: int = 8,
    min_rows: int = 3,
    min_gain: float = 0.1,
) -> list[Phase]:
    """Change-point detection on the per-interval IPC series.

    Top-down binary segmentation: starting from one segment covering
    every row, repeatedly apply the split that most reduces the summed
    squared error (variance x length) of the IPC series, until
    ``max_phases`` segments exist or the best available split's relative
    SSE reduction falls below ``min_gain``.  Splits never create a
    segment shorter than ``min_rows`` rows.  With prefix sums each sweep
    is O(rows), so the whole segmentation is O(max_phases * rows) and
    fully deterministic.
    """
    n = len(rows)
    if n == 0:
        return []
    ipc = [row.ipc for row in rows]
    prefix = [0.0] * (n + 1)
    prefix_sq = [0.0] * (n + 1)
    for i, value in enumerate(ipc):
        prefix[i + 1] = prefix[i] + value
        prefix_sq[i + 1] = prefix_sq[i] + value * value

    def sse(i: int, j: int) -> float:
        length = j - i
        if length <= 0:
            return 0.0
        total = prefix[j] - prefix[i]
        return max(0.0, (prefix_sq[j] - prefix_sq[i]) - total * total / length)

    segments: list[tuple[int, int]] = [(0, n)]
    while len(segments) < max_phases:
        best_gain = 0.0
        best: tuple[int, int, int] | None = None  # (segment index, i, split)
        for index, (i, j) in enumerate(segments):
            if j - i < 2 * min_rows:
                continue
            whole = sse(i, j)
            if whole <= 0.0:
                continue
            for split in range(i + min_rows, j - min_rows + 1):
                gain = (whole - sse(i, split) - sse(split, j)) / whole
                if gain > best_gain:
                    best_gain = gain
                    best = (index, i, split)
        if best is None or best_gain < min_gain:
            break
        index, i, split = best
        j = segments[index][1]
        segments[index:index + 1] = [(i, split), (split, j)]
    return [_summarize_phase(rows, i, j) for i, j in segments]


def _summarize_phase(rows: Sequence[TimelineRow], i: int, j: int) -> Phase:
    span = rows[i:j]
    cycles = sum(row.cycles for row in span)
    instructions = sum(row.instructions for row in span)
    stalls: dict[str, int] = {}
    for row in span:
        for key, count in row.stalls.items():
            stalls[key] = stalls.get(key, 0) + count
    dominant = ""
    best = 0
    for key in sorted(stalls):
        if key != "BASE" and stalls[key] > best:
            best = stalls[key]
            dominant = key
    start_cycle = rows[i].cycle_end - rows[i].cycles + 1
    return Phase(
        start_row=i,
        end_row=j,
        start_cycle=start_cycle,
        end_cycle=rows[j - 1].cycle_end,
        cycles=cycles,
        instructions=instructions,
        ipc=instructions / cycles if cycles else 0.0,
        mean_rob_occupancy=(
            sum(row.rob_occupancy for row in span) / len(span) if span else 0.0
        ),
        dominant_stall=dominant,
    )


# ---------------------------------------------------------------------------
# Run diffing (alignment on the retired-instruction axis)
# ---------------------------------------------------------------------------

#: Relative per-bucket cycle gap beyond which two runs count as diverged.
DIVERGENCE_TOLERANCE = 0.05

#: Upper bound on alignment buckets in a diff.
MAX_DIFF_BUCKETS = 64


def _cycles_to_retire(rows: Sequence[TimelineRow], target: float) -> float:
    """Interpolated cycle count by which ``target`` instructions retired.

    Cycle space starts at -1 (the run's first interval covers cycles
    ``[0, cycle_end]``), so a whole-run target returns ~``cycles - 1``.
    """
    if target <= 0:
        return -1.0
    prev_total = 0
    prev_cycle = -1.0
    for row in rows:
        if row.retired_total >= target:
            if row.instructions <= 0:
                return float(row.cycle_end)
            fraction = (target - prev_total) / row.instructions
            return prev_cycle + fraction * row.cycles
        prev_total = row.retired_total
        prev_cycle = float(row.cycle_end)
    return prev_cycle


@dataclass
class TimelineDiff:
    """Two runs of one workload aligned by retired-instruction count."""

    workload: str
    a_machine: str
    b_machine: str
    #: instructions both runs retired (the aligned span)
    aligned_instructions: int
    #: per-bucket comparison over the aligned span
    buckets: list[dict]
    #: timeline A's phases, each mapped onto B's cycle cost
    phases: list[dict]
    summary: dict

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "a_machine": self.a_machine,
            "b_machine": self.b_machine,
            "aligned_instructions": self.aligned_instructions,
            "buckets": self.buckets,
            "phases": self.phases,
            "summary": self.summary,
        }

    def describe(self) -> str:
        lines = [
            f"timeline diff on {self.workload}: "
            f"{self.a_machine} (A) vs {self.b_machine} (B), "
            f"{self.aligned_instructions} instructions aligned",
            f"  total cycles A {self.summary['a_cycles']} "
            f"B {self.summary['b_cycles']} "
            f"(B/A {self.summary['cycle_ratio']:.3f})",
        ]
        first = self.summary.get("first_divergence_instruction")
        if first is None:
            lines.append(
                f"  no bucket diverged beyond "
                f"{DIVERGENCE_TOLERANCE:.0%} relative cycles"
            )
        else:
            lines.append(
                f"  first divergence (> {DIVERGENCE_TOLERANCE:.0%} cycles) "
                f"at ~instruction {first}"
            )
        for phase in self.phases:
            lines.append(
                f"  phase rows {phase['start_row']}-{phase['end_row']}: "
                f"{phase['instructions']} instr, "
                f"IPC A {phase['a_ipc']:.3f} B {phase['b_ipc']:.3f} "
                f"(B/A cycles {phase['cycle_ratio']:.3f})"
            )
        return "\n".join(lines)


def timeline_diff(a: Timeline, b: Timeline) -> TimelineDiff:
    """Compare two timelines of the *same workload* across machines/modes.

    Cycle counts are not comparable directly (a slower machine's interval
    k covers different work), so both runs are resampled onto a common
    retired-instruction grid: bucket i compares the cycles each machine
    needed to retire the same slice of the program.  Phases detected on
    A's timeline are mapped onto B through the same alignment.
    """
    if a.workload != b.workload:
        raise ValueError(
            f"cannot diff timelines of different workloads: "
            f"{a.workload!r} vs {b.workload!r}"
        )
    aligned = min(a.instructions, b.instructions)
    buckets: list[dict] = []
    count = min(MAX_DIFF_BUCKETS, max(1, min(len(a.rows), len(b.rows))))
    first_divergence: int | None = None
    max_ipc_gap = 0.0
    if aligned > 0:
        prev_a = prev_b = -1.0
        for i in range(1, count + 1):
            target = aligned * i / count
            at_a = _cycles_to_retire(a.rows, target)
            at_b = _cycles_to_retire(b.rows, target)
            step = aligned / count
            a_cycles = max(at_a - prev_a, 1e-9)
            b_cycles = max(at_b - prev_b, 1e-9)
            a_ipc = step / a_cycles
            b_ipc = step / b_cycles
            gap = abs(b_ipc - a_ipc)
            max_ipc_gap = max(max_ipc_gap, gap)
            diverged = abs(b_cycles - a_cycles) / max(a_cycles, 1.0) > DIVERGENCE_TOLERANCE
            if diverged and first_divergence is None:
                first_divergence = int(target)
            buckets.append({
                "instructions": int(target),
                "a_cycles": round(at_a, 1),
                "b_cycles": round(at_b, 1),
                "a_ipc": round(a_ipc, 4),
                "b_ipc": round(b_ipc, 4),
                "ipc_delta": round(b_ipc - a_ipc, 4),
                "diverged": diverged,
            })
            prev_a, prev_b = at_a, at_b
    phases: list[dict] = []
    for phase in segment_phases(a.rows):
        first = a.rows[phase.start_row]
        start_total = min(first.retired_total - first.instructions, aligned)
        end_total = min(a.rows[phase.end_row - 1].retired_total, aligned)
        span = end_total - start_total
        if span <= 0:
            continue
        a_cost = max(
            _cycles_to_retire(a.rows, end_total) - _cycles_to_retire(a.rows, start_total),
            1e-9,
        )
        b_cost = max(
            _cycles_to_retire(b.rows, end_total) - _cycles_to_retire(b.rows, start_total),
            1e-9,
        )
        phases.append({
            "start_row": phase.start_row,
            "end_row": phase.end_row,
            "instructions": span,
            "dominant_stall": phase.dominant_stall,
            "a_ipc": round(span / a_cost, 4),
            "b_ipc": round(span / b_cost, 4),
            "cycle_ratio": round(b_cost / a_cost, 4),
        })
    a_total = _cycles_to_retire(a.rows, aligned) + 1
    b_total = _cycles_to_retire(b.rows, aligned) + 1
    summary = {
        "a_cycles": round(a_total, 1),
        "b_cycles": round(b_total, 1),
        "cycle_delta": round(b_total - a_total, 1),
        "cycle_ratio": round(b_total / a_total, 4) if a_total else 0.0,
        "max_ipc_gap": round(max_ipc_gap, 4),
        "first_divergence_instruction": first_divergence,
    }
    return TimelineDiff(
        workload=a.workload,
        a_machine=a.machine,
        b_machine=b.machine,
        aligned_instructions=aligned,
        buckets=buckets,
        phases=phases,
        summary=summary,
    )


# ---------------------------------------------------------------------------
# Export + rendering
# ---------------------------------------------------------------------------

def export_timeline(timeline: Timeline) -> dict:
    """The versioned export document (schemas/timeline.schema.json)."""
    return {
        "version": TIMELINE_VERSION,
        "machine": timeline.machine,
        "workload": timeline.workload,
        "stride": timeline.stride,
        "cycles": timeline.cycles,
        "instructions": timeline.instructions,
        "ipc": round(timeline.ipc, 6),
        "rows": [row.to_dict() for row in timeline.rows],
        "phases": [phase.to_dict() for phase in timeline.phases()],
    }


def render_timeline_text(timeline: Timeline, max_rows: int = 40) -> str:
    """Human-readable phase + interval tables for ``repro timeline``."""
    from repro.utils.tables import format_table

    lines = [
        f"{timeline.machine} on {timeline.workload}: "
        f"{timeline.instructions} instructions, {timeline.cycles} cycles, "
        f"IPC {timeline.ipc:.3f} "
        f"({len(timeline.rows)} intervals, stride {timeline.stride})",
    ]
    phases = timeline.phases()
    phase_rows = [
        [
            f"{phase.start_cycle}-{phase.end_cycle}",
            phase.instructions,
            f"{phase.ipc:.3f}",
            f"{phase.mean_rob_occupancy:.1f}",
            phase.dominant_stall or "-",
        ]
        for phase in phases
    ]
    lines.append(format_table(
        ["cycles", "instr", "IPC", "mean ROB", "dominant stall"],
        phase_rows, title=f"{len(phases)} phases",
    ))
    rows = timeline.rows
    shown = rows
    if len(rows) > max_rows:
        step = -(-len(rows) // max_rows)
        shown = rows[::step]
    interval_rows = [
        [
            row.cycle_end,
            row.instructions,
            f"{row.ipc:.3f}",
            row.rob_occupancy,
            row.sched_occupancy,
            row.conversions,
            _bar(row.ipc, max((r.ipc for r in rows), default=0.0)),
        ]
        for row in shown
    ]
    title = "intervals" if shown is rows else (
        f"intervals (every {step}th of {len(rows)})"
    )
    lines.append(format_table(
        ["cycle", "instr", "IPC", "ROB", "sched", "conv", ""],
        interval_rows, title=title,
    ))
    return "\n".join(lines)


def _bar(value: float, peak: float, width: int = 24) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1, round(width * value / peak)) if value > 0 else ""
