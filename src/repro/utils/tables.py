"""Plain-text table rendering for the experiment harness.

All the paper's figures are bar charts of IPC; the harness renders them as
aligned text tables (one row per benchmark, one column per machine) plus an
ASCII bar series, so the "figure" can be regenerated and diffed in CI.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * width for width in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_bar_chart(
    labels: Sequence[str],
    series: dict,
    width: int = 40,
    title: str | None = None,
) -> str:
    """Render grouped horizontal ASCII bars.

    ``series`` maps a series name (e.g. machine name) to one value per label
    (e.g. per benchmark).  Bars are scaled to the global maximum.
    """
    if not series:
        raise ValueError("no series to chart")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(labels)} labels"
            )
    peak = max(max(values) for values in series.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(s) for s in list(labels) + list(series))
    out = []
    if title:
        out.append(title)
    for i, label in enumerate(labels):
        out.append(f"{label}:")
        for name, values in series.items():
            bar = "#" * max(1, round(values[i] / peak * width))
            out.append(f"  {name.ljust(label_width)} {bar} {values[i]:.3f}")
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
