"""Statistics helpers used by the experiment harness.

The paper reports arithmetic means of IPC for the per-suite figures and a
harmonic mean over all 20 benchmarks for the limited-bypass study (Fig. 14).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean.  Raises ``ValueError`` on an empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; every value must be strictly positive."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires strictly positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; every value must be strictly positive."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


class Distribution:
    """A counter over categorical outcomes with fraction reporting.

    Used for e.g. the Figure 13 bypass-case breakdown and the Section 5.2
    bypass-level usage histogram.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def record(self, category: object, amount: int = 1) -> None:
        """Add ``amount`` observations of ``category``."""
        self._counts[category] += amount

    @property
    def total(self) -> int:
        """Total number of observations."""
        return sum(self._counts.values())

    def count(self, category: object) -> int:
        """Observations of ``category`` (0 if never seen)."""
        return self._counts.get(category, 0)

    def fraction(self, category: object) -> float:
        """Fraction of observations in ``category`` (0.0 if empty)."""
        total = self.total
        if total == 0:
            return 0.0
        return self._counts.get(category, 0) / total

    def fractions(self) -> dict:
        """Mapping of category -> fraction, sorted by descending count."""
        total = self.total
        if total == 0:
            return {}
        return {
            category: count / total
            for category, count in self._counts.most_common()
        }

    def merge(self, other: "Distribution") -> None:
        """Fold another distribution's counts into this one."""
        self._counts.update(other._counts)

    def as_dict(self) -> Mapping[object, int]:
        """Raw counts as a plain dict (the serialization form: round-trips
        through :meth:`from_dict`)."""
        return dict(self._counts)

    @classmethod
    def from_dict(cls, counts: Mapping[object, int]) -> "Distribution":
        """Rebuild a distribution from :meth:`as_dict` output; zero or
        negative counts are rejected (they cannot be observations)."""
        dist = cls()
        for category, count in counts.items():
            if count < 0:
                raise ValueError(f"negative count for {category!r}: {count}")
            if count:
                dist.record(category, count)
        return dist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        return f"Distribution({dict(self._counts.most_common())})"
