"""Shared utilities: 64-bit two's-complement helpers, statistics, report tables."""

from repro.utils.bitops import (
    MASK64,
    SIGN64,
    bit,
    extract_bits,
    sign_extend,
    to_signed,
    to_unsigned,
    wrap64,
)
from repro.utils.stats import Distribution, geometric_mean, harmonic_mean, mean
from repro.utils.tables import format_table

__all__ = [
    "MASK64",
    "SIGN64",
    "bit",
    "extract_bits",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "wrap64",
    "Distribution",
    "geometric_mean",
    "harmonic_mean",
    "mean",
    "format_table",
]
