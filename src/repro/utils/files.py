"""Small filesystem helpers shared by the persistence layers."""

from __future__ import annotations

import os
import tempfile
import zlib
from pathlib import Path


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically and durably (temp + fsync + rename).

    A crash or kill mid-write can never leave a truncated file at
    ``path``: the content lands in a temporary sibling first and is
    moved into place with :func:`os.replace`, which is atomic on the
    same filesystem.  The temp file is fsync'd before the rename, so a
    power loss right after the replace cannot surface an empty (never
    flushed) file under the final name.  The parent directory is created
    if needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def stable_shard(key: str, shards: int) -> int:
    """Map ``key`` to a shard index in ``[0, shards)``, stably across runs.

    Uses CRC-32 rather than :func:`hash` because the latter is salted per
    process (``PYTHONHASHSEED``): a key must land in the same shard file
    no matter which process — service, pool worker, or a later restart —
    computes the mapping.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    return zlib.crc32(key.encode("utf-8")) % shards


def shard_path(base_dir: Path | str, index: int) -> Path:
    """The file that backs shard ``index`` of a sharded store at ``base_dir``."""
    return Path(base_dir) / f"shard-{index:03d}.json"
