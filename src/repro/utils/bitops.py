"""Helpers for 64-bit two's-complement arithmetic on Python integers.

The simulator stores architectural register values as unsigned 64-bit
integers (``0 <= v < 2**64``).  These helpers convert between the signed
and unsigned views and perform the bit surgery the ISA semantics need.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63
MASK32 = (1 << 32) - 1


def wrap64(value: int) -> int:
    """Reduce an arbitrary Python int to its unsigned 64-bit representation."""
    return value & MASK64


def to_signed(value: int, width: int = 64) -> int:
    """Interpret the low ``width`` bits of ``value`` as a signed integer."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    mask = (1 << width) - 1
    value &= mask
    sign = 1 << (width - 1)
    if value & sign:
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int = 64) -> int:
    """Interpret a signed integer as its unsigned ``width``-bit representation."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return value & ((1 << width) - 1)


def sign_extend(value: int, from_width: int, to_width: int = 64) -> int:
    """Sign-extend the low ``from_width`` bits of ``value`` to ``to_width`` bits."""
    if not 0 < from_width <= to_width:
        raise ValueError(f"invalid widths: from {from_width} to {to_width}")
    return to_unsigned(to_signed(value, from_width), to_width)


def bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` (0 = least significant)."""
    return (value >> index) & 1


def extract_bits(value: int, low: int, count: int) -> int:
    """Return ``count`` bits of ``value`` starting at bit ``low``."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return (value >> low) & ((1 << count) - 1)


def count_leading_zeros(value: int, width: int = 64) -> int:
    """Number of leading zero bits in the ``width``-bit representation."""
    value &= (1 << width) - 1
    if value == 0:
        return width
    return width - value.bit_length()


def count_trailing_zeros(value: int, width: int = 64) -> int:
    """Number of trailing zero bits in the ``width``-bit representation."""
    value &= (1 << width) - 1
    if value == 0:
        return width
    return (value & -value).bit_length() - 1


def popcount(value: int, width: int = 64) -> int:
    """Number of set bits in the ``width``-bit representation."""
    return (value & ((1 << width) - 1)).bit_count()
