"""repro — reproduction of Brown & Patt (HPCA 2002).

*Using Internal Redundant Representations and Limited Bypass to Support
Pipelined Adders and Register Files.*

Top-level convenience surface; the subpackages are the real API:

* :mod:`repro.rb` — redundant binary arithmetic (§3);
* :mod:`repro.circuits` — gate-level adder/SAM netlists and delays (§3.4);
* :mod:`repro.isa` — the mini Alpha-like ISA, assembler, interpreter,
  and the redundant-datapath shadow checker;
* :mod:`repro.frontend` / :mod:`repro.mem` / :mod:`repro.backend` — the
  simulator substrates (prediction+fetch, memory hierarchy, scheduling
  and bypass);
* :mod:`repro.core` — machine configurations and the cycle-level
  simulator (§4-5);
* :mod:`repro.workloads` — the 20 SPEC-like kernels and generators;
* :mod:`repro.harness` — experiments regenerating every table and figure.
"""

from repro.core import (
    Machine,
    MachineConfig,
    SimStats,
    all_paper_machines,
    baseline,
    ideal,
    ideal_limited,
    rb_full,
    rb_limited,
    simulate,
)
from repro.isa import assemble, run_program
from repro.rb import RBALU, RBNumber

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "assemble",
    "run_program",
    "simulate",
    "Machine",
    "MachineConfig",
    "SimStats",
    "baseline",
    "rb_limited",
    "rb_full",
    "ideal",
    "ideal_limited",
    "all_paper_machines",
    "RBALU",
    "RBNumber",
]
