"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show the available machine models and benchmark kernels.
run
    Simulate a suite workload (or an assembly file) on one machine.
    ``--json`` prints machine-readable statistics.
trace
    Capture the cycle-stamped pipeline event stream of a run as JSONL
    or Chrome ``trace_event`` JSON (opens in Perfetto/chrome://tracing).
    Bounded to the newest ``--buffer`` events by default; ``--full``
    keeps everything.
explain
    Side-by-side CPI stacks and critical-path breakdowns for several
    machine models on one workload (text, ``--json``, ``--markdown``).
mix
    Print the Table 1 instruction-mix classification for a workload.
delays
    Print the §3.4 adder critical-path comparison.
shadow
    Run a workload through the redundant-binary shadow interpreter.
pipeline
    Render a Figure 5/7-style pipeline diagram from a traced run.
report
    Regenerate EXPERIMENTS.md (the full sweep; cached).  ``--jobs N``
    fans uncached simulations over a process pool.
bench
    Measure simulator performance (cycle-skipping throughput and the
    serial-vs-parallel sweep), write ``BENCH_perf.json``, and append the
    run to the ``BENCH_history.jsonl`` longitudinal record.
    ``--compare`` gates the run against the trailing-window median of
    prior same-host runs and exits nonzero on a regression.
profile
    Run a workload under the opt-in stack sampler and report where the
    simulator's wall-clock goes per pipeline stage
    (fetch/schedule/execute/bypass/...); ``-o`` writes collapsed stacks
    for flamegraph.pl / speedscope.
check
    Differential-testing and invariant audit: fuzzed kernels through
    every "bit-identical" execution-mode pair, plus the paper-shape
    invariants (CPI conservation, Fig. 14 monotonicity, machine
    ordering, shadow-state fidelity).  ``--quick`` bounds it for CI;
    ``-o report.json`` writes the machine-readable report.
pareto
    Adder design-space sweep: every netlist through the BDD equivalence
    gate, then adder choice × machine width × workload through the
    batched simulator, emitting the delay × IPC Pareto frontier
    (``--json`` / ``-o``; schemas/pareto.schema.json).
serve
    Long-lived batch-simulation HTTP/JSON service: accepts (machine,
    workload, config-override) jobs at ``POST /jobs``, coalesces
    duplicates, batches them onto the process pool with retry and
    serial degradation, and serves repeats from the sharded result
    cache.  ``GET /healthz``, ``/metrics``, and ``/events`` expose the
    service state.
timeline
    Per-interval microarchitectural time-series of one run: IPC,
    window/fetch occupancy, stall-cause mix, bypass-level hits, and
    RB->TC conversions per sampling window, plus change-point phase
    segmentation.  ``--json`` writes the versioned export
    (schemas/timeline.schema.json); ``--diff MACHINE`` aligns a second
    machine's run by retired-instruction count and reports where the
    two diverge.
watch
    Submit one job to a running ``repro serve`` instance with
    ``"wait": false`` and follow its Server-Sent-Events stream live:
    dispatch lifecycle, timeline rows as the simulation produces them,
    and the terminal summary.

Every command accepts ``-v``/``-vv`` for INFO/DEBUG progress logging and
``--log-json`` for machine-parseable one-object-per-line log output.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import simulate
from repro.core.config import MachineConfig
from repro.core.presets import MACHINE_FACTORIES, resolve_machine
from repro.harness.experiments import dynamic_mix, sec34_adder_delays
from repro.isa.assembler import assemble
from repro.isa.classify import TABLE1_ROWS
from repro.isa.shadow import shadow_check
from repro.obs.log import get_logger, setup_logging
from repro.utils.tables import format_table
from repro.workloads.suite import all_workloads, build, get_workload

log = get_logger(__name__)

def _machine_config(args: argparse.Namespace) -> MachineConfig:
    try:
        return resolve_machine(
            args.machine, args.width, steering=getattr(args, "steering", None)
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _load_program(target: str):
    path = Path(target)
    if path.suffix in (".s", ".asm") or path.exists():
        log.info("assembling %s", path)
        return assemble(path.read_text(), path.stem)
    log.info("building suite workload %s", target)
    return build(target)


def cmd_list(_args: argparse.Namespace) -> int:
    print("machines (pass --width 4 or 8):")
    for name in MACHINE_FACTORIES:
        print(f"  {name}")
    print("  ideal-no-<levels>   (Fig. 14 limited-bypass variants, e.g. ideal-no-2,3)")
    print("\nworkloads:")
    rows = [[w.name, w.suite, w.description] for w in all_workloads()]
    print(format_table(["name", "suite", "description"], rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import time

    config = _machine_config(args)
    program = _load_program(args.workload)
    log.info("simulating %s on %s ...", config.name, program.name)
    started = time.perf_counter()
    stats = simulate(
        config, program, cycle_skip=not args.no_skip, engine=args.engine
    )
    elapsed = time.perf_counter() - started
    log.info(
        "simulated %d instructions in %d cycles in %.2fs (%.0f instr/s)",
        stats.instructions, stats.cycles, elapsed,
        stats.instructions / elapsed if elapsed else 0.0,
    )
    if args.json:
        entry = stats.to_dict()
        entry["derived"] = {
            "ipc": stats.ipc,
            "misprediction_rate": stats.misprediction_rate,
            "dcache_hit_rate": stats.dcache_hit_rate,
            "bypassed_instruction_fraction": stats.bypassed_instruction_fraction(),
            "conversion_bypass_fraction": stats.conversion_bypass_fraction(),
            "cross_cluster_fraction": stats.cross_cluster_fraction(),
            "mean_scheduler_occupancy": stats.mean_scheduler_occupancy(),
        }
        print(json.dumps(entry, indent=2))
        return 0
    print(config.describe())
    print(stats.summary())
    if config.num_clusters > 1:
        print(f"  cross-cluster bypasses {stats.cross_cluster_fraction():.2%}")
    return 0


#: Default event buffer for ``repro trace``: enough for any suite kernel's
#: tail while keeping long runs bounded (see README, Observability).
TRACE_BUFFER_EVENTS = 1 << 18


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.machine import Machine
    from repro.obs.events import EventBus, ipc_from_events
    from repro.obs.sinks import ChromeTraceSink, JSONLSink

    config = _machine_config(args)
    program = _load_program(args.workload)
    if args.output is not None:
        path = Path(args.output)
    else:
        extension = "json" if args.format == "chrome" else "jsonl"
        path = Path(f"trace_{program.name}_{config.name}.{extension}")
    sink = ChromeTraceSink(path) if args.format == "chrome" else JSONLSink(path)
    capacity = None if args.full else args.buffer
    bus = EventBus([sink], capacity=capacity)
    # The span tracer is deliberately NOT bound to the bus: spans finish
    # after Machine.run closes the bus, so they are written separately.
    tracer = root_span = run_span = None
    if args.spans is not None:
        from repro.obs.trace import Tracer
        tracer = Tracer()
        root_span = tracer.start("cli.trace", attributes={
            "machine": config.name, "workload": program.name,
        })
        run_span = tracer.start("machine.run", parent=root_span)
    stats = Machine(config).run(program, bus=bus)
    if tracer is not None:
        from repro.obs.trace import export_spans, validate_span_tree
        tracer.end(run_span, cycles=stats.cycles, instructions=stats.instructions)
        tracer.end(root_span)
        spans = tracer.spans(root_span.trace_id)
        validate_span_tree(spans)
        spans_path = Path(args.spans)
        spans_path.parent.mkdir(parents=True, exist_ok=True)
        spans_path.write_text(
            json.dumps(export_spans(root_span.trace_id, spans), indent=2) + "\n"
        )
        print(f"wrote {len(spans)} spans to {spans_path} "
              f"(trace {root_span.trace_id})")
    print(f"wrote {len(bus.events)} events to {path} ({args.format} format)")
    if bus.dropped:
        print(f"  kept the newest {capacity} events; dropped {bus.dropped} older "
              f"ones (pass --full or a larger --buffer for everything)")
        print(f"  {stats.instructions} instructions, {stats.cycles} cycles, "
              f"IPC {stats.ipc:.3f}")
    else:
        print(f"  {stats.instructions} instructions, {stats.cycles} cycles, "
              f"IPC {stats.ipc:.3f} (from retire events: "
              f"{ipc_from_events(bus.events):.3f})")
    if args.format == "chrome":
        print("  open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.machine import Machine
    from repro.obs.critpath import CritPathReport
    from repro.obs.explain import (
        CPIStack,
        Explanation,
        explanations_to_json,
        render_explanations_markdown,
        render_explanations_text,
    )
    from repro.obs.events import EventBus
    from repro.obs.sinks import CollectorSink

    program = _load_program(args.workload)
    explanations = []
    for name in args.machines.split(","):
        machine_args = argparse.Namespace(
            machine=name.strip(), width=args.width, steering=None
        )
        config = _machine_config(machine_args)
        machine = Machine(config)
        sink = CollectorSink()
        stats = machine.run(program, bus=EventBus([sink]))
        stack = CPIStack.from_stats(stats)
        stack.validate()
        explanations.append(Explanation(
            machine=config.name,
            workload=program.name,
            cycles=stats.cycles,
            instructions=stats.instructions,
            ipc=stats.ipc,
            stack=stack,
            critpath=CritPathReport.from_events(sink.events),
            hole_summary=machine.bypass.hole_summary(),
        ))
    if args.json:
        rendered = json.dumps(explanations_to_json(explanations), indent=2)
    elif args.markdown:
        rendered = render_explanations_markdown(explanations)
    else:
        rendered = render_explanations_text(explanations)
    if args.output is not None:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + ("\n" if not rendered.endswith("\n") else ""))
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def cmd_mix(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    mix = dynamic_mix(workload.name)
    rows = [
        [cls.value, mix.fraction(cls), paper]
        for cls, paper in TABLE1_ROWS
    ]
    print(format_table(["class", workload.name, "paper (SPEC)"], rows,
                       title=f"Table 1 mix for {workload.name}"))
    return 0


def cmd_delays(_args: argparse.Namespace) -> int:
    print(sec34_adder_delays().text())
    return 0


def cmd_shadow(args: argparse.Namespace) -> int:
    program = _load_program(args.workload)
    report = shadow_check(program)
    print(f"{program.name}: {report.instructions} instructions, "
          f"{report.total_checks()} redundant-datapath checks "
          f"(rb={report.rb_checks} conversions={report.conversion_checks} "
          f"sam={report.sam_checks} tests={report.test_checks})")
    if report.clean:
        print("clean: redundant and integer datapaths agree everywhere")
        return 0
    for mismatch in report.mismatches[:10]:
        print(f"  {mismatch}")
    return 1


def cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.core.machine import Machine
    from repro.harness.pipeview import pipeline_diagram
    config = _machine_config(args)
    program = _load_program(args.workload)
    stats = Machine(config).run(program, record_trace=True)
    print(config.describe())
    print(pipeline_diagram(
        stats.trace, first=args.first, count=args.count,
        include_frontend=args.frontend,
    ))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import write_experiments_md
    path = write_experiments_md(args.output, jobs=args.jobs)
    print(f"wrote {path}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import perfbench
    from repro.harness.perfhistory import (
        HISTORY_FILENAME,
        compare,
        history_record,
        load_history,
    )

    if args.history is not None:
        history_path = Path(args.history)
    elif args.output is not None:
        history_path = Path(args.output).parent / HISTORY_FILENAME
    else:
        history_path = (
            Path(perfbench.__file__).resolve().parents[3] / HISTORY_FILENAME
        )

    if args.compare_only:
        history = load_history(history_path)
        if not history:
            print(f"no perf history at {history_path}; run `repro bench` first")
            return 2
        report = compare(
            history[-1], history[:-1],
            tolerance=args.tolerance, window=args.window,
        )
        print(report.summary())
        return 0 if report.ok else 1

    prior = load_history(history_path)
    payload = perfbench.write_bench_perf(
        path=args.output, jobs=args.jobs, kernels=args.kernels,
        history_path=history_path, batched_workload=args.batched_workload,
    )
    for entry in payload["throughput"]:
        # Older payload shapes (and the gate tests' stubs) have no
        # per-engine breakdown; fall back to the headline row.
        engines = entry.get("engines") or {"": entry}
        for engine_name, row in engines.items():
            tag = f"[{engine_name}] " if engine_name else ""
            print(f"{entry['machine']:>14} / {entry['workload']:<8} "
                  f"{tag}"
                  f"{row['skip']['instr_per_sec']:>9.0f} instr/s "
                  f"(no-skip {row['no_skip']['instr_per_sec']:.0f}, "
                  f"skipped {row['skipped_cycles']} cycles)")
        if "engine_speedup" in entry:
            print(f"{'':>14}   {'':<8} soa vs objects: "
                  f"{entry['engine_speedup']}x")
    sweep = payload["sweep"]
    ratio = (
        f"speedup {sweep['speedup']}x"
        if sweep.get("speedup") is not None
        else f"speedup skipped ({sweep.get('speedup_note', 'pool unavailable')})"
    )
    print(f"sweep: {sweep['pairs']} pairs, serial {sweep['serial_seconds']}s, "
          f"parallel({sweep['jobs']}) {sweep['parallel_seconds']}s, "
          f"{ratio}, "
          f"results identical: {sweep['results_identical']}")
    batched = payload.get("batched_sweep")
    if batched:
        print(f"batched sweep: {batched['configs']} configs on "
              f"{batched['workload']}, serial {batched['serial_seconds']}s vs "
              f"batched {batched['batch_seconds']}s "
              f"({batched['speedup']}x, {batched['instr_per_sec']:.0f} instr/s "
              f"batched)")
    overhead = payload["sampler_overhead"]
    print(f"sampler overhead: {overhead['overhead_fraction']:+.2%} "
          f"({overhead['machine']} on {overhead['workload']}, "
          f"{overhead['rows']} rows at stride {overhead['stride']})")
    reference = payload["reference"]
    print(f"seed reference: {reference['instr_per_sec']} instr/s "
          f"({reference['machine']} on {reference['workload']})")
    if args.compare:
        report = compare(
            history_record(payload), prior,
            tolerance=args.tolerance, window=args.window,
        )
        print(report.summary())
        return 0 if report.ok else 1
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import time

    from repro.core.machine import Machine
    from repro.obs.flame import CallStackSampler, SamplingProfiler, open_profiler

    config = _machine_config(args)
    program = _load_program(args.workload)
    if args.sampler == "calls":
        profiler = CallStackSampler(stride=args.stride)
    elif args.sampler == "signal":
        profiler = SamplingProfiler(interval=args.interval)
    else:
        profiler = open_profiler(interval=args.interval, stride=args.stride)
    machine = Machine(config)
    log.info("profiling %s on %s (%s) ...", config.name, program.name,
             type(profiler).__name__)
    started = time.perf_counter()
    with profiler:
        for _ in range(max(1, args.repeats)):
            stats = machine.run(program, cycle_skip=not args.no_skip)
    elapsed = time.perf_counter() - started
    stages = profiler.stage_report()
    if args.output is not None:
        path = profiler.write_collapsed(args.output)
        print(f"wrote {len(profiler.samples)} unique stacks to {path} "
              f"(collapsed format: flamegraph.pl / speedscope.app)")
    if args.json:
        print(json.dumps({
            "machine": config.name,
            "workload": program.name,
            "sampler": type(profiler).__name__,
            "seconds": round(elapsed, 3),
            "instructions": stats.instructions,
            "samples": profiler.total_samples,
            "stages": stages,
        }, indent=2))
        return 0
    print(f"{config.name} on {program.name}: {stats.instructions} instructions "
          f"x{max(1, args.repeats)} in {elapsed:.2f}s, "
          f"{profiler.total_samples} samples ({type(profiler).__name__})")
    rows = [
        [entry["stage"], entry["samples"], f"{entry['fraction']:.1%}"]
        for entry in stages
    ]
    print(format_table(["stage", "samples", "fraction"], rows))
    if profiler.total_samples == 0:
        print("no samples captured: raise --repeats or lower --interval")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import ServeConfig, run_service

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        cache_shards=args.shards,
        pool_jobs=args.jobs,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        job_timeout=args.job_timeout,
        max_retries=args.retries,
    )
    try:
        asyncio.run(run_service(config))
    except KeyboardInterrupt:
        print("\nrepro serve: shutting down")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.core.machine import Machine
    from repro.obs.timeline import (
        export_timeline,
        render_timeline_text,
        timeline_diff,
    )

    config = _machine_config(args)
    program = _load_program(args.workload)
    log.info("sampling %s on %s (stride %d) ...",
             config.name, program.name, args.stride)
    stats = Machine(config).run(
        program, cycle_skip=not args.no_skip, timeline_stride=args.stride
    )
    timeline = stats.timeline

    if args.diff is not None:
        other_args = argparse.Namespace(
            machine=args.diff, width=args.width, steering=None
        )
        other_config = _machine_config(other_args)
        log.info("sampling diff target %s ...", other_config.name)
        other = Machine(other_config).run(
            program, cycle_skip=not args.no_skip, timeline_stride=args.stride
        )
        diff = timeline_diff(timeline, other.timeline)
        rendered = (
            json.dumps(diff.to_dict(), indent=2) if args.json
            else diff.describe()
        )
    elif args.json:
        rendered = json.dumps(export_timeline(timeline), indent=2)
    else:
        rendered = render_timeline_text(timeline, max_rows=args.max_rows)

    if args.output is not None:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + ("" if rendered.endswith("\n") else "\n"))
        print(f"wrote {path}")
    else:
        print(rendered)
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    spec = {"machine": args.machine, "workload": args.workload,
            "width": args.width}
    try:
        reply = client.submit_async([spec])
    except (ServeError, OSError) as exc:
        print(f"repro watch: cannot submit to "
              f"{args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    job = reply["jobs"][0]
    print(f"job {job['job_id']}: {job['machine']} on {job['workload']}"
          f"{' (coalesced onto a live run)' if job['coalesced'] else ''}"
          f" -> {job['stream']}")
    ok = False
    rows = 0
    for event in client.stream(job["job_id"]):
        kind = event["event"]
        if kind == "row":
            rows += 1
            if not args.once:
                row = event["row"]
                start = row["cycle_end"] - row["cycles"] + 1
                print(f"  [{start:>8} .. {row['cycle_end']:>8}] "
                      f"ipc {row['ipc']:6.3f}  rob {row['rob_occupancy']:>3}  "
                      f"fetch {row['fetch_occupancy']:>3}  "
                      f"retired {row['retired_total']}")
        elif kind == "dispatch":
            print(f"  dispatched: batch {event.get('batch')} "
                  f"attempt {event.get('attempt')} ({event.get('mode')})")
        elif kind == "retry":
            print(f"  retrying (attempt {event.get('attempt')}, "
                  f"{event.get('delay')}s backoff): {event.get('error')}")
        elif kind == "done":
            ok = True
            print(f"done: {event['machine']} on {event['workload']}: "
                  f"{event['instructions']} instructions, "
                  f"{event['cycles']} cycles, IPC {event['ipc']:.3f} "
                  f"({rows} timeline rows)")
        elif kind == "failed":
            print(f"failed: {event.get('error')}", file=sys.stderr)
    return 0 if ok else 1


#: Version stamp of the ``repro pareto`` JSON export
#: (``schemas/pareto.schema.json`` pins the shape).
PARETO_VERSION = 1


def cmd_pareto(args: argparse.Namespace) -> int:
    from repro.harness.experiments import pareto_experiment
    from repro.harness.runner import default_runner
    from repro.utils.files import atomic_write_text

    widths = tuple(int(w) for w in args.widths.split(","))
    workloads = tuple(args.workloads.split(","))
    families = tuple(args.adders.split(",")) if args.adders else None
    try:
        result = pareto_experiment(
            runner=default_runner(),
            widths=widths,
            workloads=workloads,
            families=families,
            data_width=args.data_width,
            verify_width=args.verify_width,
            jobs=args.jobs,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    document = {
        "version": PARETO_VERSION,
        "workloads": result.series["workloads"],
        "widths": result.series["widths"],
        "data_width": args.data_width,
        "verify_width": (
            args.verify_width if args.verify_width is not None else args.data_width
        ),
        "points": result.series["points"],
        "frontier": result.series["frontier"],
        "verified": result.series["verified"],
    }
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(result.text())
        print("frontier: " + ", ".join(result.series["frontier"]))
    if args.output is not None:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(document, indent=2) + "\n")
        print(f"wrote {path}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.utils.files import atomic_write_text
    from repro.verify.check import persist_failing_fuzz_sources, run_check

    seeds = range(args.seeds) if args.seeds is not None else None
    profiles = args.profiles.split(",") if args.profiles else None
    report = run_check(
        quick=args.quick,
        seeds=seeds,
        profiles=profiles,
        width=args.width,
        jobs=args.jobs,
    )
    print(report.summary())
    if args.output is not None:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(report.as_dict(), indent=2) + "\n")
        print(f"wrote {path}")
        if not report.ok:
            # A failure on a fuzzed kernel is only replayable with the
            # suite's build hook; keep the assembled source next to the
            # report so the divergence stands alone.
            for written in persist_failing_fuzz_sources(report, path.parent):
                print(f"persisted failing fuzz program: {written}")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="show progress logging (-v INFO, -vv DEBUG)",
    )
    common.add_argument(
        "--log-json", action="store_true",
        help="emit logs as one JSON object per line",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Brown & Patt (HPCA 2002) reproduction: redundant binary "
                    "adders and limited bypass networks",
        parents=[common],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="show machines and workloads", parents=[common]
    ).set_defaults(fn=cmd_list)

    run = sub.add_parser("run", help="simulate a workload on one machine",
                         parents=[common])
    run.add_argument("workload", help="suite kernel name or assembly file path")
    run.add_argument("--machine", default="ideal")
    run.add_argument("--width", type=int, default=8, choices=(4, 8))
    run.add_argument("--steering", choices=("round_robin", "dependence"))
    run.add_argument("--json", action="store_true",
                     help="print machine-readable statistics as JSON")
    run.add_argument("--engine", choices=("soa", "objects"), default=None,
                     help="cycle-loop implementation: the structure-of-arrays "
                          "fast path (default) or the DynInstr object "
                          "reference; unset, REPRO_ENGINE decides")
    run.add_argument("--no-skip", action="store_true",
                     help="disable the cycle-skipping fast-forward (slow; "
                          "results are identical either way)")
    run.set_defaults(fn=cmd_run)

    trace = sub.add_parser(
        "trace", help="capture the pipeline event stream of one run",
        parents=[common],
    )
    trace.add_argument("workload", help="suite kernel name or assembly file path")
    trace.add_argument("--machine", default="rb-limited")
    trace.add_argument("--width", type=int, default=4, choices=(4, 8))
    trace.add_argument("--steering", choices=("round_robin", "dependence"))
    trace.add_argument("--format", choices=("chrome", "jsonl"), default="chrome",
                       help="chrome: Perfetto-loadable trace_event JSON; "
                            "jsonl: one event per line")
    trace.add_argument("-o", "--output", default=None,
                       help="output path (default trace_<workload>_<machine>.<ext>)")
    trace.add_argument("--buffer", type=int, default=TRACE_BUFFER_EVENTS,
                       metavar="N",
                       help="keep only the newest N events (bounded memory; "
                            f"default {TRACE_BUFFER_EVENTS})")
    trace.add_argument("--full", action="store_true",
                       help="buffer every event (unbounded memory on long runs)")
    trace.add_argument("--spans", default=None, metavar="PATH",
                       help="also write the run's span tree as a span-export "
                            "document (schemas/trace.schema.json)")
    trace.set_defaults(fn=cmd_trace)

    explain = sub.add_parser(
        "explain", help="CPI stacks + critical-path differential report",
        parents=[common],
    )
    explain.add_argument("workload", help="suite kernel name or assembly file path")
    explain.add_argument("--machines", default="baseline,rb-limited,rb-full,ideal",
                         help="comma-separated machine models to compare")
    explain.add_argument("--width", type=int, default=4, choices=(4, 8))
    explain.add_argument("--json", action="store_true",
                         help="machine-readable report (schemas/explain.schema.json)")
    explain.add_argument("--markdown", action="store_true",
                         help="render GitHub-flavored markdown tables")
    explain.add_argument("-o", "--output", default=None,
                         help="write the report to a file instead of stdout")
    explain.set_defaults(fn=cmd_explain)

    mix = sub.add_parser("mix", help="Table 1 classification of a workload",
                         parents=[common])
    mix.add_argument("workload")
    mix.set_defaults(fn=cmd_mix)

    sub.add_parser(
        "delays", help="§3.4 adder delay table", parents=[common]
    ).set_defaults(fn=cmd_delays)

    shadow = sub.add_parser("shadow", help="redundant-datapath shadow check",
                            parents=[common])
    shadow.add_argument("workload")
    shadow.set_defaults(fn=cmd_shadow)

    pipeline = sub.add_parser(
        "pipeline", help="render a Fig. 5/7-style pipeline diagram",
        parents=[common],
    )
    pipeline.add_argument("workload", help="suite kernel name or assembly file path")
    pipeline.add_argument("--machine", default="rb-limited")
    pipeline.add_argument("--width", type=int, default=4, choices=(4, 8))
    pipeline.add_argument("--steering", choices=("round_robin", "dependence"))
    pipeline.add_argument("--first", type=int, default=0,
                          help="first instruction (trace index) to show")
    pipeline.add_argument("--count", type=int, default=16)
    pipeline.add_argument("--frontend", action="store_true",
                          help="include fetch/rename stages")
    pipeline.set_defaults(fn=cmd_pipeline)

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md",
                            parents=[common])
    report.add_argument("output", nargs="?", default=None)
    report.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="simulate uncached pairs across N worker "
                             "processes (default: REPRO_JOBS or serial)")
    report.set_defaults(fn=cmd_report)

    bench = sub.add_parser(
        "bench", help="measure simulator performance -> BENCH_perf.json",
        parents=[common],
    )
    bench.add_argument("-o", "--output", default=None,
                       help="output path (default BENCH_perf.json at repo root)")
    bench.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="worker processes for the sweep benchmark (default 2)")
    bench.add_argument("--kernels", nargs="+", default=None, metavar="KERNEL",
                       help="workloads for the sweep benchmark "
                            "(default ijpeg li compress)")
    bench.add_argument("--batched-workload", default="vortex", metavar="KERNEL",
                       help="workload for the batched Fig. 9 matrix "
                            "benchmark (default vortex)")
    bench.add_argument("--history", default=None, metavar="PATH",
                       help="perf-history JSONL file "
                            "(default BENCH_history.jsonl next to the snapshot)")
    bench.add_argument("--compare", action="store_true",
                       help="gate this run against the trailing-window median "
                            "of prior same-host runs; exit 1 on regression")
    bench.add_argument("--compare-only", action="store_true",
                       help="skip benchmarking; gate the newest history row "
                            "against its predecessors")
    bench.add_argument("--tolerance", type=float, default=0.25, metavar="FRAC",
                       help="regression threshold as a fraction below the "
                            "baseline median (default 0.25)")
    bench.add_argument("--window", type=int, default=5, metavar="N",
                       help="trailing same-host runs forming the baseline "
                            "median (default 5)")
    bench.set_defaults(fn=cmd_bench)

    profile = sub.add_parser(
        "profile", help="sample where simulator wall-clock goes per pipeline stage",
        parents=[common],
    )
    profile.add_argument("workload", help="suite kernel name or assembly file path")
    profile.add_argument("--machine", default="rb-limited")
    profile.add_argument("--width", type=int, default=4, choices=(4, 8))
    profile.add_argument("--steering", choices=("round_robin", "dependence"))
    profile.add_argument("--sampler", choices=("auto", "signal", "calls"),
                         default="auto",
                         help="signal: setitimer-based wall/CPU sampling (main "
                              "thread only); calls: deterministic sys.setprofile "
                              "stride sampling; auto picks by thread")
    profile.add_argument("--interval", type=float, default=0.005, metavar="SECONDS",
                         help="signal-sampler period (default 0.005)")
    profile.add_argument("--stride", type=int, default=512, metavar="N",
                         help="call-sampler stride: record every Nth call "
                              "(default 512)")
    profile.add_argument("--repeats", type=int, default=1, metavar="N",
                         help="run the workload N times under the profiler")
    profile.add_argument("--no-skip", action="store_true",
                         help="disable the cycle-skipping fast-forward")
    profile.add_argument("--json", action="store_true",
                         help="machine-readable per-stage report")
    profile.add_argument("-o", "--output", default=None, metavar="PATH",
                         help="write collapsed stacks for flamegraph tools")
    profile.set_defaults(fn=cmd_profile)

    serve = sub.add_parser(
        "serve", help="batch-simulation HTTP service (see README, Serving)",
        parents=[common],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port (0 picks an ephemeral port; default 8321)")
    serve.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="process-pool width for batch execution (default 2; "
                            "1 disables the pool entirely)")
    serve.add_argument("--cache-dir", default=None,
                       help="sharded result-cache directory "
                            "(default .repro_cache/serve at the repo root)")
    serve.add_argument("--shards", type=int, default=16, metavar="N",
                       help="result-cache shard files (default 16)")
    serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                       help="max jobs dispatched per batch (default 8)")
    serve.add_argument("--batch-window", type=float, default=0.05, metavar="SECONDS",
                       help="how long to gather a batch before dispatch (default 0.05)")
    serve.add_argument("--job-timeout", type=float, default=300.0, metavar="SECONDS",
                       help="wall-clock bound on one pooled batch (default 300)")
    serve.add_argument("--retries", type=int, default=3, metavar="N",
                       help="max retry attempts per batch (default 3)")
    serve.set_defaults(fn=cmd_serve)

    timeline = sub.add_parser(
        "timeline", help="per-interval time-series + phase segmentation",
        parents=[common],
    )
    timeline.add_argument("workload", help="suite kernel name or assembly file path")
    timeline.add_argument("--machine", default="rb-limited")
    timeline.add_argument("--width", type=int, default=4, choices=(4, 8))
    timeline.add_argument("--steering", choices=("round_robin", "dependence"))
    timeline.add_argument("--stride", type=int, default=256, metavar="CYCLES",
                          help="cycles per sampling interval (default 256; "
                               "doubles automatically on very long runs)")
    timeline.add_argument("--max-rows", type=int, default=40, metavar="N",
                          help="interval rows shown in the text table "
                               "(default 40; JSON always carries all rows)")
    timeline.add_argument("--diff", default=None, metavar="MACHINE",
                          help="also run MACHINE and report the two runs "
                               "aligned by retired-instruction count")
    timeline.add_argument("--no-skip", action="store_true",
                          help="disable the cycle-skipping fast-forward "
                               "(the timeline is bit-identical either way)")
    timeline.add_argument("--json", action="store_true",
                          help="versioned export (schemas/timeline.schema.json), "
                               "or the diff document with --diff")
    timeline.add_argument("-o", "--output", default=None,
                          help="write the report to a file instead of stdout")
    timeline.set_defaults(fn=cmd_timeline)

    watch = sub.add_parser(
        "watch", help="follow one job live on a running `repro serve`",
        parents=[common],
    )
    watch.add_argument("workload", help="suite kernel name")
    watch.add_argument("--machine", default="rb-limited")
    watch.add_argument("--width", type=int, default=4, choices=(4, 8))
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=8321)
    watch.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS",
                       help="client socket timeout (default 600)")
    watch.add_argument("--once", action="store_true",
                       help="suppress per-row output; print only lifecycle "
                            "events and the terminal summary (CI smoke mode)")
    watch.set_defaults(fn=cmd_watch)

    check = sub.add_parser(
        "check", help="differential tests + paper-invariant audit",
        parents=[common],
    )
    check.add_argument("--quick", action="store_true",
                       help="CI-sized run: fewer fuzz seeds, machines, "
                            "and audit workloads")
    check.add_argument("--seeds", type=int, default=None, metavar="N",
                       help="fuzz seeds per profile (default: 2 quick, 8 full)")
    check.add_argument("--profiles", default=None,
                       help="comma-separated fuzz profiles "
                            "(default: all; see repro.verify.fuzz.PROFILES)")
    check.add_argument("--width", type=int, default=4, choices=(4, 8))
    check.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="worker processes for the parallel side of the "
                            "run-matrix differential (default 2)")
    check.add_argument("-o", "--output", default=None,
                       help="write the JSON report to this path")
    check.set_defaults(fn=cmd_check)

    pareto = sub.add_parser(
        "pareto",
        help="adder design-space sweep: formal gate, then delay x IPC frontier",
        parents=[common],
    )
    pareto.add_argument("--widths", default="4,8", metavar="W,W",
                        help="comma-separated execution widths (default 4,8)")
    pareto.add_argument("--workloads", default="compress,ijpeg,li",
                        metavar="NAMES",
                        help="comma-separated workload names "
                             "(default compress,ijpeg,li)")
    pareto.add_argument("--adders", default=None, metavar="FAMILIES",
                        help="comma-separated adder families (default: all of "
                             "repro.core.presets.PARETO_ADDER_FAMILIES)")
    pareto.add_argument("--data-width", type=int, default=64, metavar="BITS",
                        help="datapath width the netlists are built and "
                             "timed at (default 64)")
    pareto.add_argument("--verify-width", type=int, default=None, metavar="BITS",
                        help="width for the formal equivalence gate "
                             "(default: the data width)")
    pareto.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the sweep matrix")
    pareto.add_argument("--json", action="store_true",
                        help="print the machine-readable document instead "
                             "of the table")
    pareto.add_argument("-o", "--output", default=None,
                        help="also write the JSON document to this path")
    pareto.set_defaults(fn=cmd_pareto)

    args = parser.parse_args(argv)
    setup_logging(args.verbose, json_lines=args.log_json)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
