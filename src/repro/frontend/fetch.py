"""The fetch unit: two basic blocks per cycle down the correct path.

The simulator is functional-first: each instruction is executed
architecturally at fetch time, so its branch outcome, result value, and
memory address are known exactly (an oracle for the timing model, which
never needs them early — only the scheduler's availability logic gates
execution).  Branch predictors are still consulted and trained in fetch
order; when they disagree with the oracle outcome, the fetched bundle ends
at the mispredicted branch and fetch stalls until the backend reports the
branch resolved, charging the full front-end refill penalty.  Wrong-path
instructions themselves are not simulated (DESIGN.md, deviations).

Per cycle the unit supplies up to ``fetch_width`` instructions spanning at
most two basic blocks (a block boundary = a taken control transfer whose
target the front end can produce: direct branches/calls from the decoder,
returns from the RAS, indirect jumps from the BTB).  Instruction-cache
misses stall the bundle until the line arrives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.hybrid import HybridPredictor, default_hybrid_predictor
from repro.frontend.ras import ReturnAddressStack
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import INSTRUCTION_BYTES, Program
from repro.isa.semantics import ArchState, ExecResult, compile_fast
from repro.mem.hierarchy import MemoryHierarchy


@dataclass(slots=True)
class FetchedInstruction:
    """One correct-path instruction leaving the fetch stage."""

    instr: Instruction
    result: ExecResult
    fetch_cycle: int
    mispredicted: bool = False


class FetchUnit:
    """Correct-path fetch with prediction, BTB, RAS, and I-cache timing."""

    def __init__(
        self,
        program: Program,
        state: ArchState,
        hierarchy: MemoryHierarchy,
        fetch_width: int = 8,
        max_blocks_per_cycle: int = 2,
        predictor: HybridPredictor | None = None,
        btb: BranchTargetBuffer | None = None,
        ras: ReturnAddressStack | None = None,
    ) -> None:
        self.program = program
        self.state = state
        self.hierarchy = hierarchy
        self.fetch_width = fetch_width
        self.max_blocks_per_cycle = max_blocks_per_cycle
        self.predictor = predictor if predictor is not None else default_hybrid_predictor()
        self.btb = btb if btb is not None else BranchTargetBuffer()
        self.ras = ras if ras is not None else ReturnAddressStack()

        self.halted = False
        self._stalled_for_branch = False
        self._resume_cycle: int | None = None
        self._icache_ready_pc: int | None = None
        self._icache_ready_cycle = 0

        self.branches = 0
        self.mispredictions = 0
        self.fetch_stall_cycles = 0

    # -- backend interface -------------------------------------------------------

    @property
    def stalled(self) -> bool:
        """True while waiting for a mispredicted branch to resolve."""
        return self._stalled_for_branch

    def resolve_branch(self, resolve_cycle: int) -> None:
        """The backend resolved the mispredicted branch; fetch restarts then."""
        if not self._stalled_for_branch:
            raise RuntimeError("resolve_branch with no branch outstanding")
        self._stalled_for_branch = False
        self._resume_cycle = resolve_cycle

    # -- cycle-skipping support -----------------------------------------------------

    def next_event_cycle(self, cycle: int) -> tuple[int | None, bool]:
        """When could :meth:`fetch_bundle` next do real work, from ``cycle``?

        Returns ``(wake, counts_stalls)``:

        * ``wake`` — the earliest cycle >= ``cycle`` at which a
          ``fetch_bundle`` call might fetch instructions or mutate state,
          or None when fetch is blocked on an external event (halt, or an
          unresolved mispredicted branch — the backend's
          :meth:`resolve_branch` is what unblocks it);
        * ``counts_stalls`` — whether each skipped ``fetch_bundle`` call
          strictly before ``wake`` would have incremented
          ``fetch_stall_cycles`` (the resume/I-cache wait paths count,
          the halt/branch paths return without counting).

        Used by the machine's cycle-skipping fast-forward; must mirror the
        early-out structure of :meth:`fetch_bundle` exactly.
        """
        if self.halted or self._stalled_for_branch:
            return None, False
        if self._resume_cycle is not None and cycle < self._resume_cycle:
            return self._resume_cycle, True
        if self._icache_ready_pc == self.state.pc and cycle < self._icache_ready_cycle:
            return self._icache_ready_cycle, True
        return cycle, False

    def note_skipped_stalls(self, count: int) -> None:
        """Account for ``count`` skipped cycles that would have stalled."""
        self.fetch_stall_cycles += count

    # -- per-cycle fetch ------------------------------------------------------------

    def fetch_bundle(self, cycle: int) -> list[FetchedInstruction]:
        """Fetch up to a bundle of correct-path instructions this cycle."""
        if self.halted or self._stalled_for_branch:
            return []
        if self._resume_cycle is not None and cycle < self._resume_cycle:
            self.fetch_stall_cycles += 1
            return []
        self._resume_cycle = None

        # Instruction cache: one access per bundle, at the current PC.  A
        # miss stalls fetch until the line is ready.
        pc = self.state.pc
        if self._icache_ready_pc == pc:
            if cycle < self._icache_ready_cycle:
                self.fetch_stall_cycles += 1
                return []
            self._icache_ready_pc = None
        else:
            hit_latency = self.hierarchy.config.icache.hit_latency
            ready = self.hierarchy.fetch_access(pc, cycle)
            if ready > cycle + hit_latency:
                # Miss: remember the pending line and stall.  The hit
                # latency itself is part of the fixed front-end depth.
                self._icache_ready_pc = pc
                self._icache_ready_cycle = ready - hit_latency
                self.fetch_stall_cycles += 1
                return []

        bundle: list[FetchedInstruction] = []
        blocks = 0
        while len(bundle) < self.fetch_width:
            instr = self.program.at(self.state.pc)
            if instr is None:
                raise RuntimeError(
                    f"fetch walked off the text section at {self.state.pc:#x}"
                )
            result = self.state.execute(instr)
            fetched = FetchedInstruction(instr, result, cycle)
            bundle.append(fetched)

            if instr.opcode is Opcode.HALT:
                self.halted = True
                break

            if instr.spec.is_branch:
                mispredicted = self._predict_and_train(
                    instr, result.next_pc, bool(result.taken)
                )
                if mispredicted:
                    fetched.mispredicted = True
                    self.mispredictions += 1
                    self._stalled_for_branch = True
                    break
                if result.taken:
                    blocks += 1
                    if blocks >= self.max_blocks_per_cycle:
                        break
        return bundle

    def fetch_into(self, cycle: int, out_instr: list, out_mem: list) -> tuple[int, bool]:
        """:meth:`fetch_bundle` without the per-instruction wrappers.

        The SoA engine keeps fetched state in parallel columns, so the
        ``FetchedInstruction`` objects (and the bundle list) are pure
        allocation overhead there.  This appends each fetched instruction
        and its oracle memory address directly to the caller's columns and
        returns ``(count, mispredicted)``, where ``mispredicted`` flags
        the *last* appended instruction as a mispredicted branch.  All
        fetched instructions share ``cycle`` as their fetch cycle.

        Must mirror :meth:`fetch_bundle`'s control flow exactly — the two
        engines are differentially compared on the resulting stats.
        """
        if self.halted or self._stalled_for_branch:
            return 0, False
        if self._resume_cycle is not None and cycle < self._resume_cycle:
            self.fetch_stall_cycles += 1
            return 0, False
        self._resume_cycle = None

        state = self.state
        pc = state.pc
        if self._icache_ready_pc == pc:
            if cycle < self._icache_ready_cycle:
                self.fetch_stall_cycles += 1
                return 0, False
            self._icache_ready_pc = None
        else:
            hit_latency = self.hierarchy.config.icache.hit_latency
            ready = self.hierarchy.fetch_access(pc, cycle)
            if ready > cycle + hit_latency:
                self._icache_ready_pc = pc
                self._icache_ready_cycle = ready - hit_latency
                self.fetch_stall_cycles += 1
                return 0, False

        lookup = self.program._by_address.get
        width = self.fetch_width
        count = 0
        blocks = 0
        halt = Opcode.HALT
        instr_append = out_instr.append
        mem_append = out_mem.append
        while count < width:
            instr = lookup(state.pc)
            if instr is None:
                raise RuntimeError(
                    f"fetch walked off the text section at {state.pc:#x}"
                )
            # The allocation-free compiled executor: None for plain ops,
            # the effective address for loads/stores, (next_pc, taken)
            # for control transfers.
            fn = instr.__dict__.get("_exec_fast")
            if fn is None:
                fn = compile_fast(instr)
            r = fn(state)
            instr_append(instr)
            count += 1
            if type(r) is tuple:
                mem_append(None)
                next_pc, taken = r
                if self._predict_and_train(instr, next_pc, taken):
                    self.mispredictions += 1
                    self._stalled_for_branch = True
                    return count, True
                if taken:
                    blocks += 1
                    if blocks >= self.max_blocks_per_cycle:
                        break
            else:
                mem_append(r)
                if r is None and instr.opcode is halt:
                    self.halted = True
                    break
        return count, False

    # -- prediction ----------------------------------------------------------------------

    def _predict_and_train(
        self, instr: Instruction, actual_target: int, taken: bool
    ) -> bool:
        """Consult and train the predictors; True if this branch mispredicts."""
        opcode = instr.opcode
        pc = instr.address
        fall_through = pc + INSTRUCTION_BYTES

        if opcode is Opcode.BR or opcode is Opcode.JSR:
            # Direct, unconditional: the decoder extracts the target, so the
            # front end always follows it correctly.
            if opcode is Opcode.JSR:
                self.ras.push(fall_through)
            return False

        if opcode is Opcode.RET:
            predicted = self.ras.pop()
            return predicted != actual_target

        if opcode is Opcode.JMP:
            self.branches += 1
            predicted = self.btb.lookup(pc)
            self.btb.update(pc, actual_target)
            return predicted != actual_target

        # Conditional branch: direction from the hybrid predictor, target
        # from the BTB when predicted taken.
        self.branches += 1
        predicted_taken = self.predictor.predict(pc)
        self.predictor.update(pc, taken)
        if predicted_taken:
            predicted_target = self.btb.lookup(pc)
            if taken:
                self.btb.update(pc, actual_target)
                return predicted_target != actual_target
            return True  # predicted taken, actually not taken
        if taken:
            self.btb.update(pc, actual_target)
            return True  # predicted not taken, actually taken
        return False
