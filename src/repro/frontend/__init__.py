"""Front-end substrate: branch prediction and fetch (Table 2).

The paper's machines fetch two basic blocks per cycle through a 48 KB
hybrid gshare/PAs predictor with a 4096-entry BTB.  The fetch unit follows
the correct path (functional-first simulation): a mispredicted branch
stalls fetch until the branch resolves in the backend, which charges the
full misprediction penalty without modelling wrong-path instructions
(see DESIGN.md, "Known deviations").
"""

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchedInstruction, FetchUnit
from repro.frontend.gshare import GsharePredictor
from repro.frontend.hybrid import HybridPredictor, default_hybrid_predictor
from repro.frontend.pas import PAsPredictor
from repro.frontend.ras import ReturnAddressStack

__all__ = [
    "BranchTargetBuffer",
    "GsharePredictor",
    "PAsPredictor",
    "HybridPredictor",
    "default_hybrid_predictor",
    "ReturnAddressStack",
    "FetchUnit",
    "FetchedInstruction",
]
