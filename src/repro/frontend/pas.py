"""PAs per-address two-level branch predictor (the other half of the hybrid).

First level: a table of per-branch history registers indexed by PC.
Second level: pattern history tables of 2-bit counters indexed by the
branch's own history concatenated with low PC bits (the per-set structure
of PAs).
"""

from __future__ import annotations

from repro.isa.program import INSTRUCTION_BYTES


class PAsPredictor:
    """Two-level predictor with per-address history (PAs)."""

    def __init__(
        self,
        bht_bits: int = 12,
        history_bits: int = 10,
        set_bits: int = 4,
    ) -> None:
        if not 1 <= history_bits <= 20:
            raise ValueError(f"history_bits out of range: {history_bits}")
        self.bht_bits = bht_bits
        self.history_bits = history_bits
        self.set_bits = set_bits
        self._bht = [0] * (1 << bht_bits)
        self._history_mask = (1 << history_bits) - 1
        self._pht = bytearray(b"\x02" * (1 << (history_bits + set_bits)))
        self.predictions = 0
        self.correct = 0

    def _bht_index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & ((1 << self.bht_bits) - 1)

    def _pht_index(self, pc: int, history: int) -> int:
        set_index = (pc // INSTRUCTION_BYTES) & ((1 << self.set_bits) - 1)
        return (history << self.set_bits) | set_index

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        history = self._bht[self._bht_index(pc)]
        return self._pht[self._pht_index(pc, history)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the pattern counter and the branch's private history."""
        bht_index = self._bht_index(pc)
        history = self._bht[bht_index]
        pht_index = self._pht_index(pc, history)
        counter = self._pht[pht_index]
        if taken:
            self.correct += counter >= 2
            if counter < 3:
                self._pht[pht_index] = counter + 1
        else:
            self.correct += counter < 2
            if counter > 0:
                self._pht[pht_index] = counter - 1
        self.predictions += 1
        self._bht[bht_index] = ((history << 1) | int(taken)) & self._history_mask

    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0
