"""Gshare global-history branch predictor (one half of the hybrid)."""

from __future__ import annotations

from repro.isa.program import INSTRUCTION_BYTES


class GsharePredictor:
    """XOR of global history and PC bits indexes a table of 2-bit counters."""

    def __init__(self, history_bits: int = 16) -> None:
        if not 1 <= history_bits <= 24:
            raise ValueError(f"history_bits out of range: {history_bits}")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        # 2-bit saturating counters, initialized weakly taken.
        self._counters = bytearray(b"\x02" * (1 << history_bits))
        self.predictions = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        return ((pc // INSTRUCTION_BYTES) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter and shift the outcome into global history."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self.correct += counter >= 2
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            self.correct += counter < 2
            if counter > 0:
                self._counters[index] = counter - 1
        self.predictions += 1
        self._history = ((self._history << 1) | int(taken)) & self._mask

    @property
    def history(self) -> int:
        return self._history

    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0
