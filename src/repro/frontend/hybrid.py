"""Hybrid gshare/PAs predictor with a 2-bit chooser (Table 2: 48 KB).

The chooser table learns, per PC-indexed entry, which component predicts
the branch better; it trains only when the components disagree.
"""

from __future__ import annotations

from repro.frontend.gshare import GsharePredictor
from repro.frontend.pas import PAsPredictor
from repro.isa.program import INSTRUCTION_BYTES


class HybridPredictor:
    """Tournament predictor over a gshare and a PAs component."""

    def __init__(
        self,
        gshare: GsharePredictor,
        pas: PAsPredictor,
        chooser_bits: int = 16,
    ) -> None:
        self.gshare = gshare
        self.pas = pas
        self.chooser_bits = chooser_bits
        # 2-bit chooser: >= 2 means "trust gshare".
        self._chooser = bytearray(b"\x02" * (1 << chooser_bits))
        self.predictions = 0
        self.correct = 0

    def _chooser_index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & ((1 << self.chooser_bits) - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the conditional branch at ``pc``."""
        if self._chooser[self._chooser_index(pc)] >= 2:
            return self.gshare.predict(pc)
        return self.pas.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Train everything; returns True if the hybrid prediction was correct."""
        gshare_prediction = self.gshare.predict(pc)
        pas_prediction = self.pas.predict(pc)
        index = self._chooser_index(pc)
        used_gshare = self._chooser[index] >= 2
        prediction = gshare_prediction if used_gshare else pas_prediction

        if gshare_prediction != pas_prediction:
            chooser = self._chooser[index]
            if gshare_prediction == taken and chooser < 3:
                self._chooser[index] = chooser + 1
            elif pas_prediction == taken and chooser > 0:
                self._chooser[index] = chooser - 1
        self.gshare.update(pc, taken)
        self.pas.update(pc, taken)

        self.predictions += 1
        hit = prediction == taken
        self.correct += hit
        return hit

    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


def default_hybrid_predictor() -> HybridPredictor:
    """The paper's 48 KB budget: 16 KB gshare + ~10 KB PAs + 16 KB chooser
    (2-bit counters; the remainder is the BTB and history storage)."""
    return HybridPredictor(
        gshare=GsharePredictor(history_bits=16),
        pas=PAsPredictor(bht_bits=12, history_bits=10, set_bits=4),
        chooser_bits=16,
    )
