"""Return address stack for JSR/RET prediction."""

from __future__ import annotations


class ReturnAddressStack:
    """A bounded stack of predicted return addresses (overwrites on overflow)."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError(f"RAS depth must be positive, got {depth}")
        self.depth = depth
        self._stack: list[int] = []
        self.overflows = 0

    def push(self, return_address: int) -> None:
        if len(self._stack) == self.depth:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_address)

    def pop(self) -> int | None:
        """Predicted return address, or None if the stack is empty."""
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
