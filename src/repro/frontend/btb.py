"""Branch target buffer: 4096 entries, 4-way set associative (Table 2)."""

from __future__ import annotations

from repro.isa.program import INSTRUCTION_BYTES


class BranchTargetBuffer:
    """Tagged target storage with per-set LRU replacement."""

    def __init__(self, entries: int = 4096, associativity: int = 4) -> None:
        if entries <= 0 or associativity <= 0 or entries % associativity:
            raise ValueError(f"bad BTB geometry: {entries} entries, {associativity}-way")
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"BTB set count {self.num_sets} must be a power of two")
        # Each set: list of (tag, target), most recently used first.
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(self.num_sets)]
        self.lookups = 0
        self.hits = 0

    def _locate(self, pc: int) -> tuple[list[tuple[int, int]], int]:
        word = pc // INSTRUCTION_BYTES
        return self._sets[word & (self.num_sets - 1)], word // self.num_sets

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the branch at ``pc`` (None on miss)."""
        self.lookups += 1
        ways, tag = self._locate(pc)
        for i, (entry_tag, target) in enumerate(ways):
            if entry_tag == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                self.hits += 1
                return target
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for the branch at ``pc``."""
        ways, tag = self._locate(pc)
        for i, (entry_tag, _) in enumerate(ways):
            if entry_tag == tag:
                ways.pop(i)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self.associativity:
            ways.pop()

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
