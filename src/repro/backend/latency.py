"""Table 3: instruction-class execution latencies per machine style.

For each latency class, the table gives the cycle count on the Baseline
machine (2-cycle pipelined TC adders), on the RB machines (1-cycle RB
adders; the parenthesised value is when the two's-complement result is
ready, after the 2-cycle format conversion), and on the Ideal machine
(1-cycle TC adders).

Loads are the 1-cycle SAM address generation; the 2-cycle (or longer, on
a miss) data-cache access is added dynamically by the memory hierarchy.
Branches resolve with the compare latency of their machine.  CTLZ/CTTZ/
CTPOP are not in Table 3; they are modelled like byte manipulation
(simple non-carry logic), as documented in DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.opcodes import LatencyClass


class AdderStyle(enum.Enum):
    """Which column of Table 3 a machine uses.

    ``STAGGERED`` is Figure 1's Configuration C (the Pentium 4's staggered
    adds, §2): the same 2-cycle pipelined TC adder as the Baseline, but
    the first stage's low half and carry are forwarded, so a *dependent
    add* can start one cycle after its producer; every other consumer
    waits for the full 2-cycle result.
    """

    BASELINE = "baseline"    # 2-cycle pipelined two's-complement adders
    STAGGERED = "staggered"  # 2-cycle pipelined, low-half forwarding to adds
    RB = "rb"                # 1-cycle redundant binary adders + 2-cycle converters
    IDEAL = "ideal"          # 1-cycle two's-complement adders


@dataclass(frozen=True)
class ClassLatency:
    """Latencies for one instruction class: (baseline, rb, rb-tc, ideal)."""

    baseline: int
    rb: int
    rb_tc: int
    ideal: int


#: Table 3, with the modelling decisions above.
TABLE3: dict[LatencyClass, ClassLatency] = {
    LatencyClass.INT_ARITH: ClassLatency(2, 1, 3, 1),
    LatencyClass.INT_LOGICAL: ClassLatency(1, 1, 1, 1),
    LatencyClass.SHIFT_LEFT: ClassLatency(3, 3, 5, 3),
    LatencyClass.SHIFT_RIGHT: ClassLatency(3, 3, 3, 3),
    LatencyClass.INT_COMPARE: ClassLatency(2, 1, 3, 1),
    LatencyClass.BYTE_MANIP: ClassLatency(2, 1, 3, 1),
    LatencyClass.COUNT: ClassLatency(2, 1, 3, 1),
    LatencyClass.INT_MUL: ClassLatency(10, 10, 10, 10),
    LatencyClass.FP_ARITH: ClassLatency(8, 8, 8, 8),
    LatencyClass.FP_DIV: ClassLatency(32, 32, 32, 32),
    LatencyClass.MEM: ClassLatency(1, 1, 3, 1),       # agen; rb_tc: store data path
    LatencyClass.BRANCH: ClassLatency(2, 1, 1, 1),    # resolves like a compare
}

#: Data-cache hit latency added on top of the load agen latency (Table 3's
#: "dcache latency 2" row).
DCACHE_LATENCY = 2


#: The paper's RB -> TC format converter is pipelined over this many cycles
#: (§4.1 footnote); sensitivity studies can override it per LatencyModel.
DEFAULT_CONVERSION_CYCLES = 2


class LatencyModel:
    """Latency lookups for one machine style.

    ``conversion_cycles`` scales the format-conversion penalty: Table 3's
    parenthesised values are ``rb + 2``; the ablation benchmarks sweep the
    converter depth to show how sensitive the RB machines are to it.
    """

    def __init__(
        self,
        style: AdderStyle,
        conversion_cycles: int = DEFAULT_CONVERSION_CYCLES,
    ) -> None:
        if conversion_cycles < 0:
            raise ValueError(f"conversion cycles must be >= 0, got {conversion_cycles}")
        self.style = style
        self.conversion_cycles = conversion_cycles

    def exec_latency(self, latency_class: LatencyClass) -> int:
        """Cycles until the result is first forwardable in its native form.

        On RB machines that is the redundant result; on the staggered
        machine it is the first pipeline stage's low half + carry (adds
        only); elsewhere it is the complete result.
        """
        row = TABLE3[latency_class]
        if self.style is AdderStyle.BASELINE:
            return row.baseline
        if self.style is AdderStyle.STAGGERED:
            if latency_class is LatencyClass.INT_ARITH:
                return row.baseline - 1  # stage 1: low half + carry
            return row.baseline
        if self.style is AdderStyle.RB:
            return row.rb
        return row.ideal

    def tc_latency(self, latency_class: LatencyClass) -> int:
        """Cycles until the complete two's-complement result exists.

        Differs from :meth:`exec_latency` on RB machines (the format
        conversion) and on the staggered machine's adds (the upper half
        completes one stage later).
        """
        row = TABLE3[latency_class]
        if self.style is AdderStyle.BASELINE or self.style is AdderStyle.STAGGERED:
            return row.baseline
        if self.style is AdderStyle.RB:
            if row.rb_tc != row.rb:
                return row.rb + self.conversion_cycles
            return row.rb
        return row.ideal

    def produces_rb(self, latency_class: LatencyClass) -> bool:
        """Whether this class's raw result is an internal partial form —
        redundant binary on RB machines, the staggered low half on the
        staggered machine — that only some consumers can take early."""
        if self.style is AdderStyle.RB:
            row = TABLE3[latency_class]
            return row.rb_tc != row.rb
        if self.style is AdderStyle.STAGGERED:
            return latency_class is LatencyClass.INT_ARITH
        return False
