"""Register-file organizations and their costs (paper §4.1).

The paper weighs two organizations for the RB machines:

* **TC-only register files** — smallest state, but RB-output ALUs need a
  third bypass level (the converter output) and RB consumers lose access
  to in-flight values once they leave the bypass network;
* **TC + RB register files** — "each entry in a redundant binary register
  file requires twice as many bits of state", but the machine needs no
  second-level bypass: the RB file's write-to-read forwarding covers it,
  keeping the bypass path count equal to a conventional machine's.

This module makes that tradeoff concrete: storage bits, bypass path
counts, and comparator-input widths per organization, as used by the
register-file ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.backend.bypass import BYPASS_LEVELS


class RegisterFileOrganization(enum.Enum):
    """The §4.1 design points."""

    TC_ONLY = "tc-only"
    TC_AND_RB = "tc+rb"


@dataclass(frozen=True)
class RegisterFileCost:
    """Static cost summary for one organization."""

    organization: RegisterFileOrganization
    entries: int
    data_bits: int
    storage_bits: int          # total register state
    bypass_levels_rb_alu: int  # levels feeding an RB-output ALU's inputs
    bypass_levels_tc_alu: int
    bypass_paths_per_fu: int   # forwarding sources muxed at one FU input

    def mux_fan_in(self, functional_units: int, rf_read_ports: int = 2) -> int:
        """Inputs of one operand-select mux: one per bypass path per FU
        plus the register-file read port(s) — the structure whose growth
        the paper blames for cycle-time pressure (§1, §2)."""
        return self.bypass_paths_per_fu * functional_units + rf_read_ports


def register_file_cost(
    organization: RegisterFileOrganization,
    entries: int = 128,
    data_bits: int = 64,
) -> RegisterFileCost:
    """Cost model for one register-file organization.

    With TC-only files an RB-output ALU needs all three bypass levels
    visible (two in redundant format plus the converter output); with a
    redundant register file alongside, level 2 disappears (the RB file
    covers it) at the price of 2x state per redundant entry.
    """
    if entries <= 0 or data_bits <= 0:
        raise ValueError(f"entries/data_bits must be positive: {entries}, {data_bits}")
    if organization is RegisterFileOrganization.TC_ONLY:
        return RegisterFileCost(
            organization=organization,
            entries=entries,
            data_bits=data_bits,
            storage_bits=entries * data_bits,
            bypass_levels_rb_alu=BYPASS_LEVELS,
            bypass_levels_tc_alu=1,
            bypass_paths_per_fu=BYPASS_LEVELS,
        )
    # TC + RB: a redundant entry holds two bit-vectors (X+ and X-).
    return RegisterFileCost(
        organization=organization,
        entries=entries,
        data_bits=data_bits,
        storage_bits=entries * data_bits + entries * 2 * data_bits,
        bypass_levels_rb_alu=1,
        bypass_levels_tc_alu=1,
        bypass_paths_per_fu=2,  # first-level RB + converter output
    )


def compare_organizations(entries: int = 128, data_bits: int = 64) -> dict[str, RegisterFileCost]:
    """Both §4.1 design points side by side."""
    return {
        org.value: register_file_cost(org, entries, data_bits)
        for org in RegisterFileOrganization
    }
