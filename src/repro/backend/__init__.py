"""Execution-core timing components (paper Section 4).

* :mod:`repro.backend.formats` — the two data formats values travel in.
* :mod:`repro.backend.latency` — Table 3: per-class execution latencies
  for the Baseline / RB / Ideal adder styles.
* :mod:`repro.backend.bypass` — availability templates: at which
  select-relative cycles a producer's result is reachable by a consumer,
  for full and limited bypass networks (including the paper's holes).
* :mod:`repro.backend.scheduler` — wakeup-array scheduling with
  shift-register-style availability (Fig. 8), select-2 per scheduler.
* :mod:`repro.backend.steering` — round-robin steering of groups of two
  consecutive instructions to schedulers.
* :mod:`repro.backend.fu` — functional-unit occupancy bookkeeping.
"""

from repro.backend.bypass import AvailabilityTemplate, BypassModel, BypassStyle
from repro.backend.formats import DataFormat
from repro.backend.latency import AdderStyle, LatencyModel, TABLE3
from repro.backend.scheduler import Scheduler, SchedulerEntry
from repro.backend.steering import RoundRobinSteering

__all__ = [
    "DataFormat",
    "AdderStyle",
    "LatencyModel",
    "TABLE3",
    "AvailabilityTemplate",
    "BypassModel",
    "BypassStyle",
    "Scheduler",
    "SchedulerEntry",
    "RoundRobinSteering",
]
