"""The two in-flight data formats (paper §3, §4.1)."""

from __future__ import annotations

import enum


class DataFormat(enum.Enum):
    """Format a register value is produced in.

    ``TC`` values are usable by every consumer.  ``RB`` values are usable
    immediately by RB-input functional units and become TC after the
    2-cycle format conversion.
    """

    TC = "tc"
    RB = "rb"
