"""Wakeup-array scheduling logic with select-2 (paper §4.3, Fig. 8).

Each scheduler holds up to ``capacity`` instructions and selects up to
``select_width`` (2 in the paper: one per attached functional unit) each
cycle, oldest first.  Readiness is delegated to a callback supplied by the
machine, which evaluates every source operand's availability template —
the software analogue of monitoring RESOURCE AVAILABLE lines driven by
the producers' countdown shift registers.

Holes in data availability are handled exactly as the paper describes:
when an instruction's sources are jointly available only at some later
cycle, the callback returns that cycle and the entry sleeps until then
(the shift register's interleaved 0s and 1s).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Generic, TypeVar

from repro.obs.events import EventKind, TraceEvent
from repro.obs.metrics import MetricsRegistry, counter_property

T = TypeVar("T")

#: The readiness callback: (record, cycle) -> (ready_now, next_candidate_cycle).
#: ``next_candidate_cycle`` is consulted only when not ready; it must be
#: > the queried cycle (the entry will be re-examined then).
ReadyFn = Callable[[T, int], tuple[bool, int]]


class SchedulerEntry(Generic[T]):
    """One reservation-station entry."""

    __slots__ = ("record", "next_try")

    def __init__(self, record: T, next_try: int) -> None:
        self.record = record
        self.next_try = next_try

    def __repr__(self) -> str:
        return f"SchedulerEntry({self.record!r}, next_try={self.next_try})"


#: Result for select cycles that grant nothing.  The empty tuple is a
#: CPython singleton, so idle cycles allocate nothing — and unlike the
#: shared empty list this module used to return, a caller that mutates
#: its "result" cannot corrupt every other scheduler's idle selects.
_NO_GRANTS: tuple = ()


class Scheduler(Generic[T]):
    """One select-N scheduler over a bounded window of entries."""

    # Counts live in the shared metrics registry (named per scheduler) so
    # they persist and report without bespoke property/setter plumbing.
    selected_total = counter_property("scheduler.{self.name}.selected")
    full_stall_cycles = counter_property("scheduler.{self.name}.full_stall_cycles")
    #: cycles where select bandwidth ran out with due entries still waiting
    contended_cycles = counter_property("scheduler.{self.name}.contended_cycles")

    def __init__(
        self,
        capacity: int,
        select_width: int = 2,
        name: str = "sched",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity <= 0 or select_width <= 0:
            raise ValueError(
                f"capacity/select width must be positive: {capacity}, {select_width}"
            )
        self.capacity = capacity
        self.select_width = select_width
        self.name = name
        self.entries: list[SchedulerEntry[T]] = []  # oldest first
        # Lower bound on min(entry.next_try): lets select() return
        # immediately on cycles where no entry can possibly be due, and
        # lets the machine's cycle-skipping ask when to wake this
        # scheduler.  Always <= the true minimum; tightened to exact by
        # every full select scan.
        self._min_next_try = 0
        # Scratch buffer for grant indices, reused across select() calls.
        # It never escapes the method, so reuse is safe — and it spares
        # one list allocation per select cycle, which at one call per
        # scheduler per simulated cycle is most of select's garbage.
        self._grant_scratch: list[int] = []
        # A private registry is used when the caller does not supply one.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Touch every counter so it serializes even when it stays zero.
        self.selected_total = 0
        self.full_stall_cycles = 0
        self.contended_cycles = 0

    def note_full_stall(self, cycle: int, bus=None, seq: int = -1) -> None:
        """Record one dispatch cycle blocked on this scheduler being full.

        Also emits the cause-tagged ``stall`` event for the cycle when a
        bus is attached, so window-full cycles are attributed at the
        point where the back-pressure originates.
        """
        self.full_stall_cycles += 1
        if bus is not None:
            bus.emit(TraceEvent(
                cycle, EventKind.STALL, seq,
                args={"cause": "window-full", "unit": self.name},
            ))

    @property
    def occupancy(self) -> int:
        return len(self.entries)

    def has_room(self, count: int = 1) -> bool:
        return len(self.entries) + count <= self.capacity

    def insert(self, record: T, earliest_select: int) -> None:
        """Place an instruction in the window; selectable from ``earliest_select``."""
        if not self.has_room():
            raise RuntimeError(f"{self.name}: insert into full scheduler")
        if not self.entries or earliest_select < self._min_next_try:
            self._min_next_try = earliest_select
        self.entries.append(SchedulerEntry(record, earliest_select))

    def next_wake(self) -> int | None:
        """Earliest cycle at which any entry could be due (None when empty).

        A lower bound: waking the scheduler then and re-running
        :meth:`select` (which tightens the bound) never misses a due
        entry, so a cycle-skipping simulator can sleep until this cycle.
        """
        return self._min_next_try if self.entries else None

    def select(self, cycle: int, is_ready: ReadyFn) -> list[T] | tuple[()]:
        """One select cycle: grant up to ``select_width`` ready entries, oldest first.

        Returns the granted records (a fresh list), or an immutable empty
        tuple when nothing was granted.
        """
        entries = self.entries
        if not entries or cycle < self._min_next_try:
            return _NO_GRANTS
        # The result list is allocated lazily on the first grant; idle and
        # fruitless scans (the overwhelming majority of calls) allocate
        # nothing at all.
        granted: list[T] | None = None
        grant_indices = self._grant_scratch
        select_width = self.select_width
        for index, entry in enumerate(entries):
            if granted is not None and len(granted) == select_width:
                # Select bandwidth ran out.  Count the cycle as contended
                # only if a remaining entry actually lost a grant: being
                # due (next_try <= cycle) is necessary but not sufficient
                # — its operands must also be ready.  Probing also lets
                # the entry sleep until its true candidate cycle, exactly
                # as examining it in the main scan would.
                for later in range(index, len(entries)):
                    loser = entries[later]
                    if loser.next_try > cycle:
                        continue
                    ready, next_candidate = is_ready(loser.record, cycle)
                    if ready:
                        self.contended_cycles += 1
                        break
                    if next_candidate <= cycle:
                        raise AssertionError(
                            f"{self.name}: readiness callback returned stale "
                            f"next_candidate {next_candidate} at cycle {cycle}"
                        )
                    loser.next_try = next_candidate
                break
            if entry.next_try > cycle:
                continue
            ready, next_candidate = is_ready(entry.record, cycle)
            if ready:
                if granted is None:
                    granted = [entry.record]
                else:
                    granted.append(entry.record)
                grant_indices.append(index)
            else:
                if next_candidate <= cycle:
                    raise AssertionError(
                        f"{self.name}: readiness callback returned stale "
                        f"next_candidate {next_candidate} at cycle {cycle}"
                    )
                entry.next_try = next_candidate
        if grant_indices:
            for index in reversed(grant_indices):
                del entries[index]
            del grant_indices[:]
        if granted:
            self.selected_total += len(granted)
            return granted
        if entries:
            # Fruitless full scan: every entry was examined (an early
            # break needs select_width grants), so the exact minimum is
            # known — tighten the bound so idle cycles short-circuit.
            self._min_next_try = min(e.next_try for e in entries)
        return _NO_GRANTS

    def __repr__(self) -> str:
        return f"Scheduler({self.name}, {self.occupancy}/{self.capacity})"
