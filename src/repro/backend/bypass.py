"""Bypass-network availability templates (paper §4.2).

All timing is expressed in *select-cycle space*: if a producer is selected
at cycle ``s_p`` and a consumer at ``s_c``, the consumer reads its operands
at the start of execution, ``s_c + RF_READ_CYCLES + 1`` cycles later — the
same pipeline distance for both — so whether a value is reachable depends
only on the offset ``s_c - s_p``.

With an execution latency of L (in the format the consumer needs) and a
2-cycle register file, a full bypass network makes the value reachable at
every offset >= L: offsets L, L+1, L+2 ride bypass levels 1, 2, 3, and
offsets >= L+3 read the register file (the write-stage-to-read-stage
forwarding inside the register file counts as part of "the register
file", as in the paper's figures).  Deleting bypass level k removes
offset L+k-1, leaving a hole that the Fig. 8 shift-register scheduling
encodes as a 0 bit between 1s.

An :class:`AvailabilityTemplate` is exactly that shift-register pattern:
a small set of discrete reachable offsets plus the offset from which the
value is permanently reachable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.backend.formats import DataFormat
from repro.backend.latency import AdderStyle, LatencyModel
from repro.isa.opcodes import LatencyClass

#: Bypass levels in a full network for a 2-cycle register file (paper §5.2).
BYPASS_LEVELS = 3
#: Select-offset distance past the exec latency at which the register file
#: (including its internal write-to-read forwarding) serves the value.
RF_DISTANCE = BYPASS_LEVELS


class BypassStyle(enum.Enum):
    """The bypass-network configurations studied in the paper."""

    FULL = "full"              # all levels present
    RB_LIMITED = "rb-limited"  # §4.2: BYP-2 deleted; BYP-3 not visible to RB inputs
    LIMITED = "limited"        # Fig. 14: an arbitrary set of deleted levels


@dataclass(frozen=True)
class AvailabilityTemplate:
    """When a result is reachable, as select-cycle offsets from the producer.

    ``discrete`` lists individually reachable offsets below
    ``permanent_from``; from ``permanent_from`` onward the value is always
    reachable.  This is the initial value of the Fig. 8 countdown shift
    register (interleaved 0s and 1s for holes).
    """

    discrete: tuple[int, ...]
    permanent_from: int

    def __post_init__(self) -> None:
        if any(o >= self.permanent_from for o in self.discrete):
            raise ValueError(
                f"discrete offsets {self.discrete} overlap permanent_from "
                f"{self.permanent_from}"
            )
        if list(self.discrete) != sorted(set(self.discrete)):
            raise ValueError(f"discrete offsets must be sorted unique: {self.discrete}")

    def available(self, offset: int) -> bool:
        """Is the value reachable at this select offset?"""
        return offset >= self.permanent_from or offset in self.discrete

    def next_available(self, offset: int) -> int:
        """The smallest reachable offset >= ``offset``."""
        if offset >= self.permanent_from:
            return offset
        for candidate in self.discrete:
            if candidate >= offset:
                return candidate
        return self.permanent_from

    @property
    def first_offset(self) -> int:
        """The earliest reachable offset."""
        return self.discrete[0] if self.discrete else self.permanent_from

    def flatten(self) -> tuple[int, int, int]:
        """``(mask, permanent_from, first_offset)`` as plain integers.

        ``mask`` has bit *i* set iff offset *i* is a discrete reachable
        offset, so the SoA engine's hole test and next-available search
        become two bit operations (``(mask >> offset) & 1`` and the
        lowest-set-bit of ``mask >> start``) instead of tuple walks.
        """
        mask = 0
        for offset in self.discrete:
            mask |= 1 << offset
        return mask, self.permanent_from, self.first_offset

    def has_hole(self) -> bool:
        """True if there are unreachable offsets after the first reachable one."""
        reachable = list(self.discrete) + [self.permanent_from]
        return reachable[-1] - reachable[0] + 1 > len(reachable)

    def shift_register_bits(self, length: int | None = None) -> list[int]:
        """The Fig. 8 shift-register image: bit i == reachable at offset i+1."""
        if length is None:
            length = self.permanent_from
        return [1 if self.available(i + 1) else 0 for i in range(length)]

    def describe(self) -> str:
        """The Fig. 8 pattern as text, e.g. ``offsets 1, _, 3+`` for a hole
        at offset 2."""
        cells = [
            str(offset) if self.available(offset) else "_"
            for offset in range(self.first_offset, self.permanent_from)
        ]
        cells.append(f"{self.permanent_from}+")
        return "offsets " + ", ".join(cells)


def template_from_levels(exec_latency: int, removed_levels: frozenset[int]) -> AvailabilityTemplate:
    """Build a template for a producer of latency L with some levels deleted."""
    permanent = exec_latency + RF_DISTANCE
    discrete = tuple(
        exec_latency + level - 1
        for level in range(1, BYPASS_LEVELS + 1)
        if level not in removed_levels
    )
    # Fold a contiguous tail of discrete offsets into permanent_from.
    discrete_list = list(discrete)
    while discrete_list and discrete_list[-1] == permanent - 1:
        permanent -= 1
        discrete_list.pop()
    return AvailabilityTemplate(tuple(discrete_list), permanent)


class BypassModel:
    """Produces availability templates for one machine configuration.

    Parameters
    ----------
    adder_style:
        Which Table 3 column the machine uses.
    bypass_style:
        FULL, RB_LIMITED (the §4.2 network), or LIMITED with
        ``removed_levels`` (the Fig. 14 study).
    removed_levels:
        For LIMITED: which of the 3 bypass levels are deleted (e.g.
        {1, 2} for the paper's "No-1,2" machine).
    """

    def __init__(
        self,
        adder_style: AdderStyle,
        bypass_style: BypassStyle = BypassStyle.FULL,
        removed_levels: frozenset[int] | None = None,
        conversion_cycles: int = 2,
    ) -> None:
        if bypass_style is BypassStyle.LIMITED:
            if not removed_levels:
                raise ValueError("LIMITED bypass needs a non-empty removed_levels set")
            bad = set(removed_levels) - set(range(1, BYPASS_LEVELS + 1))
            if bad:
                raise ValueError(f"removed levels out of range: {sorted(bad)}")
        elif removed_levels:
            raise ValueError(f"removed_levels only meaningful for LIMITED, got {bypass_style}")
        if bypass_style is BypassStyle.RB_LIMITED and adder_style is not AdderStyle.RB:
            raise ValueError("RB_LIMITED bypass requires the RB adder style")
        self.adder_style = adder_style
        self.bypass_style = bypass_style
        self.removed_levels = frozenset(removed_levels or ())
        self.latency = LatencyModel(adder_style, conversion_cycles)
        self._cache: dict[tuple[LatencyClass, bool], dict[DataFormat, AvailabilityTemplate]] = {}

    def templates(
        self, latency_class: LatencyClass, produces_rb: bool
    ) -> dict[DataFormat, AvailabilityTemplate]:
        """Availability templates for a producer of this class.

        Keys: the format the *consumer* reads the value in.  ``RB`` maps to
        when RB-input consumers can get it (in either format — a TC value
        is trivially RB-consumable); ``TC`` to when TC-input consumers can.
        """
        key = (latency_class, produces_rb)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        templates = self._build(latency_class, produces_rb)
        self._cache[key] = templates
        return templates

    def _build(
        self, latency_class: LatencyClass, produces_rb: bool
    ) -> dict[DataFormat, AvailabilityTemplate]:
        exec_latency = self.latency.exec_latency(latency_class)
        tc_latency = self.latency.tc_latency(latency_class)
        if not produces_rb:
            tc_latency = exec_latency

        if self.bypass_style is BypassStyle.FULL:
            # Full networks are continuous from the first availability in
            # each format (the RB-full machine's RB register file plays the
            # role of BYP-2 and beyond for RB consumers).
            rb_template = AvailabilityTemplate((), exec_latency)
            tc_template = AvailabilityTemplate((), tc_latency)
            return {DataFormat.RB: rb_template, DataFormat.TC: tc_template}

        if self.bypass_style is BypassStyle.RB_LIMITED:
            if not produces_rb:
                # TC producers (loads, logicals, ...) keep BYP-1 (their only
                # level in use is the first one: the paper removes only the
                # *second* level, and TC results written straight to the TC
                # register file are continuous past it).
                template = template_from_levels(exec_latency, frozenset({2}))
                return {DataFormat.RB: template, DataFormat.TC: template}
            # RB producers: RB consumers see BYP-1 only, then the (converted)
            # value from the register file -> a 2-cycle hole.  TC consumers
            # see BYP-3 (the converter output) and then the register file.
            rf_from = tc_latency + 1  # register-file write-to-read forwarding
            rb_template = AvailabilityTemplate((exec_latency,), rf_from)
            tc_template = AvailabilityTemplate((tc_latency,), rf_from)
            return {DataFormat.RB: rb_template, DataFormat.TC: tc_template}

        # LIMITED (Fig. 14): same deletion applied to every producer class.
        template = template_from_levels(exec_latency, self.removed_levels)
        if produces_rb:
            tc_template = template_from_levels(tc_latency, self.removed_levels)
        else:
            tc_template = template
        return {DataFormat.RB: template, DataFormat.TC: tc_template}

    def hole_summary(self) -> list[str]:
        """Human-readable Fig. 8 availability patterns for the main
        producer classes; rendered by the ``repro explain`` report."""
        rb_adds = self.adder_style is not AdderStyle.BASELINE
        lines: list[str] = []
        for label, latency_class, produces_rb in (
            ("add", LatencyClass.INT_ARITH, rb_adds),
            ("logical", LatencyClass.INT_LOGICAL, False),
        ):
            templates = self.templates(latency_class, produces_rb)
            for fmt in (DataFormat.RB, DataFormat.TC):
                template = templates[fmt]
                hole = " (hole)" if template.has_hole() else ""
                lines.append(
                    f"{label} -> {fmt.name}-input consumer: "
                    f"{template.describe()}{hole}"
                )
        return lines

    def load_template(self, load_latency: int) -> AvailabilityTemplate:
        """Availability template for a load with a known (dynamic) latency.

        Loads produce two's-complement data out of the cache, so one
        template serves both consumer formats; the bypass-level deletions
        apply to the cache-output buses the same way they do to ALU
        outputs.  ``load_latency`` is the agen + cache latency actually
        observed (variable on misses), in select-cycle offsets.
        """
        if load_latency <= 0:
            raise ValueError(f"load latency must be positive, got {load_latency}")
        if self.bypass_style is BypassStyle.FULL:
            return AvailabilityTemplate((), load_latency)
        if self.bypass_style is BypassStyle.RB_LIMITED:
            return template_from_levels(load_latency, frozenset({2}))
        return template_from_levels(load_latency, self.removed_levels)
