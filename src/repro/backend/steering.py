"""Instruction steering policies.

The paper's machines steer groups of two consecutive instructions to each
scheduler round-robin (§5.1).  Its §4.2 closes by noting that *instruction
steering* could make further bypass restrictions cheap and leaves it as
future work; :func:`choose_dependence_target` implements that extension —
send an instruction to the scheduler of its most recent producer, so
forwarding stays within a cluster and within the cheap bypass levels.
"""

from __future__ import annotations

from collections.abc import Sequence


class RoundRobinSteering:
    """Round-robin steering of fixed-size instruction groups."""

    def __init__(self, num_schedulers: int, group_size: int = 2) -> None:
        if num_schedulers <= 0 or group_size <= 0:
            raise ValueError(
                f"schedulers/group size must be positive: {num_schedulers}, {group_size}"
            )
        self.num_schedulers = num_schedulers
        self.group_size = group_size
        self._current = 0
        self._in_group = 0

    def next_scheduler(self) -> int:
        """Scheduler index for the next instruction in program order."""
        target = self._current
        self._in_group += 1
        if self._in_group == self.group_size:
            self._in_group = 0
            self._current = (self._current + 1) % self.num_schedulers
        return target

    def peek(self) -> int:
        """The scheduler the next instruction would go to, without advancing."""
        return self._current

    def reset(self) -> None:
        self._current = 0
        self._in_group = 0


def choose_dependence_target(
    producer_schedulers: Sequence[int],
    occupancies: Sequence[int],
    capacity: int,
    round_robin_hint: int,
) -> int | None:
    """Pick a scheduler for dependence-aware steering.

    ``producer_schedulers`` lists the schedulers holding this
    instruction's producers, most recent producer first.  Preference
    order: the most recent producer's scheduler (dependents selected there
    forward locally), then any other producer's, then the least-occupied
    scheduler (starting the search at the round-robin hint so independent
    code still spreads out).  Returns None when every scheduler is full —
    the caller stalls dispatch.
    """
    for scheduler in producer_schedulers:
        if 0 <= scheduler < len(occupancies) and occupancies[scheduler] < capacity:
            return scheduler
    candidates = [
        (occupancies[i], (i - round_robin_hint) % len(occupancies), i)
        for i in range(len(occupancies))
        if occupancies[i] < capacity
    ]
    if not candidates:
        return None
    return min(candidates)[2]
