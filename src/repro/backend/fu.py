"""Functional-unit bookkeeping.

The paper's functional units are homogeneous and (except for the adders
under study) pipelined, with two units fed by each select-2 scheduler, so
structural hazards beyond the select bandwidth do not arise; this module
tracks issue counts and utilization for the statistics the harness
reports.
"""

from __future__ import annotations


class FunctionalUnitPool:
    """Utilization counters for the FUs attached to one scheduler."""

    def __init__(self, units: int, name: str = "fu") -> None:
        if units <= 0:
            raise ValueError(f"unit count must be positive, got {units}")
        self.units = units
        self.name = name
        self.issued = 0
        self.busy_cycles = 0

    def issue(self, count: int, latency: int) -> None:
        """Record ``count`` issues of operations occupying ``latency`` cycles."""
        if count > self.units:
            raise ValueError(
                f"{self.name}: issued {count} ops to {self.units} units in one cycle"
            )
        self.issued += count
        self.busy_cycles += count * latency

    def utilization(self, cycles: int) -> float:
        """Average fraction of issue slots used over ``cycles``."""
        if cycles <= 0:
            return 0.0
        return self.issued / (cycles * self.units)
