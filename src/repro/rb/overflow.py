"""Overflow handling for fixed-width redundant binary results (paper §3.5).

Non-zero digits propagate toward the most significant digit faster in RB
than in two's complement, so a chain of RB adds can produce a carry-out of
the top digit even when the value still fits ("bogus overflow").  The fix
exploits the identities <1,-1> == <0,1> and <-1,1> == <0,-1> at the
(carry-out, MSD) pair.

After bogus correction, genuine two's-complement overflow is detected and
the most significant digit is adjusted so the stored representation equals
the wrapped two's-complement result — flipping the MSD between -1 and +1
changes the represented value by exactly 2**width, so it is the RB analogue
of two's-complement wrap-around.  Keeping the representation wrapped is what
makes the §3.6 sign tests (most significant non-zero digit) agree with
two's-complement semantics.
"""

from __future__ import annotations

from repro.rb.number import RBNumber


def correct_bogus_overflow(carry: int, msd: int) -> tuple[int, int]:
    """Apply the <1,-1> -> <0,1> / <-1,1> -> <0,-1> identity at the top digit.

    ``carry`` is the carry out of the most significant digit and ``msd`` the
    most significant digit itself.  Returns the corrected ``(carry, msd)``.
    """
    if carry not in (-1, 0, 1) or msd not in (-1, 0, 1):
        raise ValueError(f"carry/msd must be redundant digits, got {carry}, {msd}")
    if carry == 1 and msd == -1:
        return 0, 1
    if carry == -1 and msd == 1:
        return 0, -1
    return carry, msd


def normalize_msd(number: RBNumber, carry: int = 0) -> tuple[RBNumber, bool]:
    """Wrap a fixed-width RB result into two's-complement range.

    Implements the three §3.5 overflow events:

    1. carry out still non-zero after bogus-overflow correction;
    2. MSD is -1 while the rest of the result is negative (true value below
       ``-2**(width-1)``): flip the MSD to +1;
    3. MSD is +1 while the rest is not negative (true value at or above
       ``2**(width-1)``): flip the MSD to -1.

    Returns ``(normalized, overflowed)``.  The normalized number's
    represented value is congruent to the input value (+ carry * 2**width)
    modulo ``2**width`` and always lies in two's-complement range, so its
    sign matches two's-complement semantics.
    """
    width = number.width
    carry, msd = correct_bogus_overflow(carry, number.msd())
    number = number.with_digit(width - 1, msd)
    overflow = carry != 0

    value = number.value()
    half = 1 << (width - 1)
    if value >= half:
        # Event 3: only an MSD of +1 can push the value this high.
        number = number.with_digit(width - 1, -1)
        overflow = True
    elif value < -half:
        # Event 2: only an MSD of -1 can push the value this low.
        number = number.with_digit(width - 1, 1)
        overflow = True
    return number, overflow
