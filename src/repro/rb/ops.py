"""The non-add operations that work on redundant binary inputs (paper §3.6).

Shifts left, scaled adds, trailing-zero counts, conditional tests, and
quadword-to-longword extraction can all run directly on RB operands; byte
manipulation, general logicals, right shifts, CTLZ and CTPOP cannot and
must wait for a format conversion (that asymmetry is what Table 1 encodes
and what the simulator's format rules enforce).
"""

from __future__ import annotations

from repro.rb.adder import AddResult, rb_add
from repro.rb.number import RBNumber
from repro.rb.overflow import normalize_msd


def shift_left_digits(number: RBNumber, amount: int) -> tuple[RBNumber, bool]:
    """Shift left by ``amount`` digit positions (the RB analogue of SLL).

    Digits shifted out the top contribute multiples of ``2**width`` and are
    dropped; the result is then MSD-normalized so its sign matches the
    wrapped two's-complement result (the paper's "change a most significant
    1 to -1" rule, generalized to both signs).  Returns (result, overflow).
    """
    if amount < 0:
        raise ValueError(f"shift amount must be non-negative, got {amount}")
    width = number.width
    amount = min(amount, width)
    mask = (1 << width) - 1
    shifted = RBNumber(
        width,
        (number.plus << amount) & mask,
        (number.minus << amount) & mask,
    )
    return normalize_msd(shifted)


def scaled_add(
    scaled: RBNumber, addend: RBNumber, scale: int
) -> AddResult:
    """The Alpha SxADD: shift ``scaled`` left by ``scale`` digits, then add.

    ``scale`` is 2 (S4ADD) or 3 (S8ADD) in the Alpha ISA but any
    non-negative value is accepted.
    """
    shifted, _ = shift_left_digits(scaled, scale)
    return rb_add(shifted, addend)


def count_trailing_zero_digits(number: RBNumber) -> int:
    """CTTZ on an RB operand: count trailing zero *digits*.

    A digit is zero iff both encoding bits are clear, so this is a simple
    priority scan of ``plus | minus``.  Matches CTTZ on the TC value
    because the lowest non-zero digit determines the lowest set TC bit.
    """
    nonzero = number.plus | number.minus
    if nonzero == 0:
        return number.width
    return (nonzero & -nonzero).bit_length() - 1


def sign_of(number: RBNumber) -> int:
    """Sign of an RB number: the sign of its most significant non-zero digit.

    Returns -1, 0, or +1.  With digits in {-1, 0, 1} the top non-zero digit
    always dominates the rest, so this test is exact — the extra circuit the
    paper notes conditional moves/branches need.
    """
    nonzero = number.plus | number.minus
    if nonzero == 0:
        return 0
    top = nonzero.bit_length() - 1
    return number.digit(top)


def is_zero(number: RBNumber) -> bool:
    """Zero test: all digits zero (a wide OR, same as two's complement).

    Zero has a unique RB representation: the top non-zero digit of any other
    encoding contributes more than all lower digits can cancel.
    """
    return (number.plus | number.minus) == 0


def is_negative(number: RBNumber) -> bool:
    """True if the represented value is negative."""
    return sign_of(number) < 0


def lsb_set(number: RBNumber) -> bool:
    """Test the least significant bit (for BLBC/BLBS, CMOVLBx).

    The value is odd iff digit 0 is non-zero: a 2-input OR of the two bits
    encoding the least significant digit (§3.6).
    """
    return ((number.plus | number.minus) & 1) != 0


def extract_longword(number: RBNumber, long_width: int = 32) -> tuple[RBNumber, bool]:
    """Quadword-to-longword forwarding (§3.6).

    Truncates to the low ``long_width`` digits (dropping multiples of
    ``2**long_width``) and applies the same bogus-overflow / MSD
    normalization used at the full width, now at digit ``long_width``, so
    the longword keeps the correct two's-complement sign.
    """
    if not 0 < long_width < number.width:
        raise ValueError(
            f"longword width {long_width} must be inside quadword width {number.width}"
        )
    return normalize_msd(number.truncated(long_width))
