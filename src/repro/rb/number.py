"""The :class:`RBNumber` signed-digit value type (paper §3.1-3.2).

An n-digit redundant binary number is stored as two n-bit unsigned integers:
``plus`` holds the positions whose digit is +1, ``minus`` the positions whose
digit is -1.  This mirrors the paper's hardware encoding where 1, 0, -1 are
encoded as (neg, pos) = (0,1), (0,0), (1,0); the (1,1) pattern is invalid.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class RBNumber:
    """An immutable redundant binary number with a fixed digit width.

    The *represented value* is ``plus - minus`` interpreted as plain integers
    (each digit i contributes ``digit * 2**i``).  Because the digit set is
    {-1, 0, 1}, an n-digit number can represent any value in
    ``[-(2**n - 1), 2**n - 1]``, and most values have several encodings.
    """

    __slots__ = ("_width", "_plus", "_minus")

    def __init__(self, width: int, plus: int, minus: int) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        mask = (1 << width) - 1
        if plus & ~mask or minus & ~mask:
            raise ValueError(
                f"plus/minus have bits beyond width {width}: "
                f"plus={plus:#x} minus={minus:#x}"
            )
        if plus & minus:
            raise ValueError(
                f"invalid (1,1) digit encoding at positions {plus & minus:#x}"
            )
        self._width = width
        self._plus = plus
        self._minus = minus

    # -- construction -----------------------------------------------------

    @classmethod
    def zero(cls, width: int) -> "RBNumber":
        """The all-zero-digit number (the unique encoding of 0)."""
        return cls(width, 0, 0)

    @classmethod
    def from_digits(cls, digits: Sequence[int]) -> "RBNumber":
        """Build from a digit sequence, least significant digit first."""
        plus = 0
        minus = 0
        for i, d in enumerate(digits):
            if d == 1:
                plus |= 1 << i
            elif d == -1:
                minus |= 1 << i
            elif d != 0:
                raise ValueError(f"digit {d} at position {i} not in {{-1, 0, 1}}")
        return cls(len(digits), plus, minus)

    @classmethod
    def from_msd_digits(cls, digits: Sequence[int]) -> "RBNumber":
        """Build from a digit sequence written most significant digit first.

        Matches the paper's notation, e.g. ``<0, 1, 0, -1>`` is 3.
        """
        return cls.from_digits(list(reversed(digits)))

    # -- accessors ---------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of digits."""
        return self._width

    @property
    def plus(self) -> int:
        """Bit i set iff digit i is +1 (the X+ component, §3.2)."""
        return self._plus

    @property
    def minus(self) -> int:
        """Bit i set iff digit i is -1 (the X- component, §3.2)."""
        return self._minus

    def digit(self, index: int) -> int:
        """Digit at ``index`` (0 = least significant), in {-1, 0, 1}."""
        if not 0 <= index < self._width:
            raise IndexError(f"digit index {index} out of range for width {self._width}")
        if (self._plus >> index) & 1:
            return 1
        if (self._minus >> index) & 1:
            return -1
        return 0

    def digits(self) -> list[int]:
        """All digits, least significant first."""
        return [self.digit(i) for i in range(self._width)]

    def msd(self) -> int:
        """The most significant digit."""
        return self.digit(self._width - 1)

    def value(self) -> int:
        """The represented integer value (exact, not wrapped)."""
        return self._plus - self._minus

    def nonzero_digit_count(self) -> int:
        """How many digits are nonzero (a measure of representation density)."""
        return (self._plus | self._minus).bit_count()

    # -- simple transforms ---------------------------------------------------

    def with_digit(self, index: int, digit: int) -> "RBNumber":
        """A copy with digit ``index`` replaced by ``digit``."""
        if digit not in (-1, 0, 1):
            raise ValueError(f"digit {digit} not in {{-1, 0, 1}}")
        if not 0 <= index < self._width:
            raise IndexError(f"digit index {index} out of range for width {self._width}")
        bitmask = 1 << index
        plus = self._plus & ~bitmask
        minus = self._minus & ~bitmask
        if digit == 1:
            plus |= bitmask
        elif digit == -1:
            minus |= bitmask
        return RBNumber(self._width, plus, minus)

    def negated(self) -> "RBNumber":
        """Digit-wise negation: swap the plus and minus components.

        This is why RB subtraction is as cheap as addition (§3.6).
        """
        return RBNumber(self._width, self._minus, self._plus)

    def truncated(self, width: int) -> "RBNumber":
        """Keep only the low ``width`` digits (value changes by a multiple
        of ``2**width``)."""
        if not 0 < width <= self._width:
            raise ValueError(f"cannot truncate width {self._width} to {width}")
        mask = (1 << width) - 1
        return RBNumber(width, self._plus & mask, self._minus & mask)

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RBNumber):
            return NotImplemented
        return (
            self._width == other._width
            and self._plus == other._plus
            and self._minus == other._minus
        )

    def __hash__(self) -> int:
        return hash((self._width, self._plus, self._minus))

    def __repr__(self) -> str:
        msd_first = ", ".join(str(d) for d in reversed(self.digits()))
        return f"RBNumber<{msd_first}> (={self.value()})"


def digits_valid(digits: Iterable[int]) -> bool:
    """True if every digit is in the redundant binary digit set."""
    return all(d in (-1, 0, 1) for d in digits)
