"""An ALU facade over the redundant binary primitives.

:class:`RBALU` executes the operation classes of Table 1 on
:class:`~repro.rb.number.RBNumber` operands and *enforces the paper's
format rules*: asking it to run a TC-only operation (general logicals, byte
manipulation, right shift, CTLZ, CTPOP) on an RB operand raises
:class:`FormatError` — in hardware those inputs simply are not wired to the
RB functional units, and the scheduler must wait for the format conversion.

The simulator's timing model uses instruction classes, not this ALU, for
speed; the ALU exists so correctness of the RB data path can be validated
against plain integer semantics (see tests/rb/test_alu.py) and so examples
can demonstrate the forwarding of redundant intermediate results.
"""

from __future__ import annotations

from repro.rb.adder import AddResult, rb_add, rb_sub
from repro.rb.convert import from_twos_complement, to_twos_complement
from repro.rb.number import RBNumber
from repro.rb.ops import (
    count_trailing_zero_digits,
    extract_longword,
    is_zero,
    lsb_set,
    scaled_add,
    shift_left_digits,
    sign_of,
)


class FormatError(TypeError):
    """An operation was asked to consume a format it cannot accept."""


class RBALU:
    """Executes RB-class operations on fixed-width redundant binary values."""

    def __init__(self, width: int = 64) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width

    # -- operand plumbing ---------------------------------------------------

    def encode(self, value: int) -> RBNumber:
        """Two's complement -> RB (the hardwired, free direction)."""
        return from_twos_complement(value, self.width)

    def decode(self, number: RBNumber) -> int:
        """RB -> signed two's complement (the slow, carry-propagating direction)."""
        self._check_width(number)
        return to_twos_complement(number)

    def _check_width(self, *numbers: RBNumber) -> None:
        for n in numbers:
            if n.width != self.width:
                raise FormatError(
                    f"operand width {n.width} does not match ALU width {self.width}"
                )

    # -- arithmetic (RB in, RB out) -------------------------------------------

    def add(self, x: RBNumber, y: RBNumber) -> AddResult:
        """Carry-free ADD with wrap semantics and overflow flag."""
        self._check_width(x, y)
        return rb_add(x, y)

    def sub(self, x: RBNumber, y: RBNumber) -> AddResult:
        """Carry-free SUB via digit-wise negation."""
        self._check_width(x, y)
        return rb_sub(x, y)

    def mul(self, x: RBNumber, y: RBNumber) -> RBNumber:
        """Redundant multiplication via partial-product accumulation."""
        self._check_width(x, y)
        from repro.rb.multiply import rb_multiply
        return rb_multiply(x, y)

    def scaled_add(self, x: RBNumber, y: RBNumber, scale: int) -> AddResult:
        """SxADD: (x << scale) + y with digit shifting."""
        self._check_width(x, y)
        return scaled_add(x, y, scale)

    def shift_left(self, x: RBNumber, amount: int) -> RBNumber:
        """SLL by a constant amount, shifting digits."""
        self._check_width(x)
        result, _ = shift_left_digits(x, amount)
        return result

    def cttz(self, x: RBNumber) -> int:
        """Count trailing zeros, executable on RB operands."""
        self._check_width(x)
        return count_trailing_zero_digits(x)

    # -- conditional tests (RB in) --------------------------------------------

    def compare_zero(self, x: RBNumber) -> int:
        """Three-way compare against zero: -1, 0, or +1."""
        self._check_width(x)
        return sign_of(x)

    def is_zero(self, x: RBNumber) -> bool:
        self._check_width(x)
        return is_zero(x)

    def lsb_set(self, x: RBNumber) -> bool:
        self._check_width(x)
        return lsb_set(x)

    def compare(self, x: RBNumber, y: RBNumber) -> int:
        """Three-way compare of two RB operands via subtraction (CMPxx).

        The paper marks CMP/CMOVEQ-style tests as needing a subtraction
        before the sign/zero test.  As in two's-complement hardware, the
        wrapped difference's sign is flipped when the subtraction
        overflowed (the signed-less-than ``N xor V`` rule).
        """
        self._check_width(x, y)
        result = rb_sub(x, y)
        sign = sign_of(result.value)
        return -sign if result.overflow else sign

    def extract_longword(self, x: RBNumber, long_width: int = 32) -> RBNumber:
        """Quadword-to-longword forwarding with MSD renormalization."""
        self._check_width(x)
        result, _ = extract_longword(x, long_width)
        return result

    # -- operations that must not see RB operands -------------------------------

    _TC_ONLY = (
        "AND", "OR", "XOR", "BIC", "ORNOT", "EQV",
        "SRL", "SRA", "CTLZ", "CTPOP",
        "EXTB", "INSB", "MSKB", "ZAP",
    )

    def require_tc(self, mnemonic: str) -> None:
        """Raise :class:`FormatError` for operations that need TC inputs.

        Mirrors the hardware restriction: these operations are only wired
        to TC-input functional units (Table 1's "Other" class).
        """
        if mnemonic.upper() in self._TC_ONLY:
            raise FormatError(
                f"{mnemonic} requires two's-complement inputs; "
                "convert the RB operand first (2-cycle format conversion)"
            )
        raise ValueError(f"{mnemonic} is not a TC-only operation")
