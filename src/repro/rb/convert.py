"""Conversion between two's complement and redundant binary (paper §3.2).

TC -> RB is free in hardware (hardwired): every bit except the sign bit
maps to the positive component, and the sign bit maps to the negative
component's most significant digit, so the value keeps its sign.

RB -> TC needs a full carry-propagating subtraction ``X+ - X-`` — the slow
direction, and the reason the paper charges a 2-cycle format-conversion
latency on every RB result consumed by a TC-input instruction.
"""

from __future__ import annotations

from repro.rb.number import RBNumber
from repro.utils.bitops import to_signed, to_unsigned


def from_twos_complement(value: int, width: int) -> RBNumber:
    """Encode a two's-complement integer as an RB number of ``width`` digits.

    ``value`` may be given as a signed integer or as its unsigned
    ``width``-bit pattern; both views of the same bit pattern produce the
    same RB number.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    bits = to_unsigned(value, width)
    sign_bit = 1 << (width - 1)
    plus = bits & ~sign_bit
    minus = bits & sign_bit
    return RBNumber(width, plus, minus)


def to_twos_complement(number: RBNumber) -> int:
    """Convert an RB number to its signed two's-complement value.

    Computes ``X+ - X-`` and wraps modulo ``2**width``, exactly what the
    hardware's subtraction circuit produces.
    """
    return to_signed(number.plus - number.minus, number.width)


def to_twos_complement_bits(number: RBNumber) -> int:
    """Convert an RB number to its unsigned ``width``-bit TC pattern."""
    return to_unsigned(number.plus - number.minus, number.width)
