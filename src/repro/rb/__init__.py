"""Redundant binary (signed-digit, radix-2) arithmetic — paper Section 3.

Numbers are vectors of digits in ``{-1, 0, 1}``; each digit is encoded as a
(negative-bit, positive-bit) pair, so an n-digit redundant binary (RB)
number carries two n-bit words, ``plus`` and ``minus`` (paper §3.1-3.2).
Addition is carry-free: each sum digit depends only on digits i, i-1, i-2
of the inputs (§3.3), so add latency is independent of width (§3.4).

Public surface:

* :class:`RBNumber` — immutable signed-digit value with a fixed digit width.
* :func:`rb_add`, :func:`rb_sub`, :func:`rb_negate` — carry-free arithmetic
  with two's-complement wrap semantics and overflow detection (§3.5).
* :mod:`repro.rb.convert` — TC <-> RB conversion (§3.2).
* :mod:`repro.rb.ops` — the other RB-executable operations (§3.6).
* :class:`RBALU` — facade that executes instruction-class operations and
  enforces the paper's format rules (Table 1).
"""

from repro.rb.adder import AddResult, interim_digit, rb_add, rb_add_digits, rb_negate, rb_sub
from repro.rb.alu import RBALU, FormatError
from repro.rb.convert import from_twos_complement, to_twos_complement
from repro.rb.multiply import partial_products, rb_multiply
from repro.rb.number import RBNumber
from repro.rb.ops import (
    count_trailing_zero_digits,
    extract_longword,
    is_negative,
    is_zero,
    lsb_set,
    scaled_add,
    shift_left_digits,
    sign_of,
)
from repro.rb.overflow import correct_bogus_overflow, normalize_msd

__all__ = [
    "RBNumber",
    "AddResult",
    "rb_add",
    "rb_add_digits",
    "rb_sub",
    "rb_negate",
    "rb_multiply",
    "partial_products",
    "interim_digit",
    "from_twos_complement",
    "to_twos_complement",
    "correct_bogus_overflow",
    "normalize_msd",
    "shift_left_digits",
    "scaled_add",
    "count_trailing_zero_digits",
    "extract_longword",
    "sign_of",
    "is_zero",
    "is_negative",
    "lsb_set",
    "RBALU",
    "FormatError",
]
