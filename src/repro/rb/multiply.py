"""Redundant binary multiplication (paper §3.6, Table 1 row 1).

Multiplication over signed-digit operands has been standard since the
ILLIAC III and the redundant-binary multiplier trees of Takagi et al. and
Makino et al. (the paper's refs [2], [12], [16]): generate one partial
product per multiplier digit (a shifted copy of the multiplicand, negated
for -1 digits — negation is free in this representation) and sum them
with carry-free adders.  The hardware sums them in a log-depth tree; this
functional model folds them sequentially, which is value-equivalent.

Fixed-width semantics match the ISA's MUL: the result is the product
wrapped modulo ``2**width`` with the usual MSD normalization, so its sign
agrees with two's complement and every downstream RB test works.
"""

from __future__ import annotations

from repro.rb.adder import rb_add
from repro.rb.number import RBNumber
from repro.rb.ops import shift_left_digits


def partial_products(x: RBNumber, y: RBNumber) -> list[RBNumber]:
    """One wrapped partial product per non-zero digit of ``y``.

    Digit i contributes ``x << i`` (digit +1) or its digit-wise negation
    (digit -1); shifts wrap modulo ``2**width`` like the final product.
    """
    if x.width != y.width:
        raise ValueError(f"width mismatch: {x.width} vs {y.width}")
    partials = []
    for i in range(y.width):
        digit = y.digit(i)
        if digit == 0:
            continue
        shifted, _ = shift_left_digits(x, i)
        partials.append(shifted.negated() if digit == -1 else shifted)
    return partials


def rb_multiply(x: RBNumber, y: RBNumber) -> RBNumber:
    """Fixed-width redundant binary multiplication.

    Returns an RB number whose represented value is ``x.value() *
    y.value()`` wrapped into two's-complement range (each partial-product
    accumulation renormalizes, so the invariant that the representation's
    sign matches two's complement is maintained throughout the tree).
    """
    accumulator = RBNumber.zero(x.width)
    for partial in partial_products(x, y):
        accumulator = rb_add(accumulator, partial).value
    return accumulator
