"""The carry-free redundant binary adder (paper §3.3-§3.5).

Addition is done in two digit-parallel steps.  For each position i the
digit sum ``p_i = x_i + y_i`` (in [-2, 2]) is split into an intermediate
carry ``c_i`` and interim sum ``s_i`` with ``p_i = 2*c_i + s_i``.  The split
is chosen by looking at position i-1 of the *inputs*, so that the incoming
intermediate carry can never push the final digit ``z_i = s_i + c_{i-1}``
out of {-1, 0, 1}:

* if both input digits at i-1 are non-negative, the incoming carry is in
  {0, 1}, so the interim sum is kept in {-1, 0};
* otherwise the incoming carry is in {-1, 0}, so the interim sum is kept
  in {0, 1}.

Hence digit i of the sum depends only on digits i, i-1, i-2 of the inputs
— the two-digit carry propagation the paper cites for its O(1) add latency.
This module is the functional model; the gate-level structure (Figure 2's
h/f slice) lives in :mod:`repro.circuits.rb_adder`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rb.number import RBNumber
from repro.rb.overflow import normalize_msd


@dataclass(frozen=True)
class AddResult:
    """Outcome of a fixed-width redundant binary addition."""

    value: RBNumber
    overflow: bool


def interim_digit(p: int, prev_both_nonneg: bool) -> tuple[int, int]:
    """Split a digit sum ``p`` into (intermediate carry, interim sum).

    ``prev_both_nonneg`` says whether both input digits one position below
    are non-negative (for position 0 there is no lower position, which
    counts as non-negative: no negative carry can arrive).
    """
    if p == 2:
        return 1, 0
    if p == 1:
        return (1, -1) if prev_both_nonneg else (0, 1)
    if p == 0:
        return 0, 0
    if p == -1:
        return (0, -1) if prev_both_nonneg else (-1, 1)
    if p == -2:
        return -1, 0
    raise ValueError(f"digit sum {p} out of range [-2, 2]")


def rb_add_digits(x: RBNumber, y: RBNumber) -> tuple[list[int], int]:
    """Raw carry-free addition: returns (sum digits, carry out of the MSD).

    The returned digits plus ``carry * 2**width`` equal ``x.value() +
    y.value()`` exactly.  Width-wrapping and overflow detection are applied
    by :func:`rb_add`.
    """
    if x.width != y.width:
        raise ValueError(f"width mismatch: {x.width} vs {y.width}")
    width = x.width
    carries = [0] * width
    interims = [0] * width
    for i in range(width):
        p = x.digit(i) + y.digit(i)
        if i == 0:
            prev_both_nonneg = True
        else:
            prev_both_nonneg = x.digit(i - 1) >= 0 and y.digit(i - 1) >= 0
        carries[i], interims[i] = interim_digit(p, prev_both_nonneg)
    digits = [0] * width
    for i in range(width):
        incoming = carries[i - 1] if i > 0 else 0
        z = interims[i] + incoming
        if z not in (-1, 0, 1):
            raise AssertionError(
                f"carry-free invariant violated at digit {i}: {z}"
            )
        digits[i] = z
    return digits, carries[width - 1]


def rb_add(x: RBNumber, y: RBNumber) -> AddResult:
    """Fixed-width RB addition with two's-complement wrap semantics.

    The represented value of the result equals ``(x.value() + y.value())``
    wrapped into ``[-2**(w-1), 2**(w-1) - 1]``; ``overflow`` is set exactly
    when the true sum falls outside that range (§3.5).
    """
    digits, carry = rb_add_digits(x, y)
    raw = RBNumber.from_digits(digits)
    value, overflow = normalize_msd(raw, carry)
    return AddResult(value=value, overflow=overflow)


def rb_negate(x: RBNumber) -> RBNumber:
    """Digit-wise negation (swap the plus/minus components)."""
    return x.negated()


def rb_sub(x: RBNumber, y: RBNumber) -> AddResult:
    """Fixed-width RB subtraction: add the digit-wise negation of ``y``."""
    return rb_add(x, rb_negate(y))
