"""The carry-free redundant binary adder (paper §3.3-§3.5).

Addition is done in two digit-parallel steps.  For each position i the
digit sum ``p_i = x_i + y_i`` (in [-2, 2]) is split into an intermediate
carry ``c_i`` and interim sum ``s_i`` with ``p_i = 2*c_i + s_i``.  The split
is chosen by looking at position i-1 of the *inputs*, so that the incoming
intermediate carry can never push the final digit ``z_i = s_i + c_{i-1}``
out of {-1, 0, 1}:

* if both input digits at i-1 are non-negative, the incoming carry is in
  {0, 1}, so the interim sum is kept in {-1, 0};
* otherwise the incoming carry is in {-1, 0}, so the interim sum is kept
  in {0, 1}.

Hence digit i of the sum depends only on digits i, i-1, i-2 of the inputs
— the two-digit carry propagation the paper cites for its O(1) add latency.
This module is the functional model; the gate-level structure (Figure 2's
h/f slice) lives in :mod:`repro.circuits.rb_adder`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rb.number import RBNumber
from repro.rb.overflow import normalize_msd


@dataclass(frozen=True)
class AddResult:
    """Outcome of a fixed-width redundant binary addition."""

    value: RBNumber
    overflow: bool


def interim_digit(p: int, prev_both_nonneg: bool) -> tuple[int, int]:
    """Split a digit sum ``p`` into (intermediate carry, interim sum).

    ``prev_both_nonneg`` says whether both input digits one position below
    are non-negative (for position 0 there is no lower position, which
    counts as non-negative: no negative carry can arrive).
    """
    if p == 2:
        return 1, 0
    if p == 1:
        return (1, -1) if prev_both_nonneg else (0, 1)
    if p == 0:
        return 0, 0
    if p == -1:
        return (0, -1) if prev_both_nonneg else (-1, 1)
    if p == -2:
        return -1, 0
    raise ValueError(f"digit sum {p} out of range [-2, 2]")


def _add_components(x: RBNumber, y: RBNumber) -> tuple[int, int, int, int]:
    """All digit positions of :func:`interim_digit` at once, bitwise.

    Returns ``(width, zp, zm, carry)`` — the plus/minus bit components of
    the digit sums plus the carry out of the MSD.  This evaluates the same
    per-position split as :func:`interim_digit` (kept as the readable
    single-digit reference, and pinned equivalent by tests/rb/test_adder.py)
    over whole machine words: the paper's point that digit i depends only
    on digits i, i-1 of the inputs is exactly what makes the positions
    independent, so each case is a mask expression.
    """
    if x.width != y.width:
        raise ValueError(f"width mismatch: {x.width} vs {y.width}")
    width = x.width
    mask = (1 << width) - 1
    xp, xm, yp, ym = x.plus, x.minus, y.plus, y.minus

    both_pos = xp & yp                          # p == +2
    both_neg = xm & ym                          # p == -2
    one_plus = (xp ^ yp) & ~(xm | ym)           # p == +1
    one_minus = (xm ^ ym) & ~(xp | yp)          # p == -1
    # Bit i set when both input digits at position i-1 are non-negative
    # (position 0 has no lower digits, which counts as non-negative).
    nonneg_below = ~((xm | ym) << 1) & mask

    carry_plus = both_pos | (one_plus & nonneg_below)
    carry_minus = both_neg | (one_minus & ~nonneg_below)
    ones = one_plus | one_minus
    interim_minus = ones & nonneg_below
    interim_plus = ones & ~nonneg_below

    in_plus = (carry_plus << 1) & mask
    in_minus = (carry_minus << 1) & mask
    clash = (interim_plus & in_plus) | (interim_minus & in_minus)
    if clash:
        raise AssertionError(
            f"carry-free invariant violated at digit {clash.bit_length() - 1}"
        )
    zp = (interim_plus | in_plus) & ~(interim_minus | in_minus)
    zm = (interim_minus | in_minus) & ~(interim_plus | in_plus)
    top = 1 << (width - 1)
    carry = 1 if carry_plus & top else (-1 if carry_minus & top else 0)
    return width, zp, zm, carry


def rb_add_digits(x: RBNumber, y: RBNumber) -> tuple[list[int], int]:
    """Raw carry-free addition: returns (sum digits, carry out of the MSD).

    The returned digits plus ``carry * 2**width`` equal ``x.value() +
    y.value()`` exactly.  Width-wrapping and overflow detection are applied
    by :func:`rb_add`.
    """
    width, zp, zm, carry = _add_components(x, y)
    digits = [((zp >> i) & 1) - ((zm >> i) & 1) for i in range(width)]
    return digits, carry


def rb_add(x: RBNumber, y: RBNumber) -> AddResult:
    """Fixed-width RB addition with two's-complement wrap semantics.

    The represented value of the result equals ``(x.value() + y.value())``
    wrapped into ``[-2**(w-1), 2**(w-1) - 1]``; ``overflow`` is set exactly
    when the true sum falls outside that range (§3.5).
    """
    width, zp, zm, carry = _add_components(x, y)
    value, overflow = normalize_msd(RBNumber(width, zp, zm), carry)
    return AddResult(value=value, overflow=overflow)


def rb_add_reference(x: RBNumber, y: RBNumber) -> AddResult:
    """Per-digit reference addition: one :func:`interim_digit` call per position.

    Semantically identical to :func:`rb_add` but built digit by digit
    from the readable single-position split instead of the word-parallel
    mask expressions of :func:`_add_components`.  The differential
    harness (:mod:`repro.verify.differential`) drives both over random
    redundant encodings; any disagreement is a bug in one of them.
    """
    if x.width != y.width:
        raise ValueError(f"width mismatch: {x.width} vs {y.width}")
    width = x.width
    x_digits = x.digits()
    y_digits = y.digits()
    carry_in = 0
    digits: list[int] = []
    for i in range(width):
        prev_both_nonneg = (
            i == 0 or (x_digits[i - 1] >= 0 and y_digits[i - 1] >= 0)
        )
        carry_out, interim = interim_digit(
            x_digits[i] + y_digits[i], prev_both_nonneg
        )
        digits.append(interim + carry_in)
        carry_in = carry_out
    value, overflow = normalize_msd(RBNumber.from_digits(digits), carry_in)
    return AddResult(value=value, overflow=overflow)


def rb_sub_reference(x: RBNumber, y: RBNumber) -> AddResult:
    """Per-digit reference subtraction (see :func:`rb_add_reference`)."""
    return rb_add_reference(x, y.negated())


def rb_negate(x: RBNumber) -> RBNumber:
    """Digit-wise negation (swap the plus/minus components)."""
    return x.negated()


def rb_sub(x: RBNumber, y: RBNumber) -> AddResult:
    """Fixed-width RB subtraction: add the digit-wise negation of ``y``."""
    return rb_add(x, rb_negate(y))
