"""Bank contention model for the L2 and main memory (Table 2).

The paper models contention for 2 L2 banks and 32 memory banks.  A
:class:`BankedResource` tracks, per bank, the next cycle at which the bank
can start a new access; requests that arrive while the target bank is busy
are delayed until it frees up (in arrival order, which is how the
simulator issues them).
"""

from __future__ import annotations


class BankedResource:
    """N banks, each able to start one access every ``occupancy`` cycles."""

    def __init__(self, banks: int, occupancy: int, name: str = "banks") -> None:
        if banks <= 0:
            raise ValueError(f"bank count must be positive, got {banks}")
        if occupancy <= 0:
            raise ValueError(f"occupancy must be positive, got {occupancy}")
        self.banks = banks
        self.occupancy = occupancy
        self.name = name
        self._free_at = [0] * banks
        self.accesses = 0
        self.conflict_cycles = 0

    def bank_of(self, address: int, line_shift: int) -> int:
        """Which bank a line address maps to (line-interleaved)."""
        return (address >> line_shift) % self.banks

    def schedule(self, bank: int, earliest: int) -> int:
        """Reserve the bank; returns the cycle the access actually starts."""
        if not 0 <= bank < self.banks:
            raise ValueError(f"bank {bank} out of range [0, {self.banks})")
        start = max(earliest, self._free_at[bank])
        self.conflict_cycles += start - earliest
        self._free_at[bank] = start + self.occupancy
        self.accesses += 1
        return start

    def reset(self) -> None:
        """Clear all reservations and statistics."""
        self._free_at = [0] * self.banks
        self.accesses = 0
        self.conflict_cycles = 0
