"""Set-associative cache timing model with true-LRU replacement.

Caches here are *timing-only*: values always come from the functional
:class:`~repro.mem.memory.PagedMemory`; the cache tracks which lines would
be resident to decide hit or miss latency.  Both L1s are pipelined (a new
access can start every cycle), matching Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError(f"non-positive cache geometry in {self}")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc {self.associativity} x line {self.line_bytes}"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1


class Cache:
    """One level of cache: lookup/fill with per-set LRU order."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError(f"{config.name}: set count {num_sets} must be a power of two")
        self._set_mask = num_sets - 1
        self._line_shift = config.line_shift
        # Each set is a list of tags in LRU order (front = most recent).
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[list[int], int]:
        line = address >> self._line_shift
        return self._sets[line & self._set_mask], line

    def lookup(self, address: int) -> bool:
        """Probe and update LRU; True on hit.  Does not allocate on miss."""
        ways, tag = self._locate(address)
        try:
            ways.remove(tag)
        except ValueError:
            self.misses += 1
            return False
        ways.insert(0, tag)
        self.hits += 1
        return True

    def fill(self, address: int) -> int | None:
        """Allocate the line; returns the evicted line address (or None)."""
        ways, tag = self._locate(address)
        if tag in ways:
            return None
        ways.insert(0, tag)
        if len(ways) > self.config.associativity:
            victim = ways.pop()
            return victim << self._line_shift
        return None

    def contains(self, address: int) -> bool:
        """Probe without touching LRU or statistics."""
        ways, tag = self._locate(address)
        return tag in ways

    def invalidate_all(self) -> None:
        """Empty the cache (statistics preserved)."""
        for ways in self._sets:
            ways.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"Cache({cfg.name}: {cfg.size_bytes // 1024}KB {cfg.associativity}-way, "
            f"{cfg.line_bytes}B lines, hits={self.hits}, misses={self.misses})"
        )
