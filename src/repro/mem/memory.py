"""Functional (value-holding) memory: a sparse, paged 64-bit address space.

Holds the architectural contents the interpreter reads and writes.  Timing
is modelled separately by the cache hierarchy; this class is purely about
values, so the same image can back any number of machine models.
"""

from __future__ import annotations

from repro.utils.bitops import MASK64

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class PagedMemory:
    """Sparse byte-addressable memory; untouched pages read as zero."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page_for_write(self, address: int) -> bytearray:
        index = address >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def read_byte(self, address: int) -> int:
        address &= MASK64
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[address & PAGE_MASK]

    def write_byte(self, address: int, value: int) -> None:
        address &= MASK64
        self._page_for_write(address)[address & PAGE_MASK] = value & 0xFF

    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes little-endian as an unsigned integer."""
        address &= MASK64
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[offset:offset + size], "little")
        return int.from_bytes(
            bytes(self.read_byte(address + i) for i in range(size)), "little"
        )

    def write(self, address: int, value: int, size: int) -> None:
        """Write ``size`` bytes little-endian."""
        address &= MASK64
        data = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
        offset = address & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            self._page_for_write(address)[offset:offset + size] = data
        else:
            for i, byte in enumerate(data):
                self.write_byte(address + i, byte)

    def load_image(self, address: int, data: bytes) -> None:
        """Copy a byte image into memory starting at ``address``."""
        for i in range(0, len(data), PAGE_SIZE):
            chunk = data[i:i + PAGE_SIZE]
            base = address + i
            offset = base & PAGE_MASK
            if offset + len(chunk) <= PAGE_SIZE:
                self._page_for_write(base)[offset:offset + len(chunk)] = chunk
            else:
                for j, byte in enumerate(chunk):
                    self.write_byte(base + j, byte)

    def touched_pages(self) -> int:
        """Number of pages that have been written (for diagnostics)."""
        return len(self._pages)

    def snapshot(self) -> dict[int, bytes]:
        """Immutable copy of every non-zero page, keyed by page index.

        All-zero pages are dropped, so two memories with the same
        *contents* snapshot equal even when they touched different pages
        — which is exactly the comparison the verification layer needs.
        """
        zero = bytes(PAGE_SIZE)
        return {
            index: bytes(page)
            for index, page in self._pages.items()
            if bytes(page) != zero
        }
