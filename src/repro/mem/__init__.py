"""Memory substrate: functional memory, caches, banks, and the hierarchy.

The functional :class:`~repro.mem.memory.PagedMemory` backs architectural
state; the timing side (set-associative caches with pipelined access,
banked L2 and DRAM with contention — Table 2's memory system) lives in
:mod:`repro.mem.cache`, :mod:`repro.mem.banks`, and
:mod:`repro.mem.hierarchy`.
"""

from repro.mem.banks import BankedResource
from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import MemoryHierarchy, MemoryHierarchyConfig
from repro.mem.memory import PagedMemory

__all__ = [
    "PagedMemory",
    "Cache",
    "CacheConfig",
    "BankedResource",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
]
