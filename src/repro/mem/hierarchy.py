"""The full memory hierarchy of Table 2.

* 64 KB 4-way pipelined instruction cache, 2-cycle access;
* 8 KB 2-way pipelined data cache, 2-cycle access;
* unified 1 MB 8-way L2, 8-cycle access, contention for 2 banks;
* main memory, 100-cycle access, contention for 32 banks.

The hierarchy answers "when is this access's data ready?", given the cycle
the access starts.  Misses propagate down and fill upward; bank conflicts
push the start of L2/DRAM service to the next free slot of the target
bank.  Lines are 64 bytes at every level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.banks import BankedResource
from repro.mem.cache import Cache, CacheConfig

LINE_BYTES = 64


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """All Table 2 memory parameters, overridable for sensitivity studies."""

    icache: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1I", size_bytes=64 * 1024, associativity=4,
        line_bytes=LINE_BYTES, hit_latency=2,
    ))
    dcache: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1D", size_bytes=8 * 1024, associativity=2,
        line_bytes=LINE_BYTES, hit_latency=2,
    ))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L2", size_bytes=1024 * 1024, associativity=8,
        line_bytes=LINE_BYTES, hit_latency=8,
    ))
    l2_banks: int = 2
    l2_bank_occupancy: int = 2
    memory_latency: int = 100
    memory_banks: int = 32
    memory_bank_occupancy: int = 32


class MemoryHierarchy:
    """Timing-only model of the cache/memory system."""

    def __init__(self, config: MemoryHierarchyConfig | None = None) -> None:
        self.config = config if config is not None else MemoryHierarchyConfig()
        self.icache = Cache(self.config.icache)
        self.dcache = Cache(self.config.dcache)
        self.l2 = Cache(self.config.l2)
        self.l2_banks = BankedResource(
            self.config.l2_banks, self.config.l2_bank_occupancy, "L2"
        )
        self.memory_banks = BankedResource(
            self.config.memory_banks, self.config.memory_bank_occupancy, "DRAM"
        )
        self._line_shift = self.config.l2.line_shift

    # -- lower levels -----------------------------------------------------------

    def _l2_ready(self, address: int, cycle: int) -> int:
        """Cycle at which the L2 (or memory below it) returns the line."""
        bank = self.l2_banks.bank_of(address, self._line_shift)
        start = self.l2_banks.schedule(bank, cycle)
        if self.l2.lookup(address):
            return start + self.config.l2.hit_latency
        mem_bank = self.memory_banks.bank_of(address, self._line_shift)
        mem_start = self.memory_banks.schedule(
            mem_bank, start + self.config.l2.hit_latency
        )
        ready = mem_start + self.config.memory_latency
        self.l2.fill(address)
        return ready

    # -- public accesses ------------------------------------------------------------

    def data_access(self, address: int, cycle: int, is_write: bool = False) -> int:
        """Start a data-cache access at ``cycle``; returns the ready cycle.

        Writes allocate like reads (write-allocate; store completion time
        matters only for store-to-load timing in the simulator).
        """
        latency = self.config.dcache.hit_latency
        if self.dcache.lookup(address):
            return cycle + latency
        ready = self._l2_ready(address, cycle + latency)
        self.dcache.fill(address)
        return ready

    def fetch_access(self, address: int, cycle: int) -> int:
        """Start an instruction-cache access at ``cycle``; returns ready cycle."""
        latency = self.config.icache.hit_latency
        if self.icache.lookup(address):
            return cycle + latency
        ready = self._l2_ready(address, cycle + latency)
        self.icache.fill(address)
        return ready

    def reset(self) -> None:
        """Cold caches and idle banks (statistics cleared)."""
        self.icache.invalidate_all()
        self.dcache.invalidate_all()
        self.l2.invalidate_all()
        self.l2_banks.reset()
        self.memory_banks.reset()
