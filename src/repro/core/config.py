"""Machine configuration: Table 2 parameters plus the §4 design choices."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.bypass import BypassStyle
from repro.backend.latency import AdderStyle
from repro.mem.hierarchy import MemoryHierarchyConfig


@dataclass(frozen=True)
class MachineConfig:
    """Everything that defines one simulated machine.

    Defaults follow Table 2: an 8-wide front end (decode/rename/issue
    width 8) regardless of execution width, a 128-entry instruction
    window split over select-2 schedulers (two of 64 at 4-wide, four of
    32 at 8-wide), and two clusters of four functional units at 8-wide
    with a 1-cycle inter-cluster forwarding delay.
    """

    name: str
    width: int                      # execution width: functional units
    adder_style: AdderStyle
    bypass_style: BypassStyle = BypassStyle.FULL
    removed_levels: frozenset[int] = frozenset()

    #: "round_robin" (the paper's policy: groups of 2, rotating) or
    #: "dependence" (the §4.2 future-work extension: follow your producer).
    steering_policy: str = "round_robin"
    #: Clock period in normalized inverter-delay units (τ).  Pure metadata
    #: for the cycle engines — IPC is still per *cycle* — but it is what
    #: lets the Pareto sweep compare machines whose adders force different
    #: clocks: performance = IPC / cycle_time.  1.0 means "unspecified /
    #: paper-normalized", which every pre-existing preset uses.
    cycle_time: float = 1.0
    #: RB -> TC format converter depth (Table 3's parenthesised latencies
    #: are exec + this); only meaningful with the RB adder style.
    conversion_cycles: int = 2

    fetch_width: int = 8
    max_blocks_per_cycle: int = 2
    rename_width: int = 8
    retire_width: int = 8
    window_size: int = 128          # reservation station entries, total
    rob_size: int = 128
    fetch_queue_capacity: int = 16

    frontend_depth: int = 6         # fetch + decode pipeline stages
    rename_latency: int = 2
    rf_read_cycles: int = 2
    cluster_delay: int = 1          # extra cycle crossing clusters

    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)

    def __post_init__(self) -> None:
        if self.steering_policy not in ("round_robin", "dependence"):
            raise ValueError(f"unknown steering policy {self.steering_policy!r}")
        if self.conversion_cycles < 0:
            raise ValueError(f"conversion cycles must be >= 0, got {self.conversion_cycles}")
        if self.cycle_time <= 0:
            raise ValueError(f"cycle time must be positive, got {self.cycle_time}")
        if self.width % 2:
            raise ValueError(f"execution width must be even (select-2), got {self.width}")
        if self.width <= 0 or self.window_size <= 0:
            raise ValueError("width and window size must be positive")
        if self.window_size % self.num_schedulers:
            raise ValueError(
                f"window {self.window_size} not divisible over "
                f"{self.num_schedulers} schedulers"
            )

    @property
    def num_schedulers(self) -> int:
        """One select-2 scheduler per pair of functional units."""
        return self.width // 2

    @property
    def scheduler_capacity(self) -> int:
        return self.window_size // self.num_schedulers

    @property
    def num_clusters(self) -> int:
        """Two clusters of 4 FUs at 8-wide; one cluster otherwise (§5.1)."""
        return 2 if self.width >= 8 else 1

    def cluster_of_scheduler(self, scheduler_index: int) -> int:
        per_cluster = self.num_schedulers // self.num_clusters
        return scheduler_index // per_cluster

    def describe(self) -> str:
        """One-line summary used in reports."""
        bypass = self.bypass_style.value
        if self.removed_levels:
            bypass += f" (no levels {sorted(self.removed_levels)})"
        text = (
            f"{self.name}: {self.width}-wide, {self.adder_style.value} adders, "
            f"{bypass} bypass, {self.num_schedulers}x{self.scheduler_capacity} "
            f"schedulers, {self.num_clusters} cluster(s)"
        )
        if self.cycle_time != 1.0:
            text += f", {self.cycle_time:g}τ clock"
        return text
