"""The machine models evaluated in the paper (§5.1).

* ``baseline`` — 2-cycle pipelined two's-complement ALUs, full bypass.
* ``rb_limited`` — 1-cycle RB adders + 2-cycle converters, TC register
  files only, the §4.2 limited bypass network (BYP-2 removed; BYP-3 not
  visible to RB-input units).
* ``rb_full`` — RB adders with both TC and RB register files: the same
  bypass path count as the baseline, timing equivalent to a full network.
* ``ideal`` — 1-cycle two's-complement ALUs, full bypass.
* ``ideal_limited`` — the Fig. 14 study: the Ideal machine with selected
  bypass levels deleted (No-1, No-2, No-3, No-1,2, No-2,3).
"""

from __future__ import annotations

from repro.backend.bypass import BypassStyle
from repro.backend.latency import AdderStyle
from repro.core.config import MachineConfig


def baseline(width: int) -> MachineConfig:
    """The Baseline machine: 2-cycle pipelined TC adders."""
    return MachineConfig(
        name=f"Baseline-{width}w", width=width, adder_style=AdderStyle.BASELINE
    )


def staggered(width: int) -> MachineConfig:
    """Figure 1's Configuration C: 2-cycle pipelined adders that forward
    their first stage's low half and carry to dependent adds (the Pentium
    4 staggered-add design, §2).  Not one of the paper's four evaluated
    machines; included for the Figure 1 study."""
    return MachineConfig(
        name=f"Staggered-{width}w", width=width, adder_style=AdderStyle.STAGGERED
    )


def rb_limited(width: int) -> MachineConfig:
    """The RB machine with TC register files and the §4.2 limited bypass."""
    return MachineConfig(
        name=f"RB-limited-{width}w",
        width=width,
        adder_style=AdderStyle.RB,
        bypass_style=BypassStyle.RB_LIMITED,
    )


def rb_full(width: int) -> MachineConfig:
    """The RB machine with TC and RB register files (full-bypass timing)."""
    return MachineConfig(
        name=f"RB-full-{width}w", width=width, adder_style=AdderStyle.RB
    )


def ideal(width: int) -> MachineConfig:
    """The Ideal machine: 1-cycle TC adders."""
    return MachineConfig(
        name=f"Ideal-{width}w", width=width, adder_style=AdderStyle.IDEAL
    )


def ideal_limited(width: int, removed_levels: frozenset[int] | set[int]) -> MachineConfig:
    """The Ideal machine with bypass levels deleted (Fig. 14)."""
    removed = frozenset(removed_levels)
    label = ",".join(str(level) for level in sorted(removed))
    return MachineConfig(
        name=f"Ideal-No-{label}-{width}w",
        width=width,
        adder_style=AdderStyle.IDEAL,
        bypass_style=BypassStyle.LIMITED,
        removed_levels=removed,
    )


#: The Fig. 14 bypass-deletion variants, in the paper's order.
FIG14_VARIANTS: list[frozenset[int]] = [
    frozenset({1}),
    frozenset({2}),
    frozenset({3}),
    frozenset({1, 2}),
    frozenset({2, 3}),
]


def all_paper_machines(width: int) -> list[MachineConfig]:
    """The four machines of Figs. 9-12 at one width, in presentation order."""
    return [baseline(width), rb_limited(width), rb_full(width), ideal(width)]
