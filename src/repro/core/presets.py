"""The machine models evaluated in the paper (§5.1).

* ``baseline`` — 2-cycle pipelined two's-complement ALUs, full bypass.
* ``rb_limited`` — 1-cycle RB adders + 2-cycle converters, TC register
  files only, the §4.2 limited bypass network (BYP-2 removed; BYP-3 not
  visible to RB-input units).
* ``rb_full`` — RB adders with both TC and RB register files: the same
  bypass path count as the baseline, timing equivalent to a full network.
* ``ideal`` — 1-cycle two's-complement ALUs, full bypass.
* ``ideal_limited`` — the Fig. 14 study: the Ideal machine with selected
  bypass levels deleted (No-1, No-2, No-3, No-1,2, No-2,3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.backend.bypass import BypassStyle
from repro.backend.latency import AdderStyle
from repro.core.config import MachineConfig


def baseline(width: int) -> MachineConfig:
    """The Baseline machine: 2-cycle pipelined TC adders."""
    return MachineConfig(
        name=f"Baseline-{width}w", width=width, adder_style=AdderStyle.BASELINE
    )


def staggered(width: int) -> MachineConfig:
    """Figure 1's Configuration C: 2-cycle pipelined adders that forward
    their first stage's low half and carry to dependent adds (the Pentium
    4 staggered-add design, §2).  Not one of the paper's four evaluated
    machines; included for the Figure 1 study."""
    return MachineConfig(
        name=f"Staggered-{width}w", width=width, adder_style=AdderStyle.STAGGERED
    )


def rb_limited(width: int) -> MachineConfig:
    """The RB machine with TC register files and the §4.2 limited bypass."""
    return MachineConfig(
        name=f"RB-limited-{width}w",
        width=width,
        adder_style=AdderStyle.RB,
        bypass_style=BypassStyle.RB_LIMITED,
    )


def rb_full(width: int) -> MachineConfig:
    """The RB machine with TC and RB register files (full-bypass timing)."""
    return MachineConfig(
        name=f"RB-full-{width}w", width=width, adder_style=AdderStyle.RB
    )


def ideal(width: int) -> MachineConfig:
    """The Ideal machine: 1-cycle TC adders."""
    return MachineConfig(
        name=f"Ideal-{width}w", width=width, adder_style=AdderStyle.IDEAL
    )


def ideal_limited(width: int, removed_levels: frozenset[int] | set[int]) -> MachineConfig:
    """The Ideal machine with bypass levels deleted (Fig. 14)."""
    removed = frozenset(removed_levels)
    label = ",".join(str(level) for level in sorted(removed))
    return MachineConfig(
        name=f"Ideal-No-{label}-{width}w",
        width=width,
        adder_style=AdderStyle.IDEAL,
        bypass_style=BypassStyle.LIMITED,
        removed_levels=removed,
    )


#: The Fig. 14 bypass-deletion variants, in the paper's order.
FIG14_VARIANTS: list[frozenset[int]] = [
    frozenset({1}),
    frozenset({2}),
    frozenset({3}),
    frozenset({1, 2}),
    frozenset({2, 3}),
]


def all_paper_machines(width: int) -> list[MachineConfig]:
    """The four machines of Figs. 9-12 at one width, in presentation order."""
    return [baseline(width), rb_limited(width), rb_full(width), ideal(width)]


def paper_matrix() -> list[MachineConfig]:
    """The full Fig. 9 sweep matrix: the four paper machines at both widths.

    This is the 8-config grid the batched engine amortizes (one decoded
    program, one fetch probe per width, four rename plans) — the unit of
    work ``run_batch`` and the batched-sweep benchmark operate on.
    """
    return all_paper_machines(4) + all_paper_machines(8)


# ---------------------------------------------------------------------------
# Adder-derived presets: proven netlist -> clock -> machine (the Pareto axis)
# ---------------------------------------------------------------------------

#: The adder families that can drive a machine's ALU (the converter is
#: RB-machine plumbing, not a standalone design point).
PARETO_ADDER_FAMILIES = (
    "ripple",
    "dual_bit",
    "early_output",
    "carry_select",
    "hybrid_select_cla",
    "cla",
    "rb",
)


@dataclass(frozen=True)
class AdderDesign:
    """One adder netlist mapped onto the pipeline's timing contract.

    The paper's baseline stage time τ0 is half the 64-bit CLA's critical
    path (a 2-cycle pipelined CLA *is* the Baseline machine).  A candidate
    adder with critical path d either fits that clock in
    ``ceil(d / τ0)`` stages, or — since the timing model only knows
    1- and 2-cycle adders — runs as a 2-stage pipeline with the clock
    stretched to ``d / 2``.  Either way the pair (adder_style,
    cycle_time) hands the cycle engines an IPC question and the frontier
    a wall-clock denominator.
    """

    family: str
    data_width: int      # datapath bits the netlist was built (and proven) at
    delay: float         # critical path in inverter units
    stage_time: float    # τ0: the baseline clock the design was slotted into
    cycles: int          # adder pipeline depth the timing model simulates
    cycle_time: float    # resulting clock period in inverter units
    adder_style: AdderStyle

    @property
    def slowdown(self) -> float:
        """Clock stretch relative to the baseline stage time (1.0 = none)."""
        return self.cycle_time / self.stage_time


def adder_designs(
    data_width: int = 64, families: tuple[str, ...] | None = None
) -> dict[str, AdderDesign]:
    """Map each (formally proven) adder family to an :class:`AdderDesign`.

    Delays come from :func:`repro.circuits.analysis.adder_delay_table` on
    the same netlists the equivalence gate proves; callers that want the
    guarantee chain call :func:`repro.circuits.verify.assert_verified`
    first (the Pareto experiment does).
    """
    from repro.circuits.analysis import adder_delay_table

    if families is None:
        families = PARETO_ADDER_FAMILIES
    unknown = set(families) - set(PARETO_ADDER_FAMILIES)
    if unknown:
        raise ValueError(
            f"unknown adder families: {sorted(unknown)}; "
            f"choices: {list(PARETO_ADDER_FAMILIES)}"
        )
    table = adder_delay_table(
        widths=(data_width,), families=sorted(set(families) | {"cla"})
    )
    stage_time = table["cla"][data_width] / 2  # 2-cycle pipelined CLA = Baseline
    designs: dict[str, AdderDesign] = {}
    for family in families:
        delay = table[family][data_width]
        if family == "rb":
            # The paper's RB design point: 1-cycle adds at the baseline
            # clock (its constant-depth chain fits with slack).
            cycles, style = 1, AdderStyle.RB
        else:
            cycles = min(2, math.ceil(delay / stage_time - 1e-9))
            style = AdderStyle.IDEAL if cycles == 1 else AdderStyle.BASELINE
        cycle_time = max(stage_time, delay / cycles)
        designs[family] = AdderDesign(
            family=family,
            data_width=data_width,
            delay=delay,
            stage_time=stage_time,
            cycles=cycles,
            cycle_time=cycle_time,
            adder_style=style,
        )
    return designs


def adder_machine(design: AdderDesign, width: int) -> MachineConfig:
    """A machine preset whose ALU is ``design``'s netlist.

    RB designs carry the paper's full cost model (TC register files, §4.2
    limited bypass, 2-cycle format conversion); everything else differs
    from the Baseline/Ideal machines only in adder depth and clock.
    """
    name = f"Pareto-{design.family}-{width}w"
    if design.adder_style is AdderStyle.RB:
        return MachineConfig(
            name=name,
            width=width,
            adder_style=AdderStyle.RB,
            bypass_style=BypassStyle.RB_LIMITED,
            cycle_time=design.cycle_time,
        )
    return MachineConfig(
        name=name,
        width=width,
        adder_style=design.adder_style,
        cycle_time=design.cycle_time,
    )


def pareto_machines(
    widths: tuple[int, ...] = (4, 8),
    data_width: int = 64,
    families: tuple[str, ...] | None = None,
) -> list[MachineConfig]:
    """The full adder × execution-width preset grid for the Pareto sweep."""
    designs = adder_designs(data_width, families)
    return [
        adder_machine(design, width)
        for design in designs.values()
        for width in widths
    ]


#: User-facing machine names -> preset factory, shared by the CLI and the
#: batch-simulation service so both resolve request strings identically.
MACHINE_FACTORIES = {
    "baseline": baseline,
    "staggered": staggered,
    "rb-limited": rb_limited,
    "rb-full": rb_full,
    "ideal": ideal,
}

#: Prefix for the Fig. 14 limited-bypass variants, e.g. ``ideal-no-1,2``.
IDEAL_LIMITED_PREFIX = "ideal-no-"


def machine_choices() -> list[str]:
    """The accepted machine-name spellings, for error messages and docs."""
    return sorted(MACHINE_FACTORIES) + [f"{IDEAL_LIMITED_PREFIX}<levels> (e.g. ideal-no-1,2)"]


def resolve_machine(
    name: str, width: int, steering: str | None = None
) -> MachineConfig:
    """Resolve a user-facing machine name to a :class:`MachineConfig`.

    ``name`` is a preset key (see :data:`MACHINE_FACTORIES`) or an
    ``ideal-no-<levels>`` limited-bypass spelling.  A non-default
    ``steering`` policy is applied with a ``+<policy>`` name suffix so
    distinct configurations never collide in result caches.  Raises
    :class:`ValueError` for unknown names or malformed level lists.
    """
    if name.startswith(IDEAL_LIMITED_PREFIX):
        spec = name[len(IDEAL_LIMITED_PREFIX):]
        try:
            levels = frozenset(int(x) for x in spec.split(","))
        except ValueError:
            raise ValueError(
                f"bad bypass-level list {spec!r} in machine {name!r}"
            ) from None
        config = ideal_limited(width, levels)
    else:
        factory = MACHINE_FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown machine {name!r}; choices: {machine_choices()}"
            )
        config = factory(width)
    if steering and steering != config.steering_policy:
        config = replace(
            config, name=f"{config.name}+{steering}", steering_policy=steering
        )
    return config
