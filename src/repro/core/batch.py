"""Batched SoA simulation: N machine configs over one decoded program.

The paper's figures sweep the *same workload* through many machine
configurations (Fig. 9: 4 machines x 2 widths), yet each solo
:func:`~repro.core.engine.run_soa` call re-executes the program
functionally at fetch, re-trains the branch predictors, and re-renames
every instruction.  All of that work is *timing-independent*: the
correct-path dynamic instruction stream, branch outcomes, predictor/BTB/
RAS evolution, memory addresses, fetch-bundle partition, and register
dataflow depend only on the instruction sequence — never on when cycles
happen.  This module factors it out and shares it:

* **Fetch trace** (one per ``(fetch_width, max_blocks_per_cycle)``) — a
  probe :class:`~repro.frontend.fetch.FetchUnit` run once over the whole
  program records the instruction stream, oracle memory addresses,
  bundle boundaries, per-bundle start PCs, and misprediction points.
  Per-config fetch becomes a *replay*: the early-out structure of
  ``fetch_into`` (resume wait, I-cache state machine) is reproduced
  against each config's own :class:`~repro.mem.hierarchy.MemoryHierarchy`
  — the I-cache shares the L2 with the D-cache, so hit/miss results are
  config- and timing-dependent and the real ``fetch_access`` calls
  happen at exactly the cycles the solo engine would make them.

* **Rename plan** (one per rename signature: adder style, bypass style,
  removed levels, conversion depth) — the full static column set of the
  SoA engine (kinds, result formats, latencies, flattened availability
  templates, renamed source pairs, store-ordering dependences) computed
  once over the stream.  4-wide and 8-wide variants of one machine share
  a plan; the Fig. 9 matrix needs 4 plans for its 8 configs.  Template
  and latency columns are copied per config (loads overwrite them with
  their dynamic cache latency at issue); the rest is shared read-only.

* **Steering columns** (one per scheduler count) — the paper's
  round-robin policy assigns scheduler ``(seq // 2) % num_schedulers``
  regardless of timing, so the dispatch target is a precomputed column.
  Dependence steering consults live scheduler occupancy and cannot be
  precomputed; such configs fall back to solo ``run_soa``.

Everything timing-dependent stays per config: the scheduler sweeps,
wakeup/select, stall attribution, occupancy series, interval sampler,
and the memory hierarchy.  The per-config loop is the solo engine's
cycle loop with the fetch and rename stages collapsed to bookkeeping —
``verify.differential.diff_batch`` and the ``differential:batch``
section of ``repro check`` pin every statistic and timeline row
bit-identical to the solo run.

Shared artifacts are cached on the :class:`~repro.isa.program.Program`
object itself (``program._soa_batch_cache``), so their lifetime is tied
to the program's and repeated sweeps (the runner, ``repro serve``) pay
the probe and plan construction once.
"""

from __future__ import annotations

import time
from bisect import bisect_left, insort

from repro.isa.instruction import NUM_REGS
from repro.isa.semantics import ArchState
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.log import get_logger
from repro.obs.timeline import DEFAULT_STRIDE, IntervalSampler

log = get_logger(__name__)

#: Attribute on Program holding this module's shared-artifact cache.
_CACHE_ATTR = "_soa_batch_cache"


class FetchTrace:
    """The timing-independent fetch record of one program.

    ``bstart`` has one entry per bundle plus a final sentinel equal to
    the stream length, so bundle ``i`` covers seqs
    ``[bstart[i], bstart[i+1])``.  ``bpc[i]`` is the PC the fetch unit
    presents to the I-cache when delivering bundle ``i``; ``bmisp[i]``
    marks a bundle ended by a mispredicted branch.  The final bundle
    always ends with HALT (the probe runs to completion).
    """

    __slots__ = (
        "instr_col", "mem_col", "misp_col", "bstart", "bpc", "bmisp",
        "n", "branches", "mispredictions", "final_state",
    )

    def __init__(self, instr_col, mem_col, misp_col, bstart, bpc, bmisp,
                 branches, mispredictions, final_state):
        self.instr_col = instr_col
        self.mem_col = mem_col
        self.misp_col = misp_col
        self.bstart = bstart
        self.bpc = bpc
        self.bmisp = bmisp
        self.n = len(instr_col)
        self.branches = branches
        self.mispredictions = mispredictions
        self.final_state = final_state


class RenamePlan:
    """The SoA engine's static columns, precomputed over a fetch trace."""

    __slots__ = (
        "kind", "prb", "lrb", "ltc", "isload",
        "trbm", "trbp", "trbf", "ttcm", "ttcp", "ttcf",
        "s0p", "s0t", "s1p", "s1t", "sx", "sdep",
    )


def rename_signature(config) -> tuple:
    """The config fields that determine an instruction's rename record.

    Everything :func:`~repro.core.engine._static_entry` reads comes from
    the machine's :class:`~repro.backend.bypass.BypassModel` and latency
    model, which :class:`~repro.core.machine.Machine` builds from exactly
    these four fields — width never enters, so 4w/8w variants share.
    """
    return (
        config.adder_style, config.bypass_style,
        config.removed_levels, config.conversion_cycles,
    )


def _probe_fetch(program, fetch_width, max_blocks, memory_config,
                 max_cycles) -> FetchTrace:
    """Run a probe fetch unit over the whole program, recording bundles.

    The probe's memory hierarchy is a throwaway — I-cache misses only
    delay the probe's private clock, never the bundle *contents* — but
    the predictors are the real ones, trained in stream order exactly as
    every per-config run would train them.
    """
    from repro.core.machine import SimulationError
    from repro.frontend.fetch import FetchUnit

    state = ArchState(program)
    fetch = FetchUnit(
        program, state, MemoryHierarchy(memory_config),
        fetch_width=fetch_width, max_blocks_per_cycle=max_blocks,
    )
    instr_col: list = []
    mem_col: list = []
    bstart: list[int] = []
    bpc: list[int] = []
    bmisp: list[bool] = []
    cycle = 0
    while not fetch.halted:
        start = len(instr_col)
        pc = state.pc
        n, misp = fetch.fetch_into(cycle, instr_col, mem_col)
        if n:
            bstart.append(start)
            bpc.append(pc)
            bmisp.append(misp)
            if misp:
                fetch.resolve_branch(cycle + 1)
        cycle += 1
        if cycle > max_cycles:
            raise SimulationError(
                f"batch probe on {program.name}: exceeded {max_cycles} "
                f"cycles without reaching HALT"
            )
    n_total = len(instr_col)
    bstart.append(n_total)  # sentinel
    misp_col = [False] * n_total
    for i, flag in enumerate(bmisp):
        if flag:
            misp_col[bstart[i + 1] - 1] = True
    return FetchTrace(
        instr_col, mem_col, misp_col, bstart, bpc, bmisp,
        fetch.branches, fetch.mispredictions, state,
    )


def _build_rename_plan(machine, trace: FetchTrace) -> RenamePlan:
    """The solo engine's inline rename, run once over the whole stream.

    Dispatch (and therefore rename) is strictly sequential in seq order
    on every config, so ``last_writer`` / ``reg_is_rb`` / ``last_store``
    evolve identically regardless of timing — the renamed source pairs
    and store-ordering dependences are stream facts.
    """
    from repro.core.engine import _K_LOAD, _K_STORE, _static_entry

    memo = machine._soa_memo
    n = trace.n
    plan = RenamePlan()
    kind_col = [0] * n
    prb_col = [False] * n
    lrb_col = [0] * n
    ltc_col = [0] * n
    isload_col = [False] * n
    trbm = [0] * n
    trbp = [0] * n
    trbf = [0] * n
    ttcm = [0] * n
    ttcp = [0] * n
    ttcf = [0] * n
    # Renamed sources, flattened to scalar columns: almost every
    # instruction has at most two register sources, so the hot loops
    # unroll over (s0, s1) instead of iterating a per-instruction list
    # of pairs.  -1 means "no source" (absent, or the producer predates
    # the window).  Conditional moves read three registers (condition,
    # value, old destination); the overflow pairs land in the sparse
    # ``sx`` column, which stays None on the fast path.
    s0p_col = [-1] * n
    s0t_col = [False] * n
    s1p_col = [-1] * n
    s1t_col = [False] * n
    sx_col: list = [None] * n
    sdep_col = [-1] * n
    last_writer = [-1] * NUM_REGS
    reg_is_rb = [False] * NUM_REGS
    last_store: dict[int, int] = {}
    mem_col = trace.mem_col
    for e, instr in enumerate(trace.instr_col):
        entry = memo.get(id(instr))
        if entry is None:
            entry = _static_entry(machine, instr)
            memo[id(instr)] = entry
        _, kind, _, move_reg, variants = entry
        if move_reg >= 0:
            variant = variants[1] if reg_is_rb[move_reg] else variants[0]
        else:
            variant = variants
        (
            produces_rb, lat_rb, lat_tc,
            rbm, rbp, rbf, tcm, tcp, tcf,
            src_pairs, dest,
        ) = variant
        kind_col[e] = kind
        prb_col[e] = produces_rb
        lrb_col[e] = lat_rb
        ltc_col[e] = lat_tc
        isload_col[e] = kind == _K_LOAD
        trbm[e] = rbm
        trbp[e] = rbp
        trbf[e] = rbf
        ttcm[e] = tcm
        ttcp[e] = tcp
        ttcf[e] = tcf
        if src_pairs:
            slot = 0
            for reg, wants_tc in src_pairs:
                producer = last_writer[reg]
                if producer >= 0:
                    if slot == 0:
                        s0p_col[e] = producer
                        s0t_col[e] = wants_tc
                    elif slot == 1:
                        s1p_col[e] = producer
                        s1t_col[e] = wants_tc
                    elif sx_col[e] is None:
                        sx_col[e] = [(producer, wants_tc)]
                    else:
                        sx_col[e].append((producer, wants_tc))
                    slot += 1
        address = mem_col[e]
        if kind == _K_LOAD:
            if address is not None:
                sdep_col[e] = last_store.get(address >> 3, -1)
        elif kind == _K_STORE and address is not None:
            last_store[address >> 3] = e
        if dest >= 0:
            last_writer[dest] = e
            reg_is_rb[dest] = produces_rb
    plan.kind = kind_col
    plan.prb = prb_col
    plan.lrb = lrb_col
    plan.ltc = ltc_col
    plan.isload = isload_col
    plan.trbm = trbm
    plan.trbp = trbp
    plan.trbf = trbf
    plan.ttcm = ttcm
    plan.ttcp = ttcp
    plan.ttcf = ttcf
    plan.s0p = s0p_col
    plan.s0t = s0t_col
    plan.s1p = s1p_col
    plan.s1t = s1t_col
    plan.sx = sx_col
    plan.sdep = sdep_col
    return plan


def _steer_columns(ns: int, cluster_of: list[int], n: int) -> tuple[list[int], list[int]]:
    """Round-robin steering targets (groups of two) for every seq."""
    sched_col = [0] * n
    clus_col = [0] * n
    for e in range(n):
        s = (e >> 1) % ns
        sched_col[e] = s
        clus_col[e] = cluster_of[s]
    return sched_col, clus_col


def batchable(config) -> bool:
    """Can the SoA batch engine simulate this config exactly?

    Dependence steering consults live scheduler occupancy at dispatch,
    which cannot be precomputed; everything else the engine models is
    replayable from the shared trace.
    """
    return config.steering_policy == "round_robin"


def run_soa_batch(
    machines,
    program,
    max_cycles: int = 20_000_000,
    progress_window: int = 100_000,
    cycle_skip=True,
    timeline: bool = True,
    timeline_stride: int = DEFAULT_STRIDE,
    timeline_sinks=None,
):
    """Simulate ``program`` on every machine in one process, sharing work.

    Returns one :class:`~repro.core.statistics.SimStats` per machine, in
    order, each bit-identical to the machine's solo
    :func:`~repro.core.engine.run_soa` run (statistics *and* timeline
    rows) — ``repro check``'s ``differential:batch`` section audits that.

    ``cycle_skip`` is a bool applied to every config or a per-machine
    sequence; ``timeline_sinks`` an optional per-machine sequence of
    row observers.  Machines whose config the batch engine cannot share
    (see :func:`batchable`) transparently fall back to solo ``run_soa``.

    Each returned stats object carries a ``batch_seconds`` attribute —
    this config's wall time including its amortized share of the shared
    probe/plan construction (diagnostic only, not serialized).
    """
    from repro.core.engine import run_soa

    machines = list(machines)
    count = len(machines)
    if isinstance(cycle_skip, (bool, int)):
        skips = [bool(cycle_skip)] * count
    else:
        skips = [bool(v) for v in cycle_skip]
        if len(skips) != count:
            raise ValueError(
                f"cycle_skip sequence has {len(skips)} entries "
                f"for {count} machines"
            )
    if timeline_sinks is None:
        sinks = [None] * count
    else:
        sinks = list(timeline_sinks)
        if len(sinks) != count:
            raise ValueError(
                f"timeline_sinks has {len(sinks)} entries for {count} machines"
            )
    results: list = [None] * count

    shared = program.__dict__.setdefault(_CACHE_ATTR, {})
    prep_started = time.perf_counter()
    batch_indices: list[int] = []
    traces: dict[int, FetchTrace] = {}
    plans: dict[int, RenamePlan] = {}
    steers: dict[int, tuple[list[int], list[int]]] = {}
    for index, machine in enumerate(machines):
        config = machine.config
        if not batchable(config):
            continue
        batch_indices.append(index)
        fetch_key = ("trace", config.fetch_width, config.max_blocks_per_cycle)
        trace = shared.get(fetch_key)
        if trace is None:
            trace = _probe_fetch(
                program, config.fetch_width, config.max_blocks_per_cycle,
                config.memory, max_cycles,
            )
            shared[fetch_key] = trace
        traces[index] = trace
        plan_key = ("plan",) + rename_signature(config)
        plan = shared.get(plan_key)
        if plan is None:
            plan = _build_rename_plan(machine, trace)
            shared[plan_key] = plan
        plans[index] = plan
        ns = config.num_schedulers
        clusters = tuple(config.cluster_of_scheduler(i) for i in range(ns))
        steer_key = ("steer", ns, clusters)
        steer = shared.get(steer_key)
        if steer is None or len(steer[0]) < trace.n:
            steer = _steer_columns(ns, list(clusters), trace.n)
            shared[steer_key] = steer
        steers[index] = steer
    prep_each = (
        (time.perf_counter() - prep_started) / len(batch_indices)
        if batch_indices else 0.0
    )

    for index, machine in enumerate(machines):
        started = time.perf_counter()
        if index in traces:
            stats = _run_config(
                machine, program, traces[index], plans[index], steers[index],
                max_cycles, progress_window, skips[index],
                timeline, timeline_stride, sinks[index],
            )
            stats.batch_seconds = (
                time.perf_counter() - started + prep_each
            )
        else:
            log.debug(
                "run_soa_batch: %s is not batchable (steering=%s); "
                "running solo", machine.config.name,
                machine.config.steering_policy,
            )
            stats = run_soa(
                machine, program,
                max_cycles=max_cycles, progress_window=progress_window,
                cycle_skip=skips[index], timeline=timeline,
                timeline_stride=timeline_stride, timeline_sink=sinks[index],
            )
            stats.batch_seconds = time.perf_counter() - started
        results[index] = stats
    return results


def _run_config(
    machine,
    program,
    trace: FetchTrace,
    plan: RenamePlan,
    steer,
    max_cycles: int,
    progress_window: int,
    cycle_skip: bool,
    timeline: bool,
    timeline_stride: int,
    timeline_sink,
):
    """One config's cycle loop over the shared trace and plan.

    This is :func:`~repro.core.engine.run_soa` with the fetch stage
    replaced by the bundle replay and the rename stage collapsed to
    dispatch bookkeeping; every other stage — the merged select sweeps,
    wakeup evaluation, issue, stall attribution, occupancy and interval
    sampling, cycle skipping — is kept line-for-line so the two paths
    stay bit-identical.
    """
    from repro.core.engine import (
        _NEVER,
        _K_BRANCH,
        _K_LOAD,
        _K_SIMPLE,
        _K_STORE,
        _QueueView,
        _RobView,
        _SchedView,
    )
    from repro.core.machine import SELECT_TO_EXEC, SimulationError
    from repro.core.statistics import (
        OCCUPANCY_STRIDE,
        BypassCase,
        BypassLevelUse,
        SimStats,
    )
    from repro.obs.explain import StallCause

    config = machine.config
    stats = SimStats(machine=config.name, workload=program.name)
    log.debug("running %s on %s (soa batch)", config.name, program.name)

    machine.last_state = trace.final_state
    hierarchy = MemoryHierarchy(config.memory)

    ns = config.num_schedulers
    metrics = stats.metrics
    sel_counters = []
    full_counters = []
    cont_counters = []
    for i in range(ns):
        # Same names, creation order, and zero-touch as Scheduler.__init__.
        selected = metrics.counter(f"scheduler.sched{i}.selected")
        full = metrics.counter(f"scheduler.sched{i}.full_stall_cycles")
        contended = metrics.counter(f"scheduler.sched{i}.contended_cycles")
        selected.value = 0
        full.value = 0
        contended.value = 0
        sel_counters.append(selected)
        full_counters.append(full)
        cont_counters.append(contended)
    # Hot-loop shadows: counter objects cost an attribute store per
    # update, so the loop accumulates into plain ints and the flush
    # points (every sampler capture, end of run) publish them.
    sel_loc = [0] * ns
    full_loc = [0] * ns
    cont_loc = [0] * ns
    instr_done = 0

    occupancy_series = metrics.timeseries(
        "scheduler.occupancy", stride=OCCUPANCY_STRIDE
    )

    # -- columns -----------------------------------------------------------
    # Shared read-only (trace/plan/steering) and per-config, preallocated
    # to the full stream length (solo grows them bundle by bundle; here
    # the length is known up front).
    n = trace.n
    mem_col = trace.mem_col
    misp_col = trace.misp_col
    bstart = trace.bstart
    bpc = trace.bpc
    bmisp = trace.bmisp
    last_bundle = len(bpc) - 1
    kind_col = plan.kind
    prb_col = plan.prb
    isload_col = plan.isload
    s0p_col = plan.s0p
    s0t_col = plan.s0t
    s1p_col = plan.s1p
    s1t_col = plan.s1t
    sx_col = plan.sx
    sdep_col = plan.sdep
    sched_col, clus_col = steer
    # Loads overwrite their latency/template entries at issue.
    lrb_col = plan.lrb.copy()
    ltc_col = plan.ltc.copy()
    trbm_col = plan.trbm.copy()
    trbp_col = plan.trbp.copy()
    trbf_col = plan.trbf.copy()
    ttcm_col = plan.ttcm.copy()
    ttcp_col = plan.ttcp.copy()
    ttcf_col = plan.ttcf.copy()
    sel_col = [-1] * n
    comp_col = [-1] * n
    cause_col: list = [None] * n
    wait_col = [-1] * n
    wstore_col = [False] * n
    ntry_col = [0] * n
    haswait_col = [False] * n

    #: waiters per producer seq: consumers in inherit mode on that seq.
    cons: dict[int, list[int]] = {}

    act: list[list[int]] = [[] for _ in range(ns)]
    wtr: list[list[int]] = [[] for _ in range(ns)]
    finite_min = [0] * ns
    dirty_cur: list[list[int]] = [[] for _ in range(ns)]
    dirty_nxt: list[list[int]] = [[] for _ in range(ns)]
    any_dirty_nxt = False
    cur_s = -1

    rob_head = 0
    rob_tail = 0
    fq_head = 0
    seq_count = 0
    occ_total = 0

    rob_size = config.rob_size
    sched_capacity = config.scheduler_capacity
    select_width = 2
    rename_width = config.rename_width
    retire_width = config.retire_width
    frontend_depth = config.frontend_depth
    rename_latency = config.rename_latency
    fetch_queue_capacity = config.fetch_queue_capacity
    cluster_delay = config.cluster_delay
    from repro.isa.opcodes import LatencyClass

    branch_latency = machine.latency.exec_latency(LatencyClass.BRANCH)
    load_flats = machine._soa_load_flats

    # -- L1 fast paths -----------------------------------------------------
    # lookup()/fill() inlined for the two per-access L1s (sets, LRU
    # reorder, hit/miss counts); misses still go through _l2_ready so
    # bank scheduling and L2 state evolve exactly as the method calls
    # would.  Hit/miss tallies live in locals and are folded back into
    # the Cache objects at the end of the run.
    dcache = hierarchy.dcache
    d_sets = dcache._sets
    d_mask = dcache._set_mask
    d_shift = dcache._line_shift
    d_assoc = dcache.config.associativity
    d_lat = hierarchy.config.dcache.hit_latency
    icache = hierarchy.icache
    i_sets = icache._sets
    i_mask = icache._set_mask
    i_shift = icache._line_shift
    i_assoc = icache.config.associativity
    l2_ready = hierarchy._l2_ready
    d_hits = 0
    d_misses = 0
    i_hits = 0
    i_misses = 0

    # -- replay-fetch state (mirrors FetchUnit's early-out machinery) -----
    icache_hit_latency = hierarchy.config.icache.hit_latency
    bidx = 0                  # next bundle to deliver
    bfetchc: list[int] = []   # fetch cycle per delivered bundle
    db = 0                    # bundle containing fq_head (dispatch cursor)
    db_end = 0                # bstart[db + 1], hoisted
    db_ready = 0              # bfetchc[db] + frontend_depth, hoisted
    fetch_halted = False
    fetch_misp_stalled = False
    fetch_resume = None       # _resume_cycle
    icache_pc = None          # _icache_ready_pc
    icache_ready = 0          # _icache_ready_cycle
    fetch_stalls = 0          # fetch_stall_cycles

    _LOAD = StallCause.LOAD_LATENCY
    _ADDER = StallCause.ADDER_PIPELINE
    _BASE = StallCause.BASE
    _FRONTEND = StallCause.FRONTEND_EMPTY
    _RETIRE = StallCause.RETIRE_BOUND
    _WINDOW = StallCause.WINDOW_FULL
    _HOLE = StallCause.BYPASS_HOLE
    _CONV = StallCause.CONVERSION_LATENCY
    _RB_RB = BypassCase.RB_TO_RB
    _RB_TC = BypassCase.RB_TO_TC
    _TC_RB = BypassCase.TC_TO_RB
    _TC_TC = BypassCase.TC_TO_TC
    _LVL_NONE = BypassLevelUse.NONE
    _LVL_FIRST = BypassLevelUse.FIRST_LEVEL
    _LVL_OTHER = BypassLevelUse.OTHER_LEVEL

    stall_record = stats.stall_causes.record
    stall_keys: list = []
    stall_vals: list[int] = []
    # Occupancy is recorded as constant-value runs instead of per-cycle
    # accumulation: TimeSeries.record_run is state-identical to one
    # record() per cycle (including mid-run decimation), so buffering
    # [occ_run_start, cycle) while the sampled value is unchanged costs
    # one compare per cycle instead of two adds and a boundary check.
    occ_record_run = occupancy_series.record_run
    occ_max = occupancy_series.max_samples
    occ_run_start = 0
    occ_run_value = 0
    occ_boundary = 0  # next sample point (smallest unsampled stride multiple)
    occ_count = 0     # flushed-run cycles not yet pushed to the series
    occ_sum = 0
    level_histogram = None

    hist_buf: dict[int, int] = {}
    cases_buf: dict[int, int] = {}
    levels_buf: dict[int, int] = {}
    hist_get = hist_buf.get
    cases_get = cases_buf.get
    levels_get = levels_buf.get
    case_keys = (_RB_RB, _RB_TC, _TC_RB, _TC_TC)
    level_keys = (_LVL_NONE, _LVL_FIRST, _LVL_OTHER)
    bypassed_n = 0
    cross_n = 0
    withbyp_n = 0

    def _flush_bypass() -> None:
        nonlocal bypassed_n, cross_n, withbyp_n
        if stats.instructions != instr_done:
            stats.instructions = instr_done
        if stall_keys:
            for k, v in zip(stall_keys, stall_vals):
                stall_record(k, v)
            del stall_keys[:]
            del stall_vals[:]
        if bypassed_n:
            stats.bypassed_sources += bypassed_n
            bypassed_n = 0
        if cross_n:
            stats.cross_cluster_bypasses += cross_n
            cross_n = 0
        if withbyp_n:
            stats.instructions_with_bypass += withbyp_n
            withbyp_n = 0
        if hist_buf:
            record = level_histogram.record
            for value, count in hist_buf.items():
                record(value, count)
            hist_buf.clear()
        if cases_buf:
            record = stats.bypass_cases.record
            for index, count in cases_buf.items():
                record(case_keys[index], count)
            cases_buf.clear()
        if levels_buf:
            record = stats.bypass_levels.record
            for index, count in levels_buf.items():
                record(level_keys[index], count)
            levels_buf.clear()

    # -- sampler views -----------------------------------------------------
    sampler: IntervalSampler | None = None
    sampler_next = _NEVER
    rob_view = _RobView()
    fq_view = _QueueView()
    sched_views = [_SchedView() for _ in range(ns)]
    if timeline:
        sampler = IntervalSampler(
            stats, rob_view, fq_view, sched_views,
            stride=timeline_stride, on_row=timeline_sink,
        )
        sampler_next = sampler.next_capture

    def _sync_views() -> None:
        rob_view.occupancy = rob_tail - rob_head
        fq_view.count = seq_count - fq_head
        for i in range(ns):
            view = sched_views[i]
            view.occupancy = len(act[i]) + len(wtr[i])
            view.contended_cycles = cont_loc[i]

    cycle = 0
    last_progress_cycle = 0
    # The no-progress and cycle-budget checks share one compare per
    # cycle; the raise path re-derives which limit was crossed.
    deadline = progress_window if progress_window < max_cycles else max_cycles
    machine.skipped_cycles = 0
    skipped_cycles = 0
    pending_cause = None
    pending_count = 0

    def _mark_waiters(
        e: int,
        cons=cons, wait_col=wait_col, wstore_col=wstore_col,
        sched_col=sched_col, dirty_cur=dirty_cur, dirty_nxt=dirty_nxt,
        insort=insort,
    ) -> None:
        nonlocal any_dirty_nxt
        for f in cons[e]:
            if wait_col[f] == e and not wstore_col[f]:
                sf = sched_col[f]
                if sf > cur_s:
                    dirty_cur[sf].append(f)
                elif sf == cur_s:
                    insort(dirty_cur[sf], f)
                else:
                    dirty_nxt[sf].append(f)
                    any_dirty_nxt = True

    def _classify(
        hseq: int, fseq: int, at: int, blocked: bool,
        cause_col=cause_col, comp_col=comp_col, sel_col=sel_col,
        isload_col=isload_col, prb_col=prb_col, ltc_col=ltc_col,
        lrb_col=lrb_col, SELECT_TO_EXEC=SELECT_TO_EXEC,
        _FRONTEND=_FRONTEND, _RETIRE=_RETIRE, _WINDOW=_WINDOW,
        _LOAD=_LOAD, _CONV=_CONV, _ADDER=_ADDER,
    ):
        if hseq < 0:
            return _FRONTEND
        if fseq >= 0:
            frontier_cause = cause_col[fseq]
            if frontier_cause is not None:
                return frontier_cause
        head_complete = comp_col[hseq]
        if 0 <= head_complete <= at:
            return _RETIRE
        if blocked:
            return _WINDOW
        if fseq >= 0:
            return _FRONTEND
        head_select = sel_col[hseq]
        if head_select < 0:
            return _FRONTEND
        if isload_col[hseq]:
            return _LOAD
        if (
            prb_col[hseq]
            and ltc_col[hseq] > lrb_col[hseq]
            and at >= head_select + SELECT_TO_EXEC + lrb_col[hseq]
        ):
            return _CONV
        return _ADDER

    fr_ptr = 0

    def _frontier_seq() -> int:
        nonlocal fr_ptr
        p = fr_ptr
        fq = fq_head
        while p < fq and sel_col[p] >= 0:
            p += 1
        fr_ptr = p
        return p if p < fq else -1

    def _replay_stall_range(
        hseq: int, fseq: int, start: int, stop: int, blocked: bool
    ) -> None:
        marks = {start, stop}
        if hseq >= 0:
            complete = comp_col[hseq]
            if complete >= 0 and start < complete < stop:
                marks.add(complete)
            select = sel_col[hseq]
            if select >= 0:
                conversion_edge = select + SELECT_TO_EXEC + lrb_col[hseq]
                if start < conversion_edge < stop:
                    marks.add(conversion_edge)
        points = sorted(marks)
        for segment_start, segment_stop in zip(points, points[1:]):
            cause = _classify(hseq, fseq, segment_start, blocked)
            if sampler is None:
                stall_record(cause, segment_stop - segment_start)
                continue
            position = segment_start
            while position < segment_stop:
                boundary = sampler.next_capture
                if position <= boundary < segment_stop:
                    stall_record(cause, boundary + 1 - position)
                    sampler.capture(boundary)
                    position = boundary + 1
                else:
                    stall_record(cause, segment_stop - position)
                    position = segment_stop

    def no_progress_error() -> "SimulationError":
        return SimulationError(
            f"{config.name} on {program.name}: no retirement progress for "
            f"{progress_window} cycles at cycle {cycle} "
            f"(ROB {rob_tail - rob_head}, schedulers "
            f"{[len(act[i]) + len(wtr[i]) for i in range(ns)]})"
        )

    def budget_error() -> "SimulationError":
        return SimulationError(
            f"{config.name} on {program.name}: exceeded {max_cycles} cycles"
        )

    # ---------------------------------------------------------------------
    # The cycle loop (stage order mirrors run_soa exactly).
    # ---------------------------------------------------------------------
    while True:
        # ---- retire ------------------------------------------------------
        retired = 0
        while retired < retire_width and rob_head < rob_tail:
            complete = comp_col[rob_head]
            if complete < 0 or complete >= cycle:
                break
            rob_head += 1
            retired += 1
        if retired:
            instr_done += retired
            last_progress_cycle = cycle
            deadline = cycle + progress_window
            if deadline > max_cycles:
                deadline = max_cycles

        # ---- select + issue (merged sweep per scheduler) -----------------
        selected_any = False
        for s in range(ns):
            acts = act[s]
            wtrs = wtr[s]
            pend = dirty_cur[s]
            if not acts and not wtrs:
                if pend:
                    del pend[:]
                continue
            if finite_min[s] > cycle and not pend:
                continue
            if pend:
                pend.sort()
            cur_s = s
            grants = None
            grant_indices = None
            wait_seqs = None
            wait_indices = None
            newmin = _NEVER
            exhausted = False
            na = len(acts)
            ai = 0
            pi = 0
            while True:
                if pend and pi < len(pend) and (ai >= na or pend[pi] < acts[ai]):
                    e = pend[pi]
                    pi += 1
                    producer = wait_col[e]
                    if producer >= 0 and not wstore_col[e]:
                        inherited = cause_col[producer]
                        if inherited is None:
                            inherited = _LOAD if isload_col[producer] else _ADDER
                        if cause_col[e] is not inherited:
                            cause_col[e] = inherited
                            if haswait_col[e]:
                                _mark_waiters(e)
                    continue
                if ai >= na:
                    break
                e = acts[ai]
                ai += 1
                verdict = ntry_col[e]
                if verdict > cycle:
                    if not exhausted and verdict < newmin:
                        newmin = verdict
                    continue
                # ---- _eval inlined: wakeup evaluation of e at `cycle`.
                # Identical to the solo engine's _eval closure; inlined
                # because the ~2.5 evaluations per issued instruction make
                # the call overhead itself a measurable cost.
                worst = cycle
                wcause = None
                waiting = False
                cluster = clus_col[e]
                # The two renamed sources are unrolled (the plan packs at
                # most s0 and s1); each body is the solo engine's per-
                # source evaluation verbatim, with `waiting` standing in
                # for the loop's early `break`.
                pseq = s0p_col[e]
                if pseq >= 0:
                    psel = sel_col[pseq]
                    if psel < 0:
                        inherited = cause_col[pseq]
                        if inherited is None:
                            inherited = _LOAD if isload_col[pseq] else _ADDER
                        if cause_col[e] is not inherited:
                            cause_col[e] = inherited
                            if haswait_col[e]:
                                _mark_waiters(e)
                        wait_col[e] = pseq
                        wstore_col[e] = False
                        ntry_col[e] = _NEVER
                        lst = cons.get(pseq)
                        if lst is None:
                            cons[pseq] = [e]
                            haswait_col[pseq] = True
                        else:
                            lst.append(e)
                        waiting = True
                    else:
                        wants_tc = s0t_col[e]
                        adjust = (
                            cluster_delay if clus_col[pseq] != cluster else 0
                        )
                        offset = cycle - psel - adjust
                        if wants_tc:
                            permanent = ttcp_col[pseq]
                            mask = ttcm_col[pseq]
                        else:
                            permanent = trbp_col[pseq]
                            mask = trbm_col[pseq]
                        if offset < permanent and not (
                            offset >= 0 and (mask >> offset) & 1
                        ):
                            start = offset + 1 if offset >= 0 else 1
                            if start >= permanent:
                                next_offset = start
                            else:
                                rest = mask >> start
                                if rest:
                                    next_offset = start + (
                                        (rest & -rest).bit_length() - 1
                                    )
                                else:
                                    next_offset = permanent
                            candidate = psel + adjust + next_offset
                            if candidate > worst:
                                worst = candidate
                                blocked = next_offset - 1
                                computed_at = (
                                    ltc_col[pseq] if wants_tc
                                    else lrb_col[pseq]
                                )
                                if blocked >= computed_at:
                                    wcause = _HOLE
                                elif isload_col[pseq]:
                                    wcause = _LOAD
                                elif (
                                    wants_tc
                                    and prb_col[pseq]
                                    and blocked >= lrb_col[pseq]
                                ):
                                    wcause = _CONV
                                else:
                                    wcause = _ADDER
                if not waiting:
                    pseq = s1p_col[e]
                    if pseq >= 0:
                        psel = sel_col[pseq]
                        if psel < 0:
                            inherited = cause_col[pseq]
                            if inherited is None:
                                inherited = (
                                    _LOAD if isload_col[pseq] else _ADDER
                                )
                            if cause_col[e] is not inherited:
                                cause_col[e] = inherited
                                if haswait_col[e]:
                                    _mark_waiters(e)
                            wait_col[e] = pseq
                            wstore_col[e] = False
                            ntry_col[e] = _NEVER
                            lst = cons.get(pseq)
                            if lst is None:
                                cons[pseq] = [e]
                                haswait_col[pseq] = True
                            else:
                                lst.append(e)
                            waiting = True
                        else:
                            wants_tc = s1t_col[e]
                            adjust = (
                                cluster_delay if clus_col[pseq] != cluster
                                else 0
                            )
                            offset = cycle - psel - adjust
                            if wants_tc:
                                permanent = ttcp_col[pseq]
                                mask = ttcm_col[pseq]
                            else:
                                permanent = trbp_col[pseq]
                                mask = trbm_col[pseq]
                            if offset < permanent and not (
                                offset >= 0 and (mask >> offset) & 1
                            ):
                                start = offset + 1 if offset >= 0 else 1
                                if start >= permanent:
                                    next_offset = start
                                else:
                                    rest = mask >> start
                                    if rest:
                                        next_offset = start + (
                                            (rest & -rest).bit_length() - 1
                                        )
                                    else:
                                        next_offset = permanent
                                candidate = psel + adjust + next_offset
                                if candidate > worst:
                                    worst = candidate
                                    blocked = next_offset - 1
                                    computed_at = (
                                        ltc_col[pseq] if wants_tc
                                        else lrb_col[pseq]
                                    )
                                    if blocked >= computed_at:
                                        wcause = _HOLE
                                    elif isload_col[pseq]:
                                        wcause = _LOAD
                                    elif (
                                        wants_tc
                                        and prb_col[pseq]
                                        and blocked >= lrb_col[pseq]
                                    ):
                                        wcause = _CONV
                                    else:
                                        wcause = _ADDER
                if not waiting and sx_col[e] is not None:
                    # Overflow sources beyond the unrolled pair (CMOVs
                    # read three registers): the same body as s1's, with
                    # the solo engine's early break restored as a real
                    # break.
                    for pseq, wants_tc in sx_col[e]:
                        psel = sel_col[pseq]
                        if psel < 0:
                            inherited = cause_col[pseq]
                            if inherited is None:
                                inherited = (
                                    _LOAD if isload_col[pseq] else _ADDER
                                )
                            if cause_col[e] is not inherited:
                                cause_col[e] = inherited
                                if haswait_col[e]:
                                    _mark_waiters(e)
                            wait_col[e] = pseq
                            wstore_col[e] = False
                            ntry_col[e] = _NEVER
                            lst = cons.get(pseq)
                            if lst is None:
                                cons[pseq] = [e]
                                haswait_col[pseq] = True
                            else:
                                lst.append(e)
                            waiting = True
                            break
                        adjust = (
                            cluster_delay if clus_col[pseq] != cluster
                            else 0
                        )
                        offset = cycle - psel - adjust
                        if wants_tc:
                            permanent = ttcp_col[pseq]
                            mask = ttcm_col[pseq]
                        else:
                            permanent = trbp_col[pseq]
                            mask = trbm_col[pseq]
                        if offset < permanent and not (
                            offset >= 0 and (mask >> offset) & 1
                        ):
                            start = offset + 1 if offset >= 0 else 1
                            if start >= permanent:
                                next_offset = start
                            else:
                                rest = mask >> start
                                if rest:
                                    next_offset = start + (
                                        (rest & -rest).bit_length() - 1
                                    )
                                else:
                                    next_offset = permanent
                            candidate = psel + adjust + next_offset
                            if candidate > worst:
                                worst = candidate
                                blocked = next_offset - 1
                                computed_at = (
                                    ltc_col[pseq] if wants_tc
                                    else lrb_col[pseq]
                                )
                                if blocked >= computed_at:
                                    wcause = _HOLE
                                elif isload_col[pseq]:
                                    wcause = _LOAD
                                elif (
                                    wants_tc
                                    and prb_col[pseq]
                                    and blocked >= lrb_col[pseq]
                                ):
                                    wcause = _CONV
                                else:
                                    wcause = _ADDER
                if not waiting:
                    dep = sdep_col[e]
                    if dep >= 0:
                        dep_select = sel_col[dep]
                        if dep_select < 0:
                            if cause_col[e] is not _LOAD:
                                cause_col[e] = _LOAD
                                if haswait_col[e]:
                                    _mark_waiters(e)
                            wait_col[e] = dep
                            wstore_col[e] = True
                            ntry_col[e] = _NEVER
                            lst = cons.get(dep)
                            if lst is None:
                                cons[dep] = [e]
                                haswait_col[dep] = True
                            else:
                                lst.append(e)
                            waiting = True
                        elif cycle - dep_select < 1:
                            candidate = dep_select + 1
                            if candidate > worst:
                                worst = candidate
                                wcause = _LOAD
                if waiting:
                    verdict = -1
                elif worst > cycle:
                    if cause_col[e] is not wcause:
                        cause_col[e] = wcause
                        if haswait_col[e]:
                            _mark_waiters(e)
                    verdict = worst
                else:
                    if cause_col[e] is not None:
                        cause_col[e] = None
                        if haswait_col[e]:
                            _mark_waiters(e)
                    verdict = cycle
                # ---- verdict handling (probe mode after select_width) ----
                if exhausted:
                    if verdict == cycle:
                        cont_loc[s] += 1
                        break
                    if verdict >= 0:
                        ntry_col[e] = verdict
                    elif wait_seqs is None:
                        wait_seqs = [e]
                        wait_indices = [ai - 1]
                    else:
                        wait_seqs.append(e)
                        wait_indices.append(ai - 1)
                    continue
                if verdict == cycle:
                    if grants is None:
                        grants = [e]
                        grant_indices = [ai - 1]
                    else:
                        grants.append(e)
                        grant_indices.append(ai - 1)
                        if len(grants) == select_width:
                            exhausted = True
                elif verdict >= 0:
                    ntry_col[e] = verdict
                    if verdict < newmin:
                        newmin = verdict
                elif wait_seqs is None:
                    wait_seqs = [e]
                    wait_indices = [ai - 1]
                else:
                    wait_seqs.append(e)
                    wait_indices.append(ai - 1)
            if pi < len(pend):
                dirty_nxt[s].extend(pend[pi:])
                any_dirty_nxt = True
            del pend[:]
            if wait_seqs is not None:
                if grant_indices is None:
                    removals = wait_indices
                else:
                    removals = sorted(grant_indices + wait_indices)
                for index in reversed(removals):
                    del acts[index]
                for e in wait_seqs:
                    insort(wtrs, e)
            elif grants is not None:
                for index in reversed(grant_indices):
                    del acts[index]
            if grants is not None:
                g = len(grants)
                occ_total -= g
                sel_loc[s] += g
                selected_any = True
                if level_histogram is None:
                    # Lazily created at the first grant, like the solo
                    # engine (a program that never issues must not add
                    # the histogram to the registry).
                    level_histogram = metrics.histogram(
                        "bypass.source_level"
                    )
                # ---- _issue inlined (one call per retired instruction
                # otherwise; same body as the solo engine's closure) ----
                for e in grants:
                    sel_col[e] = cycle
                    kind = kind_col[e]
                    if kind == _K_SIMPLE:
                        comp_col[e] = cycle + SELECT_TO_EXEC + ltc_col[e]
                    elif kind == _K_LOAD:
                        addr = mem_col[e]
                        line = addr >> d_shift
                        ways = d_sets[line & d_mask]
                        try:
                            ways.remove(line)
                        except ValueError:
                            d_misses += 1
                            ready = l2_ready(
                                addr, cycle + SELECT_TO_EXEC + 1 + d_lat
                            )
                            ways.insert(0, line)
                            if len(ways) > d_assoc:
                                ways.pop()
                        else:
                            ways.insert(0, line)
                            d_hits += 1
                            ready = cycle + SELECT_TO_EXEC + 1 + d_lat
                        load_latency = ready - (cycle + SELECT_TO_EXEC)
                        flat = load_flats.get(load_latency)
                        if flat is None:
                            flat = machine.bypass.load_template(
                                load_latency
                            ).flatten()
                            load_flats[load_latency] = flat
                        mask, permanent, first = flat
                        trbm_col[e] = ttcm_col[e] = mask
                        trbp_col[e] = ttcp_col[e] = permanent
                        trbf_col[e] = ttcf_col[e] = first
                        lrb_col[e] = ltc_col[e] = load_latency
                        comp_col[e] = cycle + SELECT_TO_EXEC + load_latency
                    elif kind == _K_STORE:
                        addr = mem_col[e]
                        line = addr >> d_shift
                        ways = d_sets[line & d_mask]
                        try:
                            ways.remove(line)
                        except ValueError:
                            d_misses += 1
                            l2_ready(
                                addr, cycle + SELECT_TO_EXEC + 1 + d_lat
                            )
                            ways.insert(0, line)
                            if len(ways) > d_assoc:
                                ways.pop()
                        else:
                            ways.insert(0, line)
                            d_hits += 1
                        lrb_col[e] = ltc_col[e] = 1
                        comp_col[e] = cycle + SELECT_TO_EXEC + 1
                    else:  # _K_BRANCH
                        resolve = cycle + SELECT_TO_EXEC + branch_latency
                        comp_col[e] = resolve
                        if misp_col[e]:
                            # FetchUnit.resolve_branch on the replay state.
                            fetch_resume = resolve
                            fetch_misp_stalled = False

                    if haswait_col[e]:
                        haswait_col[e] = False
                        for f in cons.pop(e):
                            if wait_col[f] != e:
                                continue
                            wait_col[f] = -1
                            sf = sched_col[f]
                            wl = wtr[sf]
                            del wl[bisect_left(wl, f)]
                            insort(act[sf], f)
                            due = cycle if sf > s else cycle + 1
                            ntry_col[f] = due
                            if due < finite_min[sf]:
                                finite_min[sf] = due

                    pseq = s0p_col[e]
                    if pseq < 0:
                        levels_buf[0] = levels_get(0, 0) + 1
                        continue
                    any_bypassed = False
                    best_level = _NEVER
                    last_arrival = -1
                    last_case = -1
                    cluster = clus_col[e]
                    # Source loop unrolled over (s0, s1), like _eval's.
                    wants_tc = s0t_col[e]
                    adjust = (
                        cluster_delay if clus_col[pseq] != cluster else 0
                    )
                    psel = sel_col[pseq]
                    offset = cycle - psel - adjust
                    producer_rb = prb_col[pseq]
                    if (
                        producer_rb
                        and not wants_tc
                        and offset < ltc_col[pseq]
                    ):
                        exec_latency = lrb_col[pseq]
                    else:
                        exec_latency = ltc_col[pseq]
                    level = offset - exec_latency
                    bypassed = level < 3  # RF_LEVELS
                    arrival = psel + adjust + (
                        ttcf_col[pseq] if wants_tc else trbf_col[pseq]
                    )
                    if bypassed:
                        any_bypassed = True
                        bypassed_n += 1
                        value = level + 1  # 1 == BYP-1
                        hist_buf[value] = hist_get(value, 0) + 1
                        if adjust:
                            cross_n += 1
                        if level < best_level:
                            best_level = level
                    if arrival > last_arrival:
                        last_arrival = arrival
                        if bypassed:
                            if producer_rb:
                                last_case = 1 if wants_tc else 0
                            else:
                                last_case = 3 if wants_tc else 2
                        else:
                            last_case = -1
                    pseq = s1p_col[e]
                    if pseq >= 0:
                        wants_tc = s1t_col[e]
                        adjust = (
                            cluster_delay if clus_col[pseq] != cluster else 0
                        )
                        psel = sel_col[pseq]
                        offset = cycle - psel - adjust
                        producer_rb = prb_col[pseq]
                        if (
                            producer_rb
                            and not wants_tc
                            and offset < ltc_col[pseq]
                        ):
                            exec_latency = lrb_col[pseq]
                        else:
                            exec_latency = ltc_col[pseq]
                        level = offset - exec_latency
                        bypassed = level < 3  # RF_LEVELS
                        arrival = psel + adjust + (
                            ttcf_col[pseq] if wants_tc else trbf_col[pseq]
                        )
                        if bypassed:
                            any_bypassed = True
                            bypassed_n += 1
                            value = level + 1  # 1 == BYP-1
                            hist_buf[value] = hist_get(value, 0) + 1
                            if adjust:
                                cross_n += 1
                            if level < best_level:
                                best_level = level
                        if arrival > last_arrival:
                            last_arrival = arrival
                            if bypassed:
                                if producer_rb:
                                    last_case = 1 if wants_tc else 0
                                else:
                                    last_case = 3 if wants_tc else 2
                            else:
                                last_case = -1
                    if sx_col[e] is not None:
                        # Overflow sources (CMOVs): same accounting body
                        # as the unrolled pair.
                        for pseq, wants_tc in sx_col[e]:
                            adjust = (
                                cluster_delay if clus_col[pseq] != cluster
                                else 0
                            )
                            psel = sel_col[pseq]
                            offset = cycle - psel - adjust
                            producer_rb = prb_col[pseq]
                            if (
                                producer_rb
                                and not wants_tc
                                and offset < ltc_col[pseq]
                            ):
                                exec_latency = lrb_col[pseq]
                            else:
                                exec_latency = ltc_col[pseq]
                            level = offset - exec_latency
                            bypassed = level < 3  # RF_LEVELS
                            arrival = psel + adjust + (
                                ttcf_col[pseq] if wants_tc
                                else trbf_col[pseq]
                            )
                            if bypassed:
                                any_bypassed = True
                                bypassed_n += 1
                                value = level + 1  # 1 == BYP-1
                                hist_buf[value] = hist_get(value, 0) + 1
                                if adjust:
                                    cross_n += 1
                                if level < best_level:
                                    best_level = level
                            if arrival > last_arrival:
                                last_arrival = arrival
                                if bypassed:
                                    if producer_rb:
                                        last_case = 1 if wants_tc else 0
                                    else:
                                        last_case = 3 if wants_tc else 2
                                else:
                                    last_case = -1
                    if any_bypassed:
                        withbyp_n += 1
                        if last_case >= 0:
                            cases_buf[last_case] = cases_get(last_case, 0) + 1
                        use = 1 if best_level == 0 else 2
                    else:
                        use = 0
                    levels_buf[use] = levels_get(use, 0) + 1
            elif acts or wtrs:
                finite_min[s] = newmin

        # ---- dispatch (rename folded into the plan) ----------------------
        dispatched = 0
        dispatch_blocked = False
        while dispatched < rename_width and fq_head < seq_count:
            e = fq_head
            if e >= db_end:
                while e >= bstart[db + 1]:
                    db += 1
                db_end = bstart[db + 1]
                db_ready = bfetchc[db] + frontend_depth
            if db_ready > cycle:
                break
            if rob_tail - rob_head >= rob_size:
                dispatch_blocked = True
                break
            target = sched_col[e]
            acts = act[target]
            if len(acts) + len(wtr[target]) >= sched_capacity:
                full_loc[target] += 1
                dispatch_blocked = True
                break
            fq_head += 1
            earliest = cycle + rename_latency
            if (not acts and not wtr[target]) or earliest < finite_min[target]:
                finite_min[target] = earliest
            ntry_col[e] = earliest
            acts.append(e)
            occ_total += 1
            rob_tail += 1
            dispatched += 1

        # ---- fetch (bundle replay) ---------------------------------------
        if (
            not fetch_halted
            and not fetch_misp_stalled
            and seq_count - fq_head < fetch_queue_capacity
        ):
            # Mirrors FetchUnit.fetch_into's early-out structure; the
            # bundle contents themselves come from the shared trace.
            if fetch_resume is not None and cycle < fetch_resume:
                fetch_stalls += 1
            else:
                fetch_resume = None
                deliver = False
                pc = bpc[bidx]
                if icache_pc == pc:
                    if cycle < icache_ready:
                        fetch_stalls += 1
                    else:
                        icache_pc = None
                        deliver = True
                else:
                    line = pc >> i_shift
                    ways = i_sets[line & i_mask]
                    try:
                        ways.remove(line)
                    except ValueError:
                        i_misses += 1
                        ready = l2_ready(pc, cycle + icache_hit_latency)
                        ways.insert(0, line)
                        if len(ways) > i_assoc:
                            ways.pop()
                        icache_pc = pc
                        icache_ready = ready - icache_hit_latency
                        fetch_stalls += 1
                    else:
                        ways.insert(0, line)
                        i_hits += 1
                        deliver = True
                if deliver:
                    bfetchc.append(cycle)
                    if bmisp[bidx]:
                        fetch_misp_stalled = True
                    elif bidx == last_bundle:
                        fetch_halted = True
                    bidx += 1
                    seq_count = bstart[bidx]

        # ---- occupancy sampling (run-length, inlined) --------------------
        if occ_total != occ_run_value:
            span = cycle - occ_run_start
            if span:
                occ_count += span
                occ_sum += occ_run_value * span
                if occ_boundary < cycle:
                    samples = occupancy_series.samples
                    stride = occupancy_series.stride
                    b = occ_boundary
                    while b < cycle:
                        samples.append(occ_run_value)
                        if len(samples) > occ_max:
                            samples = occupancy_series.samples = samples[::2]
                            stride = occupancy_series.stride = stride * 2
                        b += stride
                        b -= b % stride
                    occ_boundary = b
                occ_run_start = cycle
            occ_run_value = occ_total

        # ---- stall attribution (_classify inlined) -----------------------
        if retired:
            cause = _BASE
        else:
            p = fr_ptr
            while p < fq_head and sel_col[p] >= 0:
                p += 1
            fr_ptr = p
            if rob_head >= rob_tail:
                cause = _FRONTEND
            else:
                cause = cause_col[p] if p < fq_head else None
                if cause is None:
                    hseq = rob_head
                    head_complete = comp_col[hseq]
                    if 0 <= head_complete <= cycle:
                        cause = _RETIRE
                    elif dispatch_blocked:
                        cause = _WINDOW
                    elif p < fq_head:
                        cause = _FRONTEND
                    else:
                        head_select = sel_col[hseq]
                        if head_select < 0:
                            cause = _FRONTEND
                        elif isload_col[hseq]:
                            cause = _LOAD
                        elif (
                            prb_col[hseq]
                            and ltc_col[hseq] > lrb_col[hseq]
                            and cycle >= head_select + SELECT_TO_EXEC + lrb_col[hseq]
                        ):
                            cause = _CONV
                        else:
                            cause = _ADDER
        if cause is pending_cause:
            pending_count += 1
        else:
            if pending_count:
                try:
                    ki = stall_keys.index(pending_cause)
                except ValueError:
                    stall_keys.append(pending_cause)
                    stall_vals.append(pending_count)
                else:
                    stall_vals[ki] += pending_count
            pending_cause = cause
            pending_count = 1

        # ---- interval sampling -------------------------------------------
        if cycle == sampler_next:
            try:
                ki = stall_keys.index(pending_cause)
            except ValueError:
                stall_keys.append(pending_cause)
                stall_vals.append(pending_count)
            else:
                stall_vals[ki] += pending_count
            pending_cause = None
            pending_count = 0
            _flush_bypass()
            _sync_views()
            sampler.capture(cycle)
            sampler_next = sampler.next_capture

        # ---- termination -------------------------------------------------
        if (
            fetch_halted
            and fq_head == seq_count
            and rob_head == rob_tail
            and occ_total == 0
        ):
            if pending_count:
                try:
                    ki = stall_keys.index(pending_cause)
                except ValueError:
                    stall_keys.append(pending_cause)
                    stall_vals.append(pending_count)
                else:
                    stall_vals[ki] += pending_count
                pending_count = 0
            break
        cycle += 1
        if any_dirty_nxt:
            any_dirty_nxt = False
            for dn, dc in zip(dirty_nxt, dirty_cur):
                if dn:
                    dc.extend(dn)
                    del dn[:]
        if cycle > deadline:
            if cycle - last_progress_cycle > progress_window:
                raise no_progress_error()
            raise budget_error()
        if retired or selected_any or dispatched or not cycle_skip:
            continue

        # ---- cycle skipping (event-driven fast-forward) ------------------
        wake = _NEVER
        if rob_head < rob_tail:
            head_complete = comp_col[rob_head]
            if head_complete >= 0:
                wake = head_complete + 1
        for s in range(ns):
            if wtr[s]:
                wake = cycle
                break
            if act[s] and finite_min[s] < wake:
                wake = finite_min[s]
        if wake <= cycle:
            continue

        dispatch_wait_blocked = False
        blocked_full_index = -1
        if fq_head < seq_count:
            if fq_head >= db_end:
                while fq_head >= bstart[db + 1]:
                    db += 1
                db_end = bstart[db + 1]
                db_ready = bfetchc[db] + frontend_depth
            eligible = db_ready
            if eligible > cycle:
                if eligible < wake:
                    wake = eligible
            elif rob_tail - rob_head >= rob_size:
                dispatch_wait_blocked = True
            else:
                target = sched_col[e]
                if len(act[target]) + len(wtr[target]) < sched_capacity:
                    continue  # dispatch can act this cycle
                dispatch_wait_blocked = True
                blocked_full_index = target

        fetch_counts = False
        if seq_count - fq_head < fetch_queue_capacity:
            # FetchUnit.next_event_cycle on the replay state.
            if fetch_halted or fetch_misp_stalled:
                fetch_wake = None
            elif fetch_resume is not None and cycle < fetch_resume:
                fetch_wake = fetch_resume
                fetch_counts = True
            elif icache_pc == bpc[bidx] and cycle < icache_ready:
                fetch_wake = icache_ready
                fetch_counts = True
            else:
                fetch_wake = cycle
            if fetch_wake is not None:
                if fetch_wake <= cycle:
                    continue  # fetch can act this cycle
                if fetch_wake < wake:
                    wake = fetch_wake

        if wake <= cycle:
            continue
        stop = min(wake, last_progress_cycle + progress_window + 1, max_cycles + 1)
        span = stop - cycle

        if blocked_full_index >= 0:
            full_loc[blocked_full_index] += span
        if fetch_counts:
            fetch_stalls += span
        # Occupancy needs no skip handling: the skip gate implies nothing
        # dispatched or issued this cycle, so occ_run_value == occ_total
        # and the pending run simply extends across the skipped span.
        if pending_count:
            try:
                ki = stall_keys.index(pending_cause)
            except ValueError:
                stall_keys.append(pending_cause)
                stall_vals.append(pending_count)
            else:
                stall_vals[ki] += pending_count
            pending_cause = None
            pending_count = 0
        _flush_bypass()
        if sampler is not None:
            _sync_views()
        _replay_stall_range(
            rob_head if rob_head < rob_tail else -1,
            _frontier_seq(), cycle, stop, dispatch_wait_blocked,
        )
        if sampler is not None:
            sampler_next = sampler.next_capture
        skipped_cycles += span
        cycle = stop
        if any_dirty_nxt:
            any_dirty_nxt = False
            for dn, dc in zip(dirty_nxt, dirty_cur):
                if dn:
                    dc.extend(dn)
                    del dn[:]
        if cycle > deadline:
            if cycle - last_progress_cycle > progress_window:
                raise no_progress_error()
            raise budget_error()

    # ---- end of run ------------------------------------------------------
    _flush_bypass()
    for i in range(ns):
        sel_counters[i].value = sel_loc[i]
        full_counters[i].value = full_loc[i]
        cont_counters[i].value = cont_loc[i]
    dcache.hits += d_hits
    dcache.misses += d_misses
    icache.hits += i_hits
    icache.misses += i_misses
    machine.skipped_cycles = skipped_cycles
    stats.cycles = cycle + 1
    stats.branches = trace.branches
    stats.mispredictions = trace.mispredictions
    stats.fetch_stall_cycles = fetch_stalls
    stats.dcache_hits = dcache.hits
    stats.dcache_misses = dcache.misses
    stats.icache_misses = icache.misses
    stats.l2_misses = hierarchy.l2.misses
    occ_record_run(occ_run_start, cycle + 1, occ_run_value)
    occupancy_series.count += occ_count
    occupancy_series.total += occ_sum
    stats.scheduler_occupancy_samples = occupancy_series.count
    stats.scheduler_occupancy_sum = occupancy_series.total
    if sampler is not None:
        _sync_views()
        stats.timeline = sampler.finalize(cycle)
    log.debug(
        "finished %s on %s (soa batch): %d instructions in %d cycles (IPC %.3f)",
        config.name, program.name, stats.instructions, stats.cycles, stats.ipc,
    )
    return stats
