"""The out-of-order core simulator.

Pipeline (Table 2: minimum 13 cycles end to end):

* fetch + decode: 6 cycles (includes the 2-cycle pipelined I-cache);
* rename: 2 cycles;
* schedule: 1 cycle (the select cycle);
* register read: 2 cycles;
* execute: >= 1 cycle;
* retire: 1 cycle.

All dependence timing is done in select-cycle space (see
:mod:`repro.backend.bypass`): an instruction selected at cycle ``s``
begins executing at ``s + 3``, so a consumer selected ``L`` cycles after
a latency-L producer catches the result on the first-level bypass.  The
scheduler re-evaluates an instruction's sources each candidate cycle, so
holes left by deleted bypass levels delay it exactly as the paper's
shift-register wakeup logic would.
"""

from __future__ import annotations

from collections import deque

from repro.backend.bypass import AvailabilityTemplate, BypassModel, BypassStyle
from repro.backend.formats import DataFormat
from repro.backend.latency import AdderStyle
from repro.backend.scheduler import Scheduler
from repro.backend.steering import RoundRobinSteering, choose_dependence_target
from repro.core.config import MachineConfig
from repro.core.statistics import OCCUPANCY_STRIDE, BypassCase, BypassLevelUse, SimStats
from repro.core.window import DynInstr, ReorderBuffer
from repro.frontend.fetch import FetchUnit
from repro.isa.instruction import NUM_REGS, ZERO_REG
from repro.isa.opcodes import LatencyClass, Opcode, OperandFormat, ResultFormat
from repro.isa.program import Program
from repro.isa.semantics import ArchState
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.events import EventBus, EventKind, TraceEvent, lifecycle_events
from repro.obs.explain import StallCause, classify_stall_cycle
from repro.obs.log import get_logger
from repro.obs.timeline import DEFAULT_STRIDE, IntervalSampler

log = get_logger(__name__)

#: One-shot guard for the explicit-SoA-request downgrade warning.
_DOWNGRADE_WARNED = False

#: Select-cycle distance from select to the start of execution: one
#: schedule cycle is the select itself, then the 2-cycle register read.
SELECT_TO_EXEC = 3

#: Bypass levels before the register file serves a value (§5.2).
RF_LEVELS = 3

#: A store's "result" for store-to-load ordering: the dependent load may be
#: selected the cycle after the store (so its address generation follows
#: the store's execution).
_STORE_TEMPLATE = AvailabilityTemplate((), 1)

#: On the staggered machine (Fig. 1 Configuration C), only adder-to-adder
#: edges can use the early low-half forwarding.
_STAGGERED_FORWARD_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.LDA, Opcode.LDAH,
    Opcode.S4ADD, Opcode.S8ADD, Opcode.S4SUB, Opcode.S8SUB,
})


class SimulationError(RuntimeError):
    """The simulation wedged or exceeded its cycle budget."""


#: Sentinel wake cycle meaning "no internally scheduled event" — larger
#: than any reachable cycle, so the progress/budget caps always bound it.
_NEVER = 1 << 62


def _replay_stall_range(
    stats: SimStats,
    bus: EventBus | None,
    head: DynInstr | None,
    frontier: DynInstr | None,
    start: int,
    stop: int,
    dispatch_blocked: bool,
    sampler: IntervalSampler | None = None,
) -> None:
    """Record the per-cycle stall attribution for skipped cycles [start, stop).

    Every input to :func:`~repro.obs.explain.classify_stall_cycle` is
    frozen across a skipped range except the cycle number itself, which
    only matters at two thresholds: the head's completion cycle (rule 4,
    RETIRE_BOUND) and the head's RB-to-TC conversion point (rule 7,
    CONVERSION_LATENCY).  Splitting the range there and classifying once
    per segment reproduces the per-cycle loop's distribution exactly.
    With a bus attached the per-cycle STALL events must be emitted
    anyway, so the range is simply walked cycle by cycle.

    An attached interval ``sampler`` is driven at exactly the cycles the
    per-cycle loop would have driven it: every other sampled input is
    frozen across the range, and each capture due at cycle ``c`` fires
    after the stall attribution for cycles ``<= c`` has been recorded —
    so the replayed timeline rows are bit-identical to a no-skip run's.
    """
    stall_causes = stats.stall_causes
    if bus is not None:
        head_seq = head.seq if head is not None else -1
        for c in range(start, stop):
            cause = classify_stall_cycle(
                head, frontier, c, SELECT_TO_EXEC, dispatch_blocked
            )
            stall_causes.record(cause)
            bus.emit(TraceEvent(
                c, EventKind.STALL, head_seq, args={"cause": cause.value},
            ))
            if sampler is not None and c == sampler.next_capture:
                sampler.capture(c)
        return
    marks = {start, stop}
    if head is not None:
        complete = head.complete_cycle
        if complete is not None and start < complete < stop:
            marks.add(complete)
        select = head.select_cycle
        if select is not None:
            conversion_edge = select + SELECT_TO_EXEC + head.lat_rb
            if start < conversion_edge < stop:
                marks.add(conversion_edge)
    points = sorted(marks)
    for segment_start, segment_stop in zip(points, points[1:]):
        cause = classify_stall_cycle(
            head, frontier, segment_start, SELECT_TO_EXEC, dispatch_blocked
        )
        if sampler is None:
            stall_causes.record(cause, segment_stop - segment_start)
            continue
        # Chunk the segment at capture boundaries so each capture sees
        # the attribution for every cycle up to and including its own.
        position = segment_start
        while position < segment_stop:
            boundary = sampler.next_capture
            if position <= boundary < segment_stop:
                stall_causes.record(cause, boundary + 1 - position)
                sampler.capture(boundary)
                position = boundary + 1
            else:
                stall_causes.record(cause, segment_stop - position)
                position = segment_stop


class Machine:
    """One configured machine, able to run programs and report statistics."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        removed = config.removed_levels or None
        self.bypass = BypassModel(
            config.adder_style, config.bypass_style, removed,
            conversion_cycles=config.conversion_cycles,
        )
        self.latency = self.bypass.latency
        self._store_templates = {
            DataFormat.RB: _STORE_TEMPLATE, DataFormat.TC: _STORE_TEMPLATE,
        }
        #: Cycles fast-forwarded (not executed) by the last run() call.
        #: Diagnostic only — deliberately not part of SimStats, so cached
        #: results stay byte-identical whether or not skipping ran.
        self.skipped_cycles = 0
        #: Final architectural state of the last run() call (registers,
        #: memory, PC).  The timing model drives the same functional
        #: interpreter down the correct path, so this must match a pure
        #: functional execution bit for bit — repro.verify audits that.
        self.last_state: ArchState | None = None
        #: SoA-engine caches (repro.core.engine): per-static-Instruction
        #: rename memo keyed by id(instr) — each entry pins the instr
        #: object so the id stays valid — and flattened load templates
        #: keyed by dynamic load latency.  Config-dependent, so they live
        #: on the machine and survive across runs.
        self._soa_memo: dict[int, tuple] = {}
        self._soa_load_flats: dict[int, tuple[int, int, int]] = {}

    # -- public API --------------------------------------------------------------

    def run(
        self,
        program: Program,
        max_cycles: int = 20_000_000,
        progress_window: int = 100_000,
        record_trace: bool = False,
        bus: EventBus | None = None,
        cycle_skip: bool = True,
        timeline: bool = True,
        timeline_stride: int = DEFAULT_STRIDE,
        timeline_sink=None,
        engine: str | None = None,
    ) -> SimStats:
        """Simulate ``program`` to completion and return its statistics.

        With ``record_trace`` the returned stats carry a ``trace``
        attribute: the retired :class:`DynInstr` records in program order,
        including each instruction's select cycle — used by timing tests
        and for pipeline debugging.

        With a ``bus``, every retired instruction's full stage timeline
        plus per-operand bypass-forward events are emitted as
        :class:`~repro.obs.events.TraceEvent` records; the bus is closed
        (sorted, replayed through its sinks) before this method returns.

        ``cycle_skip`` enables the event-driven fast-forward: when every
        pipeline stage is provably quiescent until some future cycle
        (DESIGN.md, "Cycle skipping"), the per-cycle bookkeeping for the
        intervening idle cycles is replayed in bulk and the clock jumps
        ahead.  Statistics (cycles, CPI stacks, occupancy series, event
        streams) are bit-identical either way; ``cycle_skip=False`` is
        the escape hatch that forces the plain per-cycle loop.

        With ``timeline`` (the default) an
        :class:`~repro.obs.timeline.IntervalSampler` captures a
        microarchitectural time-series row every ``timeline_stride``
        cycles, attached to the returned stats as a ``timeline``
        attribute (like ``trace``, not part of the serialized SimStats
        schema).  Rows are bit-identical with and without ``cycle_skip``.
        ``timeline_sink`` (a callable taking a
        :class:`~repro.obs.timeline.TimelineRow`) observes each row as it
        is captured — the live-streaming hook.

        ``engine`` selects the cycle-loop implementation: ``"soa"`` (the
        flat structure-of-arrays fast path, the default) or ``"objects"``
        (this method's DynInstr-graph loop, kept as the differential
        reference).  Unset, the ``REPRO_ENGINE`` environment variable
        decides.  Both engines produce bit-identical statistics, CPI
        stacks, and timelines — ``repro check``'s ``differential:engine``
        section audits that.  Runs that need the object graph (an event
        ``bus`` or ``record_trace``) always use the object engine; when
        that overrides an *explicit* ``engine="soa"`` request the
        downgrade is surfaced rather than silent — a one-shot warning
        plus a ``core.engine.downgraded`` counter on the run's metrics
        (so ``repro serve`` operators see it in serialized stats).
        """
        from repro.core.engine import resolve_engine, run_soa

        downgraded_by = None
        if resolve_engine(engine) == "soa":
            if bus is None and not record_trace:
                return run_soa(
                    self, program,
                    max_cycles=max_cycles,
                    progress_window=progress_window,
                    cycle_skip=cycle_skip,
                    timeline=timeline,
                    timeline_stride=timeline_stride,
                    timeline_sink=timeline_sink,
                )
            if engine is not None:
                # The caller explicitly asked for the SoA engine but also
                # requested an object-graph feature the SoA loop cannot
                # serve.  Honour the feature, not silently.
                downgraded_by = "bus" if bus is not None else "record_trace"
                global _DOWNGRADE_WARNED
                if not _DOWNGRADE_WARNED:
                    _DOWNGRADE_WARNED = True
                    log.warning(
                        "engine='soa' requested but %s needs the object "
                        "graph; running the object engine instead "
                        "(counted in core.engine.downgraded; this "
                        "warning is logged once per process)",
                        downgraded_by,
                    )
        config = self.config
        stats = SimStats(machine=config.name, workload=program.name)
        if downgraded_by is not None:
            stats.metrics.counter("core.engine.downgraded").inc()
        trace: list[DynInstr] | None = [] if record_trace else None
        log.debug("running %s on %s", config.name, program.name)

        state = ArchState(program)
        self.last_state = state
        hierarchy = MemoryHierarchy(config.memory)
        fetch = FetchUnit(
            program, state, hierarchy,
            fetch_width=config.fetch_width,
            max_blocks_per_cycle=config.max_blocks_per_cycle,
        )
        schedulers = [
            Scheduler(config.scheduler_capacity, 2, name=f"sched{i}", metrics=stats.metrics)
            for i in range(config.num_schedulers)
        ]
        steering = RoundRobinSteering(config.num_schedulers)
        rob = ReorderBuffer(config.rob_size)
        fetch_queue: deque[DynInstr] = deque()

        last_writer: list[DynInstr | None] = [None] * NUM_REGS
        reg_is_rb = [False] * NUM_REGS
        last_store: dict[int, DynInstr] = {}

        self._fetch = fetch
        self._hierarchy = hierarchy
        self._stats = stats
        self._bus = bus
        occupancy_series = stats.metrics.timeseries(
            "scheduler.occupancy", stride=OCCUPANCY_STRIDE
        )

        sampler: IntervalSampler | None = None
        sampler_next = _NEVER
        if timeline:
            sampler = IntervalSampler(
                stats, rob, fetch_queue, schedulers,
                stride=timeline_stride, on_row=timeline_sink,
            )
            sampler_next = sampler.next_capture

        seq = 0
        cycle = 0
        last_progress_cycle = 0
        cluster_delay = config.cluster_delay
        self.skipped_cycles = 0

        # The readiness callback below is the simulator's hottest code
        # (one call per candidate source per select evaluation).  It is a
        # manual inline of classify_operand_wait() plus
        # AvailabilityTemplate.available() — same logic, but attribute
        # loads and identity tests instead of enum-keyed dict lookups and
        # frozenset hashing.  tests/core/test_machine_invariants.py and
        # the explain-path equivalence tests pin the behavior to the
        # out-of-line versions.
        _TC = DataFormat.TC
        _LOAD_LATENCY = StallCause.LOAD_LATENCY
        _BYPASS_HOLE = StallCause.BYPASS_HOLE
        _CONVERSION = StallCause.CONVERSION_LATENCY
        _ADDER_PIPE = StallCause.ADDER_PIPELINE

        def is_ready(rec: DynInstr, now: int) -> tuple[bool, int]:
            worst = now
            cause: StallCause | None = None
            for producer, fmt in rec.sources:
                select_cycle = producer.select_cycle
                if select_cycle is None:
                    # The producer itself has not issued: inherit its
                    # recorded operand wait (one level of transitive
                    # attribution), else attribute by producer type.
                    inherited = producer.stall_cause
                    if (
                        inherited is _LOAD_LATENCY
                        or inherited is _ADDER_PIPE
                        or inherited is _BYPASS_HOLE
                        or inherited is _CONVERSION
                    ):
                        rec.stall_cause = inherited
                    elif producer.is_load_producer:
                        rec.stall_cause = _LOAD_LATENCY
                    else:
                        rec.stall_cause = _ADDER_PIPE
                    return False, now + 1
                wants_tc = fmt is _TC
                adjust = cluster_delay if producer.cluster != rec.cluster else 0
                offset = now - select_cycle - adjust
                template = producer.tmpl_tc if wants_tc else producer.tmpl_rb
                if offset < template.permanent_from and offset not in template.discrete:
                    next_offset = template.next_available(
                        offset + 1 if offset >= 0 else 1
                    )
                    candidate = select_cycle + adjust + next_offset
                    if candidate > worst:
                        worst = candidate
                        # Classify at the *last blocked* offset: if the
                        # value is computed by then, the extra wait is a
                        # bypass hole, not execution latency.
                        blocked = next_offset - 1
                        computed_at = producer.lat_tc if wants_tc else producer.lat_rb
                        if blocked >= computed_at:
                            cause = _BYPASS_HOLE
                        elif producer.is_load_producer:
                            cause = _LOAD_LATENCY
                        elif (
                            wants_tc
                            and producer.produces_rb
                            and blocked >= producer.lat_rb
                        ):
                            cause = _CONVERSION
                        else:
                            cause = _ADDER_PIPE
            dep = rec.store_dep
            if dep is not None:
                dep_select = dep.select_cycle
                if dep_select is None:
                    rec.stall_cause = _LOAD_LATENCY
                    return False, now + 1
                if now - dep_select < 1:
                    candidate = dep_select + 1
                    if candidate > worst:
                        worst = candidate
                        # Memory-ordering wait: the load is held for the
                        # store, so the cycles are memory-access latency.
                        cause = _LOAD_LATENCY
            if worst > now:
                rec.stall_cause = cause
                return False, worst
            rec.stall_cause = None
            return True, now

        def no_progress_error() -> SimulationError:
            return SimulationError(
                f"{config.name} on {program.name}: no retirement progress for "
                f"{progress_window} cycles at cycle {cycle} "
                f"(ROB {rob.occupancy}, schedulers "
                f"{[s.occupancy for s in schedulers]})"
            )

        def budget_error() -> SimulationError:
            return SimulationError(
                f"{config.name} on {program.name}: exceeded {max_cycles} cycles"
            )

        while True:
            # ---- retire ------------------------------------------------------
            retired = rob.retire_ready(cycle, config.retire_width)
            if retired:
                stats.instructions += len(retired)
                last_progress_cycle = cycle
                for rec in retired:
                    rec.retire_cycle = cycle
                if trace is not None:
                    trace.extend(retired)
                if bus is not None:
                    for rec in retired:
                        bus.emit_many(lifecycle_events(rec, SELECT_TO_EXEC))

            # ---- select + issue ------------------------------------------------
            selected_any = False
            for scheduler in schedulers:
                grants = scheduler.select(cycle, is_ready)
                if grants:
                    selected_any = True
                    for rec in grants:
                        self._issue(rec, cycle)

            # ---- rename / dispatch ----------------------------------------------
            dispatched = 0
            dispatch_blocked = False
            while dispatched < config.rename_width and fetch_queue:
                rec = fetch_queue[0]
                if rec.fetch_cycle + config.frontend_depth > cycle:
                    break
                if not rob.has_room():
                    dispatch_blocked = True
                    break
                if config.steering_policy == "dependence":
                    target = self._dependence_target(
                        rec, last_writer, schedulers, steering.peek()
                    )
                    if target is None:
                        dispatch_blocked = True
                        break
                else:
                    target = steering.peek()
                    if not schedulers[target].has_room():
                        schedulers[target].note_full_stall(cycle, bus, rec.seq)
                        dispatch_blocked = True
                        break
                scheduler = schedulers[target]
                fetch_queue.popleft()
                steering.next_scheduler()
                rec.scheduler = target
                rec.cluster = config.cluster_of_scheduler(target)
                self._rename(rec, cycle, last_writer, reg_is_rb, last_store)
                scheduler.insert(rec, cycle + config.rename_latency)
                rob.push(rec)
                dispatched += 1

            # ---- fetch ---------------------------------------------------------------
            if len(fetch_queue) < config.fetch_queue_capacity:
                for fetched in fetch.fetch_bundle(cycle):
                    rec = DynInstr(
                        seq, fetched.instr, fetched.result,
                        fetched.fetch_cycle, fetched.mispredicted,
                    )
                    seq += 1
                    fetch_queue.append(rec)

            # ---- occupancy sampling ------------------------------------------------------
            occupancy_series.record(cycle, sum(s.occupancy for s in schedulers))

            # ---- stall attribution -------------------------------------------------------
            # Exactly one StallCause per simulated cycle, so the CPI-stack
            # components sum exactly to cycles.  Each scheduler's entries
            # are oldest-first, so the select frontier is the min-seq
            # front entry across schedulers.
            if retired:
                stats.stall_causes.record(StallCause.BASE)
            else:
                head = rob.head
                frontier: DynInstr | None = None
                for scheduler in schedulers:
                    if scheduler.entries:
                        front = scheduler.entries[0].record
                        if frontier is None or front.seq < frontier.seq:
                            frontier = front
                cause = classify_stall_cycle(
                    head, frontier, cycle, SELECT_TO_EXEC, dispatch_blocked
                )
                stats.stall_causes.record(cause)
                if bus is not None:
                    bus.emit(TraceEvent(
                        cycle, EventKind.STALL,
                        head.seq if head is not None else -1,
                        args={"cause": cause.value},
                    ))

            # ---- interval sampling -------------------------------------------------------
            # After stall attribution, so the row at a boundary covers
            # every cycle <= the boundary (the skip replay preserves
            # exactly this ordering).
            if cycle == sampler_next:
                sampler.capture(cycle)
                sampler_next = sampler.next_capture

            # ---- termination --------------------------------------------------------------
            if (
                fetch.halted
                and not fetch_queue
                and not rob
                and all(not s.entries for s in schedulers)
            ):
                break
            cycle += 1
            if cycle - last_progress_cycle > progress_window:
                raise no_progress_error()
            if cycle > max_cycles:
                raise budget_error()
            # Analyzing for a skip only pays off from a backend-idle
            # cycle: a stage that just made progress usually can act
            # again next cycle, and an idle stretch runs the analysis on
            # its first cycle anyway (one per-cycle iteration of
            # lead-in).  A cycle where only fetch progressed still
            # qualifies — the frontend pipeline delay before its bundle
            # becomes dispatch-eligible is a skippable gap.
            if not cycle_skip or retired or selected_any or dispatched:
                continue

            # ---- cycle skipping (event-driven fast-forward) ----------------------
            # Find the earliest future cycle at which any stage could act.
            # Each candidate below is exact or conservative (never later
            # than the true wake cycle); if any stage can act at the
            # current cycle, fall through to the normal per-cycle loop.
            wake = _NEVER
            head = rob.head
            if head is not None:
                head_complete = head.complete_cycle
                if head_complete is not None:
                    # Retirement happens the cycle after completion.
                    wake = head_complete + 1
            for scheduler in schedulers:
                candidate = scheduler.next_wake()
                if candidate is not None and candidate < wake:
                    wake = candidate
            if wake <= cycle:
                continue

            # Dispatch: with retire and select quiescent until ``wake``,
            # ROB and scheduler occupancy are frozen, so the head of the
            # fetch queue either becomes age-eligible at a known cycle or
            # stays blocked the same way every skipped cycle.
            dispatch_wait_blocked = False
            blocked_full_index = -1
            blocked_seq = -1
            if fetch_queue:
                first = fetch_queue[0]
                eligible = first.fetch_cycle + config.frontend_depth
                if eligible > cycle:
                    if eligible < wake:
                        wake = eligible
                elif not rob.has_room():
                    dispatch_wait_blocked = True
                elif config.steering_policy == "dependence":
                    if self._dependence_target(
                        first, last_writer, schedulers, steering.peek()
                    ) is None:
                        dispatch_wait_blocked = True
                    else:
                        continue  # dispatch can act this cycle
                else:
                    target = steering.peek()
                    if schedulers[target].has_room():
                        continue  # dispatch can act this cycle
                    dispatch_wait_blocked = True
                    blocked_full_index = target
                    blocked_seq = first.seq

            queue_open = len(fetch_queue) < config.fetch_queue_capacity
            fetch_counts = False
            if queue_open:
                fetch_wake, fetch_counts = fetch.next_event_cycle(cycle)
                if fetch_wake is not None:
                    if fetch_wake <= cycle:
                        continue  # fetch can act this cycle
                    if fetch_wake < wake:
                        wake = fetch_wake

            if wake <= cycle:
                continue
            # A wedged machine (wake == _NEVER) must still raise at the
            # same cycle the per-cycle loop would: cap the jump at the
            # progress/budget limits and re-check after landing.
            stop = min(wake, last_progress_cycle + progress_window + 1, max_cycles + 1)
            span = stop - cycle

            # Replay the per-cycle bookkeeping the skipped iterations
            # would have performed.  No stage acts in [cycle, stop), so
            # every input below is frozen at its current value.
            if blocked_full_index >= 0:
                blocked_scheduler = schedulers[blocked_full_index]
                if bus is not None:
                    for c in range(cycle, stop):
                        blocked_scheduler.note_full_stall(c, bus, blocked_seq)
                else:
                    blocked_scheduler.full_stall_cycles += span
            if fetch_counts:
                fetch.note_skipped_stalls(span)
            occupancy_series.record_run(
                cycle, stop, sum(s.occupancy for s in schedulers)
            )
            frontier = None
            for scheduler in schedulers:
                if scheduler.entries:
                    front = scheduler.entries[0].record
                    if frontier is None or front.seq < frontier.seq:
                        frontier = front
            _replay_stall_range(
                stats, bus, head, frontier, cycle, stop, dispatch_wait_blocked,
                sampler,
            )
            if sampler is not None:
                sampler_next = sampler.next_capture
            self.skipped_cycles += span
            cycle = stop
            if cycle - last_progress_cycle > progress_window:
                raise no_progress_error()
            if cycle > max_cycles:
                raise budget_error()

        stats.cycles = cycle + 1
        stats.branches = fetch.branches
        stats.mispredictions = fetch.mispredictions
        stats.fetch_stall_cycles = fetch.fetch_stall_cycles
        stats.dcache_hits = hierarchy.dcache.hits
        stats.dcache_misses = hierarchy.dcache.misses
        stats.icache_misses = hierarchy.icache.misses
        stats.l2_misses = hierarchy.l2.misses
        # The exact whole-run accumulators mirror the sampled time-series.
        stats.scheduler_occupancy_samples = occupancy_series.count
        stats.scheduler_occupancy_sum = occupancy_series.total
        if trace is not None:
            stats.trace = trace  # dynamic attribute: not part of the cached schema
        if sampler is not None:
            # Dynamic attribute like trace — kept out of SimStats.to_dict
            # so serialized stats (goldens, differentials) are unchanged;
            # the ResultCache persists it as a sibling entry key.
            stats.timeline = sampler.finalize(cycle)
        if bus is not None:
            bus.close(meta={
                "machine": config.name,
                "workload": program.name,
                "cycles": stats.cycles,
                "instructions": stats.instructions,
                "ipc": stats.ipc,
            })
        log.debug(
            "finished %s on %s: %d instructions in %d cycles (IPC %.3f)",
            config.name, program.name, stats.instructions, stats.cycles, stats.ipc,
        )
        return stats

    # -- steering ----------------------------------------------------------------------

    def _dependence_target(
        self,
        rec: DynInstr,
        last_writer: list[DynInstr | None],
        schedulers: list[Scheduler],
        round_robin_hint: int,
    ) -> int | None:
        """Dependence-aware steering (§4.2 future work): prefer the most
        recent producer's scheduler so the dependent's forwarding stays
        local."""
        producers = []
        for operand in rec.instr.sources:
            if operand.reg is None or operand.reg == ZERO_REG:
                continue
            producer = last_writer[operand.reg]
            if producer is not None and producer.scheduler >= 0:
                producers.append(producer)
        producers.sort(key=lambda p: p.seq, reverse=True)
        return choose_dependence_target(
            [p.scheduler for p in producers],
            [s.occupancy for s in schedulers],
            self.config.scheduler_capacity,
            round_robin_hint,
        )

    # -- rename stage ------------------------------------------------------------------

    def _rename(
        self,
        rec: DynInstr,
        cycle: int,
        last_writer: list[DynInstr | None],
        reg_is_rb: list[bool],
        last_store: dict[int, DynInstr],
    ) -> None:
        """Resolve dependences, formats, and availability templates."""
        rec.rename_cycle = cycle
        instr = rec.instr
        spec = instr.spec
        rb_machine = self.config.adder_style is AdderStyle.RB
        staggered = self.config.adder_style is AdderStyle.STAGGERED

        # The MOVE idiom (bis ra, ra, rc) is format-transparent: it moves an
        # RB value as RB with add-class timing, or a TC value as a 1-cycle
        # logical (§3.6).
        is_move = (
            instr.opcode is Opcode.BIS
            and len(instr.sources) == 2
            and instr.sources[0].is_reg
            and instr.sources[1].is_reg
            and instr.sources[0].reg == instr.sources[1].reg
        )
        effective_class = spec.latency_class
        if rb_machine:
            if is_move and instr.sources[0].reg != ZERO_REG:
                produces_rb = reg_is_rb[instr.sources[0].reg]
                if produces_rb:
                    effective_class = LatencyClass.INT_ARITH
            else:
                produces_rb = spec.result is ResultFormat.RB
        elif staggered:
            # Only true adds produce an early-forwardable low half.
            produces_rb = instr.opcode in _STAGGERED_FORWARD_OPS
        else:
            produces_rb = False
        rec.produces_rb = produces_rb

        rec.lat_rb = self.latency.exec_latency(effective_class)
        rec.lat_tc = (
            self.latency.tc_latency(effective_class) if produces_rb else rec.lat_rb
        )
        rec.is_load_producer = spec.is_load
        if spec.is_load:
            rec.set_templates(None)  # set at issue, when the cache latency is known
        elif spec.is_store:
            rec.set_templates(self._store_templates)
        else:
            rec.set_templates(self.bypass.templates(effective_class, produces_rb))

        # Source dependences: pair each register operand with the format the
        # consumer reads it in.  A MOVE consumes its source as RB-capable.
        operand_formats = spec.operand_formats
        sources: list[tuple[DynInstr, DataFormat]] = []
        for position, operand in enumerate(instr.sources):
            if not operand.is_reg or operand.reg == ZERO_REG:
                continue
            producer = last_writer[operand.reg]
            if producer is None:
                continue
            if staggered:
                # Config C: only another adder can consume the early half.
                can_take_early = (
                    instr.opcode in _STAGGERED_FORWARD_OPS
                    and operand_formats[position] is OperandFormat.RB_OK
                )
                fmt = DataFormat.RB if can_take_early else DataFormat.TC
            elif is_move:
                fmt = DataFormat.RB
            else:
                required = operand_formats[position]
                fmt = DataFormat.TC if required is OperandFormat.TC_ONLY else DataFormat.RB
            sources.append((producer, fmt))
        rec.sources = sources

        # Memory ordering: a load after a store to the same 8-byte granule
        # may not be selected until the store has executed.
        result = rec.result
        if spec.is_load and result.mem_address is not None:
            dep = last_store.get(result.mem_address >> 3)
            if dep is not None:
                rec.store_dep = dep
        elif spec.is_store and result.mem_address is not None:
            last_store[result.mem_address >> 3] = rec

        if instr.dest is not None and spec.writes_reg and instr.dest != ZERO_REG:
            last_writer[instr.dest] = rec
            reg_is_rb[instr.dest] = produces_rb

    # -- issue (the select cycle) -----------------------------------------------------------

    def _issue(self, rec: DynInstr, cycle: int) -> None:
        """Grant execution: fix the producer timeline and collect statistics."""
        rec.select_cycle = cycle
        spec = rec.instr.spec

        if spec.is_load:
            address = rec.result.mem_address
            ready = self._hierarchy.data_access(address, cycle + SELECT_TO_EXEC + 1)
            load_latency = ready - (cycle + SELECT_TO_EXEC)
            template = self.bypass.load_template(load_latency)
            rec.set_templates({DataFormat.RB: template, DataFormat.TC: template})
            rec.lat_rb = rec.lat_tc = load_latency
            rec.complete_cycle = cycle + SELECT_TO_EXEC + load_latency
        elif spec.is_store:
            self._hierarchy.data_access(
                rec.result.mem_address, cycle + SELECT_TO_EXEC + 1, is_write=True
            )
            rec.lat_rb = rec.lat_tc = 1
            rec.complete_cycle = cycle + SELECT_TO_EXEC + 1
        elif spec.is_branch:
            resolve = cycle + SELECT_TO_EXEC + self.latency.exec_latency(
                LatencyClass.BRANCH
            )
            rec.complete_cycle = resolve
            if rec.mispredicted:
                self._fetch.resolve_branch(resolve)
        else:
            rec.complete_cycle = cycle + SELECT_TO_EXEC + rec.lat_tc

        self._record_bypass_stats(rec, cycle)

    # -- statistics --------------------------------------------------------------------------

    def _record_bypass_stats(self, rec: DynInstr, cycle: int) -> None:
        """Fig. 13 bypass cases and §5.2 bypass-level usage."""
        stats = self._stats
        bus = self._bus
        level_histogram = stats.metrics.histogram("bypass.source_level")
        cluster_delay = self.config.cluster_delay
        any_bypassed = False
        best_level: int | None = None
        last_arrival = -1
        last_case: BypassCase | None = None

        for producer, fmt in rec.sources:
            adjust = cluster_delay if producer.cluster != rec.cluster else 0
            offset = cycle - producer.select_cycle - adjust
            # Which format was actually consumed: RB only if the producer
            # made an RB value and its TC form was not yet available.
            consumed_rb = (
                producer.produces_rb
                and fmt is DataFormat.RB
                and offset < producer.lat_tc
            )
            exec_latency = producer.lat_rb if consumed_rb else producer.lat_tc
            level = offset - exec_latency  # 0: BYP-1, 1-2: other levels, >=3: RF
            bypassed = level < RF_LEVELS
            producer_rb = producer.produces_rb
            consumer_rb = fmt is DataFormat.RB
            if producer_rb and consumer_rb:
                case = BypassCase.RB_TO_RB
            elif producer_rb:
                case = BypassCase.RB_TO_TC
            elif consumer_rb:
                case = BypassCase.TC_TO_RB
            else:
                case = BypassCase.TC_TO_TC
            arrival = producer.select_cycle + adjust + producer.templates[fmt].first_offset
            if bypassed:
                any_bypassed = True
                stats.bypassed_sources += 1
                level_histogram.record(level + 1)  # 1 == BYP-1
                if adjust:
                    stats.cross_cluster_bypasses += 1
                if best_level is None or level < best_level:
                    best_level = level
                if bus is not None:
                    bus.emit(TraceEvent(
                        cycle, EventKind.BYPASS, rec.seq, rec.instr.text,
                        args={
                            "level": level + 1,
                            "case": case.name,
                            "producer_seq": producer.seq,
                            "format": fmt.name,
                            "cross_cluster": bool(adjust),
                            "arrival": arrival,
                            "producer_load": producer.instr.spec.is_load,
                        },
                    ))
            elif bus is not None:
                # Register-file-served source: the critical-path analyzer
                # needs these edges too (Fig. 13 counts RF deliveries).
                bus.emit(TraceEvent(
                    cycle, EventKind.OPERAND, rec.seq, rec.instr.text,
                    args={
                        "level": level + 1,
                        "case": case.name,
                        "producer_seq": producer.seq,
                        "format": fmt.name,
                        "arrival": arrival,
                        "producer_load": producer.instr.spec.is_load,
                    },
                ))
            if arrival > last_arrival:
                last_arrival = arrival
                last_case = case if bypassed else None

        if any_bypassed:
            stats.instructions_with_bypass += 1
            if last_case is not None:
                stats.bypass_cases.record(last_case)
        if best_level is None:
            stats.bypass_levels.record(BypassLevelUse.NONE)
        elif best_level == 0:
            stats.bypass_levels.record(BypassLevelUse.FIRST_LEVEL)
        else:
            stats.bypass_levels.record(BypassLevelUse.OTHER_LEVEL)


def simulate(config: MachineConfig, program: Program, **kwargs) -> SimStats:
    """Convenience: build a machine and run one program."""
    return Machine(config).run(program, **kwargs)


def run_batch(
    configs: list[MachineConfig],
    workload: Program | str,
    **kwargs,
) -> list[SimStats]:
    """Simulate one workload on many configs in one batched process.

    ``workload`` is a :class:`Program` or a suite workload name; every
    config is advanced over the same decoded program by
    :func:`repro.core.engine.run_soa_batch`, sharing the fetch probe,
    rename plans, and steering columns across configs (non-batchable
    configs transparently fall back to solo runs).  Returns one
    bit-identical-to-solo :class:`SimStats` per config, in order.
    ``kwargs`` are forwarded to ``run_soa_batch`` (``cycle_skip``,
    ``timeline``, ``timeline_sinks``, ...).
    """
    from repro.core.engine import run_soa_batch
    from repro.workloads.suite import build

    program = build(workload) if isinstance(workload, str) else workload
    machines = [Machine(config) for config in configs]
    return run_soa_batch(machines, program, **kwargs)
