"""Structure-of-arrays cycle engine: the fast path behind ``Machine.run``.

The object engine (:mod:`repro.core.machine`) walks per-instruction
:class:`~repro.core.window.DynInstr` graphs every cycle; its profile is
dominated by re-evaluating wakeup readiness for instructions whose
producers have not even issued yet (~70 evaluations per instruction on
Ideal-8w/ijpeg).  This module re-represents the whole in-flight window
as flat parallel columns — one stdlib list per field, indexed by the
instruction's fetch sequence number — and replaces the per-cycle
object-graph walk with three structural ideas:

* **Append-only columns, ranges for structures.**  A slot is never
  reused (consumers may consult retired producers' columns), so the
  reorder buffer is just the integer range ``[rob_head, rob_tail)`` and
  the fetch queue is ``[fq_head, seq_count)``; dispatch and retire are
  integer bookkeeping.  Availability templates are flattened to
  ``(bitmask, permanent_from, first_offset)`` integers (see
  :meth:`~repro.backend.bypass.AvailabilityTemplate.flatten`), so the
  hole test and next-available search are two bit operations.

* **Inherit mode instead of poll-every-cycle.**  The object engine's
  readiness callback returns ``(False, now + 1)`` for an instruction
  blocked on an unissued producer, so the scheduler re-evaluates it
  every cycle purely to refresh one inherited stall cause.  Here such an
  entry enters *inherit mode*: it records which producer it waits on,
  sleeps forever (``next_try = NEVER``), and is woken by the producer's
  issue.  Its inherited stall cause is kept bit-identical with the
  object engine's per-cycle reassignment by cheap in-sweep updates,
  driven by change marks (below).

* **Merged sweeps with dirty-waiter marks.**  Each scheduler's per-cycle
  scan ("sweep") only runs when it can matter: some entry may be due
  (``finite_min <= cycle``), or a stall cause one of its inherit entries
  mirrors changed (``dirty_cur``).  Any write that changes an entry's
  stall cause marks exactly the entries waiting on it, routed by walk
  position to reproduce the object engine's Gauss-Seidel evaluation
  order: a waiter positioned *after* the writer (same scheduler, later
  slot, or a later scheduler) lands in the current cycle's dirty list
  and sees the new value this cycle; one positioned before lands in
  ``dirty_nxt`` and sees it next cycle.  Sweeps refresh only the marked
  waiters — every re-evaluation the object engine would perform on the
  others is provably a no-op and is skipped.

The result is bit-identical ``SimStats``, CPI stacks, and timeline rows
(``verify.differential.diff_engines`` and the golden corpus audit this),
at roughly an order of magnitude fewer readiness evaluations.

Engine selection: ``Machine.run(engine="soa"|"objects")``, defaulting to
the ``REPRO_ENGINE`` environment variable and then to ``"soa"``.  Runs
that need the object graph — an attached event bus or
``record_trace=True`` — always use the object engine (the columns never
materialize ``DynInstr`` records to trace).
"""

from __future__ import annotations

import os
from bisect import bisect_left, insort

from repro.backend.latency import AdderStyle
from repro.backend.steering import choose_dependence_target
from repro.core.statistics import OCCUPANCY_STRIDE, BypassCase, BypassLevelUse
from repro.frontend.fetch import FetchUnit
from repro.isa.instruction import NUM_REGS, ZERO_REG
from repro.isa.opcodes import LatencyClass, Opcode, OperandFormat, ResultFormat
from repro.isa.semantics import ArchState
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.explain import StallCause
from repro.obs.log import get_logger
from repro.obs.timeline import DEFAULT_STRIDE, IntervalSampler

log = get_logger(__name__)

#: Engine names accepted by ``Machine.run(engine=...)`` / ``REPRO_ENGINE``.
ENGINES = ("soa", "objects")

#: Environment variable consulted when ``engine`` is not passed explicitly.
ENGINE_ENV = "REPRO_ENGINE"

#: Default engine when neither the argument nor the environment chooses.
DEFAULT_ENGINE = "soa"

#: Sentinel "sleep forever" next-try for inherit-mode entries; larger than
#: any reachable cycle (the machine's budget caps are far below it).
_NEVER = 1 << 62

#: Instruction kinds, flattened from the opcode spec once at rename.
_K_SIMPLE, _K_LOAD, _K_STORE, _K_BRANCH = 0, 1, 2, 3

#: Constant-tuple sources for bulk column extends at fetch (sliced to the
#: bundle length; 256 comfortably exceeds any configured fetch width).
_ZEROS = (0,) * 256
_MINUS_ONES = (-1,) * 256
_FALSES = (False,) * 256
_NONES = (None,) * 256
_EMPTIES = ((),) * 256


def resolve_engine(explicit: str | None = None) -> str:
    """The engine to use: explicit argument, else ``REPRO_ENGINE``, else SoA."""
    if explicit is not None:
        value = explicit
    else:
        value = os.environ.get(ENGINE_ENV, "").strip().lower() or DEFAULT_ENGINE
    if value not in ENGINES:
        raise ValueError(
            f"unknown engine {value!r}: expected one of {', '.join(ENGINES)}"
        )
    return value


# ---------------------------------------------------------------------------
# Boundary views: duck-typed stand-ins for the ReorderBuffer / fetch deque /
# Scheduler objects the IntervalSampler reads at capture boundaries.
# ---------------------------------------------------------------------------

class _RobView:
    """Occupancy-only view of the integer-range reorder buffer."""

    __slots__ = ("occupancy",)

    def __init__(self) -> None:
        self.occupancy = 0


class _QueueView:
    """Length-only view of the integer-range fetch queue."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def __len__(self) -> int:
        return self.count


class _SchedView:
    """Occupancy + contention view of one column-backed scheduler."""

    __slots__ = ("occupancy", "contended_cycles")

    def __init__(self) -> None:
        self.occupancy = 0
        self.contended_cycles = 0


# ---------------------------------------------------------------------------
# Static rename memo: everything about an instruction that does not depend
# on dynamic state, computed once per static Instruction per Machine.
# ---------------------------------------------------------------------------

def _flatten(template) -> tuple[int, int, int]:
    return template.flatten()


def _static_variant(machine, instr, spec, produces_rb, effective_class, is_move):
    """One (produces_rb, effective_class) flavor of an instruction's rename."""
    from repro.core.machine import _STAGGERED_FORWARD_OPS, _STORE_TEMPLATE

    staggered = machine.config.adder_style is AdderStyle.STAGGERED
    lat_rb = machine.latency.exec_latency(effective_class)
    lat_tc = (
        machine.latency.tc_latency(effective_class) if produces_rb else lat_rb
    )
    if spec.is_load:
        # Placeholder: a load's templates depend on its dynamic cache
        # latency and are installed at issue.
        rbm = rbp = rbf = tcm = tcp = tcf = 0
    elif spec.is_store:
        rbm, rbp, rbf = _STORE_TEMPLATE.flatten()
        tcm, tcp, tcf = rbm, rbp, rbf
    else:
        templates = machine.bypass.templates(effective_class, produces_rb)
        from repro.backend.formats import DataFormat

        rbm, rbp, rbf = templates[DataFormat.RB].flatten()
        tcm, tcp, tcf = templates[DataFormat.TC].flatten()

    operand_formats = spec.operand_formats
    src_pairs = []
    for position, operand in enumerate(instr.sources):
        if not operand.is_reg or operand.reg == ZERO_REG:
            continue
        if staggered:
            wants_tc = not (
                instr.opcode in _STAGGERED_FORWARD_OPS
                and operand_formats[position] is OperandFormat.RB_OK
            )
        elif is_move:
            wants_tc = False
        else:
            wants_tc = operand_formats[position] is OperandFormat.TC_ONLY
        src_pairs.append((operand.reg, wants_tc))

    dest = (
        instr.dest
        if instr.dest is not None and spec.writes_reg and instr.dest != ZERO_REG
        else -1
    )
    return (
        produces_rb, lat_rb, lat_tc,
        rbm, rbp, rbf, tcm, tcp, tcf,
        tuple(src_pairs), dest,
    )


def _static_entry(machine, instr):
    """The full per-static-instruction memo record.

    ``(instr, kind, steer_regs, move_reg, variants)`` — ``instr`` is held
    to pin its ``id()`` (the memo key) for the machine's lifetime.  When
    ``move_reg >= 0`` the instruction is an RB-machine MOVE whose result
    format depends on the source register's dynamic RB-ness: ``variants``
    is then a ``(tc_variant, rb_variant)`` pair selected at rename.
    """
    from repro.core.machine import _STAGGERED_FORWARD_OPS

    spec = instr.spec
    config = machine.config
    rb_machine = config.adder_style is AdderStyle.RB
    staggered = config.adder_style is AdderStyle.STAGGERED

    if spec.is_load:
        kind = _K_LOAD
    elif spec.is_store:
        kind = _K_STORE
    elif spec.is_branch:
        kind = _K_BRANCH
    else:
        kind = _K_SIMPLE

    steer_regs = tuple(
        operand.reg for operand in instr.sources
        if operand.reg is not None and operand.reg != ZERO_REG
    )

    is_move = (
        instr.opcode is Opcode.BIS
        and len(instr.sources) == 2
        and instr.sources[0].is_reg
        and instr.sources[1].is_reg
        and instr.sources[0].reg == instr.sources[1].reg
    )

    move_reg = -1
    if rb_machine:
        if is_move and instr.sources[0].reg != ZERO_REG:
            move_reg = instr.sources[0].reg
            variants = (
                _static_variant(
                    machine, instr, spec, False, spec.latency_class, is_move
                ),
                _static_variant(
                    machine, instr, spec, True, LatencyClass.INT_ARITH, is_move
                ),
            )
        else:
            produces_rb = spec.result is ResultFormat.RB
            variants = _static_variant(
                machine, instr, spec, produces_rb, spec.latency_class, is_move
            )
    elif staggered:
        produces_rb = instr.opcode in _STAGGERED_FORWARD_OPS
        variants = _static_variant(
            machine, instr, spec, produces_rb, spec.latency_class, is_move
        )
    else:
        variants = _static_variant(
            machine, instr, spec, False, spec.latency_class, is_move
        )
    return (instr, kind, steer_regs, move_reg, variants)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

def run_soa(
    machine,
    program,
    max_cycles: int = 20_000_000,
    progress_window: int = 100_000,
    cycle_skip: bool = True,
    timeline: bool = True,
    timeline_stride: int = DEFAULT_STRIDE,
    timeline_sink=None,
):
    """Simulate ``program`` on ``machine`` with the SoA engine.

    Mirrors the observable behavior of the object engine's per-cycle loop
    exactly — same statistics, CPI stacks, timeline rows, error messages
    — without materializing any per-instruction objects.
    """
    from repro.core.machine import SELECT_TO_EXEC, SimulationError
    from repro.core.statistics import SimStats

    config = machine.config
    stats = SimStats(machine=config.name, workload=program.name)
    log.debug("running %s on %s (soa)", config.name, program.name)

    state = ArchState(program)
    machine.last_state = state
    hierarchy = MemoryHierarchy(config.memory)
    fetch = FetchUnit(
        program, state, hierarchy,
        fetch_width=config.fetch_width,
        max_blocks_per_cycle=config.max_blocks_per_cycle,
    )

    ns = config.num_schedulers
    metrics = stats.metrics
    sel_counters = []
    full_counters = []
    cont_counters = []
    for i in range(ns):
        # Same names, creation order, and zero-touch as Scheduler.__init__.
        selected = metrics.counter(f"scheduler.sched{i}.selected")
        full = metrics.counter(f"scheduler.sched{i}.full_stall_cycles")
        contended = metrics.counter(f"scheduler.sched{i}.contended_cycles")
        selected.value = 0
        full.value = 0
        contended.value = 0
        sel_counters.append(selected)
        full_counters.append(full)
        cont_counters.append(contended)

    # Round-robin steering (groups of two) inlined as two counters.
    steer_cur = 0
    steer_ing = 0
    occupancy_series = metrics.timeseries(
        "scheduler.occupancy", stride=OCCUPANCY_STRIDE
    )

    # -- flat parallel columns, indexed by fetch sequence number -----------
    instr_col: list = []        # static Instruction
    fetchc_col: list[int] = []  # fetch cycle
    misp_col: list[bool] = []   # mispredicted branch?
    mem_col: list = []          # memory address (or None)
    kind_col: list[int] = []    # _K_* (filled at rename)
    sched_col: list[int] = []   # scheduler index (-1 before dispatch)
    clus_col: list[int] = []    # cluster of the scheduler
    sel_col: list[int] = []     # select cycle (-1 == not issued)
    comp_col: list[int] = []    # completion cycle (-1 == unknown)
    prb_col: list[bool] = []    # produces a redundant-binary result
    lrb_col: list[int] = []     # RB (execution) latency
    ltc_col: list[int] = []     # TC (converted) latency
    isload_col: list[bool] = [] # spec.is_load, flattened
    trbm_col: list[int] = []    # RB-consumer template: discrete bitmask
    trbp_col: list[int] = []    #   permanent_from
    trbf_col: list[int] = []    #   first_offset
    ttcm_col: list[int] = []    # TC-consumer template: discrete bitmask
    ttcp_col: list[int] = []    #   permanent_from
    ttcf_col: list[int] = []    #   first_offset
    srcs_col: list = []         # ((producer_seq, wants_tc), ...)
    sdep_col: list[int] = []    # store-ordering dependence seq (-1 == none)
    cause_col: list = []        # last recorded StallCause (or None)
    wait_col: list[int] = []    # inherit mode: producer seq waited on (-1)
    wstore_col: list[bool] = [] # inherit wait is the fixed store-dep kind
    ntry_col: list[int] = []    # scheduler next-try cycle
    haswait_col: list[bool] = []  # cons[] holds waiters for this seq

    #: waiters per producer seq: consumers in inherit mode on that seq.
    cons: dict[int, list[int]] = {}

    # -- per-scheduler state -----------------------------------------------
    # Each scheduler's entries are split by mode into two seq-sorted lists:
    # ``act`` holds sleeping/due entries (finite next-try), ``wtr`` holds
    # inherit-mode waiters (next-try pinned at _NEVER).  Sweeps merge the
    # due entries with the *marked* waiters by position; unmarked waiters
    # are never visited at all.
    act: list[list[int]] = [[] for _ in range(ns)]
    wtr: list[list[int]] = [[] for _ in range(ns)]
    # Lower bound on min(next_try) over *finite* (non-inherit) entries.
    finite_min = [0] * ns
    # Dirty waiters: seqs whose mirrored stall cause may need a refresh.
    # ``dirty_cur[s]`` is consumed by scheduler s's sweep this cycle;
    # ``dirty_nxt[s]`` rotates into it at the next cycle boundary.
    dirty_cur: list[list[int]] = [[] for _ in range(ns)]
    dirty_nxt: list[list[int]] = [[] for _ in range(ns)]
    any_dirty_nxt = False
    # Walk position of the sweep currently running — (scheduler index,
    # entry seq) — read by _mark_waiters to route a fresh mark.
    cur_s = -1
    cur_p = -1

    rob_head = 0
    rob_tail = 0
    fq_head = 0
    seq_count = 0
    occ_total = 0

    rob_size = config.rob_size
    sched_capacity = config.scheduler_capacity
    select_width = 2
    rename_width = config.rename_width
    retire_width = config.retire_width
    frontend_depth = config.frontend_depth
    rename_latency = config.rename_latency
    fetch_queue_capacity = config.fetch_queue_capacity
    cluster_delay = config.cluster_delay
    cluster_of = [config.cluster_of_scheduler(i) for i in range(ns)]
    dependence_steering = config.steering_policy == "dependence"
    branch_latency = machine.latency.exec_latency(LatencyClass.BRANCH)

    last_writer = [-1] * NUM_REGS
    reg_is_rb = [False] * NUM_REGS
    last_store: dict[int, int] = {}

    if config.fetch_width <= len(_ZEROS):
        zeros_src, m1_src = _ZEROS, _MINUS_ONES
        false_src, none_src, empty_src = _FALSES, _NONES, _EMPTIES
    else:
        width = config.fetch_width
        zeros_src, m1_src = (0,) * width, (-1,) * width
        false_src, none_src, empty_src = (False,) * width, (None,) * width, ((),) * width

    memo = machine._soa_memo
    load_flats = machine._soa_load_flats
    build_entry = _static_entry

    _LOAD = StallCause.LOAD_LATENCY
    _ADDER = StallCause.ADDER_PIPELINE
    _BASE = StallCause.BASE
    _FRONTEND = StallCause.FRONTEND_EMPTY
    _RETIRE = StallCause.RETIRE_BOUND
    _WINDOW = StallCause.WINDOW_FULL
    _HOLE = StallCause.BYPASS_HOLE
    _CONV = StallCause.CONVERSION_LATENCY
    _RB_RB = BypassCase.RB_TO_RB
    _RB_TC = BypassCase.RB_TO_TC
    _TC_RB = BypassCase.TC_TO_RB
    _TC_TC = BypassCase.TC_TO_TC
    _LVL_NONE = BypassLevelUse.NONE
    _LVL_FIRST = BypassLevelUse.FIRST_LEVEL
    _LVL_OTHER = BypassLevelUse.OTHER_LEVEL

    stall_record = stats.stall_causes.record
    # Stall-cause runs accumulate in first-occurrence-ordered parallel
    # lists (Enum.__hash__ is Python-level — Counter updates are not
    # cheap), flushed before any reader.  The skip replay records
    # directly: it interleaves records with sampler captures, and the
    # buffer is always empty when it runs.
    stall_keys: list = []
    stall_vals: list[int] = []
    # TimeSeries.record inlined for the per-cycle occupancy point: the
    # count/total sums accumulate in locals (flushed before any reader —
    # the skip replay's record_run and the end-of-run stats), and only
    # sample-boundary cycles touch the series itself.
    occ_samples = occupancy_series.samples
    occ_stride = occupancy_series.stride
    occ_max = occupancy_series.max_samples
    occ_next = 0  # cycle 0 is a sample point
    occ_cnt = 0
    occ_tot = 0
    level_histogram = None  # created at first issue, like the object path

    # Insertion-ordered buffers for the per-issue bypass statistics; see
    # the note in _issue.  Indices: cases 0..3 == RB_TO_RB, RB_TO_TC,
    # TC_TO_RB, TC_TO_TC; levels 0..2 == NONE, FIRST_LEVEL, OTHER_LEVEL.
    hist_buf: dict[int, int] = {}
    cases_buf: dict[int, int] = {}
    levels_buf: dict[int, int] = {}
    hist_get = hist_buf.get
    cases_get = cases_buf.get
    levels_get = levels_buf.get
    case_keys = (_RB_RB, _RB_TC, _TC_RB, _TC_TC)
    level_keys = (_LVL_NONE, _LVL_FIRST, _LVL_OTHER)
    # Scalar per-issue counters, accumulated locally and flushed with the
    # buffers (the sampler reads ``stats.bypassed_sources`` at captures).
    bypassed_n = 0
    cross_n = 0
    withbyp_n = 0

    def _flush_bypass() -> None:
        nonlocal bypassed_n, cross_n, withbyp_n
        if stall_keys:
            for k, v in zip(stall_keys, stall_vals):
                stall_record(k, v)
            del stall_keys[:]
            del stall_vals[:]
        if bypassed_n:
            stats.bypassed_sources += bypassed_n
            bypassed_n = 0
        if cross_n:
            stats.cross_cluster_bypasses += cross_n
            cross_n = 0
        if withbyp_n:
            stats.instructions_with_bypass += withbyp_n
            withbyp_n = 0
        if hist_buf:
            record = level_histogram.record
            for value, count in hist_buf.items():
                record(value, count)
            hist_buf.clear()
        if cases_buf:
            record = stats.bypass_cases.record
            for index, count in cases_buf.items():
                record(case_keys[index], count)
            cases_buf.clear()
        if levels_buf:
            record = stats.bypass_levels.record
            for index, count in levels_buf.items():
                record(level_keys[index], count)
            levels_buf.clear()

    # -- sampler views -----------------------------------------------------
    sampler: IntervalSampler | None = None
    sampler_next = _NEVER
    rob_view = _RobView()
    fq_view = _QueueView()
    sched_views = [_SchedView() for _ in range(ns)]
    if timeline:
        sampler = IntervalSampler(
            stats, rob_view, fq_view, sched_views,
            stride=timeline_stride, on_row=timeline_sink,
        )
        sampler_next = sampler.next_capture

    def _sync_views() -> None:
        rob_view.occupancy = rob_tail - rob_head
        fq_view.count = seq_count - fq_head
        for i in range(ns):
            view = sched_views[i]
            view.occupancy = len(act[i]) + len(wtr[i])
            view.contended_cycles = cont_counters[i].value

    # While fetch is stalled on an unresolved mispredicted branch its
    # fetch_bundle/fetch_into calls return empty without side effects
    # (no stall counting on that path) — skip the call entirely until
    # the branch issues and resolve_branch restarts it.
    fetch_misp_stalled = False

    cycle = 0
    last_progress_cycle = 0
    machine.skipped_cycles = 0
    skipped_cycles = 0
    pending_cause = None  # run-length batch of per-cycle stall records
    pending_count = 0

    # The hot closures bind their stable free variables (columns, lookup
    # tables, constants) as defaults: LOAD_FAST instead of LOAD_DEREF on
    # every access.  Mutated/rebound names (cur_s, cur_p, counters) stay
    # true closure variables.
    def _mark_waiters(
        e: int,
        cons=cons, wait_col=wait_col, wstore_col=wstore_col,
        sched_col=sched_col, dirty_cur=dirty_cur, dirty_nxt=dirty_nxt,
        insort=insort,
    ) -> None:
        """Entry ``e``'s stall cause changed: queue its waiters for a
        mirrored-cause refresh.  A consumer's seq is always greater than
        its producer's, so relative to the marking walk position a waiter
        is either later in the same sweep (insort into the live dirty
        list — refreshed this cycle), in a later scheduler (appended for
        its sweep this cycle), or in an earlier scheduler whose sweep
        already ran (refreshed next cycle) — exactly the object engine's
        one-level-per-cycle Gauss-Seidel cause propagation."""
        nonlocal any_dirty_nxt
        for f in cons[e]:
            if wait_col[f] == e and not wstore_col[f]:
                sf = sched_col[f]
                if sf > cur_s:
                    dirty_cur[sf].append(f)
                elif sf == cur_s:
                    insort(dirty_cur[sf], f)
                else:
                    dirty_nxt[sf].append(f)
                    any_dirty_nxt = True

    def _eval(
        e: int, now: int,
        srcs_col=srcs_col, sel_col=sel_col, cause_col=cause_col,
        isload_col=isload_col, haswait_col=haswait_col, wait_col=wait_col,
        wstore_col=wstore_col, ntry_col=ntry_col, cons=cons,
        clus_col=clus_col, ttcp_col=ttcp_col, ttcm_col=ttcm_col,
        trbp_col=trbp_col, trbm_col=trbm_col, ltc_col=ltc_col,
        lrb_col=lrb_col, prb_col=prb_col, sdep_col=sdep_col,
        cluster_delay=cluster_delay, _mark_waiters=_mark_waiters,
        _LOAD=_LOAD, _ADDER=_ADDER, _HOLE=_HOLE, _CONV=_CONV,
        _NEVER=_NEVER,
    ) -> int:
        """The readiness evaluation (object engine's ``is_ready``).

        Returns ``now`` when ready, a future cycle to sleep until when
        blocked with a known candidate, or ``-1`` when ``e`` entered
        inherit mode (side effects already applied).
        """
        worst = now
        cause = None
        cluster = clus_col[e]
        for pseq, wants_tc in srcs_col[e]:
            psel = sel_col[pseq]
            if psel < 0:
                # Unissued producer: inherit its operand-wait cause (one
                # level of transitive attribution), else by producer type.
                # (_set_cause + _enter_wait inlined — this is the hot
                # enter-inherit path.)
                inherited = cause_col[pseq]
                if inherited is None:
                    inherited = _LOAD if isload_col[pseq] else _ADDER
                if cause_col[e] is not inherited:
                    cause_col[e] = inherited
                    if haswait_col[e]:
                        _mark_waiters(e)
                wait_col[e] = pseq
                wstore_col[e] = False
                ntry_col[e] = _NEVER
                lst = cons.get(pseq)
                if lst is None:
                    cons[pseq] = [e]
                    haswait_col[pseq] = True
                else:
                    lst.append(e)
                return -1
            adjust = cluster_delay if clus_col[pseq] != cluster else 0
            offset = now - psel - adjust
            if wants_tc:
                permanent = ttcp_col[pseq]
                mask = ttcm_col[pseq]
            else:
                permanent = trbp_col[pseq]
                mask = trbm_col[pseq]
            if offset < permanent and not (offset >= 0 and (mask >> offset) & 1):
                start = offset + 1 if offset >= 0 else 1
                if start >= permanent:
                    next_offset = start
                else:
                    rest = mask >> start
                    if rest:
                        next_offset = start + ((rest & -rest).bit_length() - 1)
                    else:
                        next_offset = permanent
                candidate = psel + adjust + next_offset
                if candidate > worst:
                    worst = candidate
                    blocked = next_offset - 1
                    computed_at = ltc_col[pseq] if wants_tc else lrb_col[pseq]
                    if blocked >= computed_at:
                        cause = _HOLE
                    elif isload_col[pseq]:
                        cause = _LOAD
                    elif wants_tc and prb_col[pseq] and blocked >= lrb_col[pseq]:
                        cause = _CONV
                    else:
                        cause = _ADDER
        dep = sdep_col[e]
        if dep >= 0:
            dep_select = sel_col[dep]
            if dep_select < 0:
                if cause_col[e] is not _LOAD:
                    cause_col[e] = _LOAD
                    if haswait_col[e]:
                        _mark_waiters(e)
                wait_col[e] = dep
                wstore_col[e] = True
                ntry_col[e] = _NEVER
                lst = cons.get(dep)
                if lst is None:
                    cons[dep] = [e]
                    haswait_col[dep] = True
                else:
                    lst.append(e)
                return -1
            if now - dep_select < 1:
                candidate = dep_select + 1
                if candidate > worst:
                    worst = candidate
                    cause = _LOAD
        if worst > now:
            if cause_col[e] is not cause:
                cause_col[e] = cause
                if haswait_col[e]:
                    _mark_waiters(e)
            return worst
        if cause_col[e] is not None:
            cause_col[e] = None
            if haswait_col[e]:
                _mark_waiters(e)
        return now

    def _issue(
        e: int, now: int, sched_index: int,
        sel_col=sel_col, kind_col=kind_col, comp_col=comp_col,
        ltc_col=ltc_col, lrb_col=lrb_col, mem_col=mem_col,
        misp_col=misp_col, srcs_col=srcs_col, clus_col=clus_col,
        prb_col=prb_col, haswait_col=haswait_col, wait_col=wait_col,
        sched_col=sched_col, ntry_col=ntry_col, cons=cons,
        trbm_col=trbm_col, trbp_col=trbp_col, trbf_col=trbf_col,
        ttcm_col=ttcm_col, ttcp_col=ttcp_col, ttcf_col=ttcf_col,
        wtr=wtr, act=act, finite_min=finite_min, hierarchy=hierarchy,
        load_flats=load_flats, fetch=fetch, hist_buf=hist_buf,
        hist_get=hist_get, cases_buf=cases_buf, cases_get=cases_get,
        levels_buf=levels_buf, levels_get=levels_get,
        bisect_left=bisect_left, insort=insort,
        cluster_delay=cluster_delay, branch_latency=branch_latency,
        SELECT_TO_EXEC=SELECT_TO_EXEC, _NEVER=_NEVER,
    ) -> None:
        """Grant execution: fix the producer timeline, wake waiters,
        and collect the bypass statistics — the object engine's
        ``_issue`` + ``_record_bypass_stats`` merged."""
        nonlocal level_histogram, fetch_misp_stalled
        sel_col[e] = now
        kind = kind_col[e]
        if kind == _K_SIMPLE:
            comp_col[e] = now + SELECT_TO_EXEC + ltc_col[e]
        elif kind == _K_LOAD:
            ready = hierarchy.data_access(mem_col[e], now + SELECT_TO_EXEC + 1)
            load_latency = ready - (now + SELECT_TO_EXEC)
            flat = load_flats.get(load_latency)
            if flat is None:
                flat = machine.bypass.load_template(load_latency).flatten()
                load_flats[load_latency] = flat
            mask, permanent, first = flat
            trbm_col[e] = ttcm_col[e] = mask
            trbp_col[e] = ttcp_col[e] = permanent
            trbf_col[e] = ttcf_col[e] = first
            lrb_col[e] = ltc_col[e] = load_latency
            comp_col[e] = now + SELECT_TO_EXEC + load_latency
        elif kind == _K_STORE:
            hierarchy.data_access(
                mem_col[e], now + SELECT_TO_EXEC + 1, is_write=True
            )
            lrb_col[e] = ltc_col[e] = 1
            comp_col[e] = now + SELECT_TO_EXEC + 1
        else:  # _K_BRANCH
            resolve = now + SELECT_TO_EXEC + branch_latency
            comp_col[e] = resolve
            if misp_col[e]:
                fetch.resolve_branch(resolve)
                fetch_misp_stalled = False

        # Wake inherit-mode consumers: those in a later scheduler are due
        # this very cycle (their sweep has not run yet), earlier ones next.
        if haswait_col[e]:
            haswait_col[e] = False
            for f in cons.pop(e):
                if wait_col[f] != e:
                    continue
                wait_col[f] = -1
                sf = sched_col[f]
                wtrs = wtr[sf]
                del wtrs[bisect_left(wtrs, f)]
                insort(act[sf], f)
                due = now if sf > sched_index else now + 1
                ntry_col[f] = due
                if due < finite_min[sf]:
                    finite_min[sf] = due

        # -- bypass statistics (Fig. 13 cases, §5.2 level usage) ----------
        # Counts go into insertion-ordered local buffers keyed by small
        # ints — flushed to the enum-keyed Distributions/Histogram in
        # first-occurrence order (so serialized key order matches the
        # object engine's first-record order) before every sampler
        # capture and at run end.  The histogram object itself is still
        # created at the first issue, matching the object engine's
        # get-or-create in _record_bypass_stats.
        nonlocal bypassed_n, cross_n, withbyp_n
        if level_histogram is None:
            level_histogram = metrics.histogram("bypass.source_level")
        srcs = srcs_col[e]
        if not srcs:
            levels_buf[0] = levels_get(0, 0) + 1
            return
        any_bypassed = False
        best_level = _NEVER
        last_arrival = -1
        last_case = -1
        cluster = clus_col[e]
        for pseq, wants_tc in srcs:
            adjust = cluster_delay if clus_col[pseq] != cluster else 0
            psel = sel_col[pseq]
            offset = now - psel - adjust
            producer_rb = prb_col[pseq]
            if producer_rb and not wants_tc and offset < ltc_col[pseq]:
                exec_latency = lrb_col[pseq]
            else:
                exec_latency = ltc_col[pseq]
            level = offset - exec_latency
            bypassed = level < 3  # RF_LEVELS
            arrival = psel + adjust + (
                ttcf_col[pseq] if wants_tc else trbf_col[pseq]
            )
            if bypassed:
                any_bypassed = True
                bypassed_n += 1
                value = level + 1  # 1 == BYP-1
                hist_buf[value] = hist_get(value, 0) + 1
                if adjust:
                    cross_n += 1
                if level < best_level:
                    best_level = level
            if arrival > last_arrival:
                last_arrival = arrival
                if bypassed:
                    if producer_rb:
                        last_case = 1 if wants_tc else 0
                    else:
                        last_case = 3 if wants_tc else 2
                else:
                    last_case = -1
        if any_bypassed:
            withbyp_n += 1
            if last_case >= 0:
                cases_buf[last_case] = cases_get(last_case, 0) + 1
            use = 1 if best_level == 0 else 2
        else:
            use = 0
        levels_buf[use] = levels_get(use, 0) + 1

    def _memo_entry(instr):
        entry = memo.get(id(instr))
        if entry is None:
            entry = build_entry(machine, instr)
            memo[id(instr)] = entry
        return entry

    def _dependence_target(e: int) -> int | None:
        producers = []
        for reg in _memo_entry(instr_col[e])[2]:
            pseq = last_writer[reg]
            if pseq >= 0 and sched_col[pseq] >= 0:
                producers.append(pseq)
        producers.sort(reverse=True)
        return choose_dependence_target(
            [sched_col[p] for p in producers],
            [len(act[i]) + len(wtr[i]) for i in range(ns)],
            sched_capacity,
            steer_cur,
        )

    def _classify(
        hseq: int, fseq: int, at: int, blocked: bool,
        cause_col=cause_col, comp_col=comp_col, sel_col=sel_col,
        isload_col=isload_col, prb_col=prb_col, ltc_col=ltc_col,
        lrb_col=lrb_col, SELECT_TO_EXEC=SELECT_TO_EXEC,
        _FRONTEND=_FRONTEND, _RETIRE=_RETIRE, _WINDOW=_WINDOW,
        _LOAD=_LOAD, _CONV=_CONV, _ADDER=_ADDER,
    ):
        """Port of :func:`repro.obs.explain.classify_stall_cycle` over
        columns (rules 2-7; rule 1 — retirement — is handled by callers)."""
        if hseq < 0:
            return _FRONTEND
        if fseq >= 0:
            frontier_cause = cause_col[fseq]
            if frontier_cause is not None:
                return frontier_cause
        head_complete = comp_col[hseq]
        if 0 <= head_complete <= at:
            return _RETIRE
        if blocked:
            return _WINDOW
        if fseq >= 0:
            return _FRONTEND
        head_select = sel_col[hseq]
        if head_select < 0:
            return _FRONTEND
        if isload_col[hseq]:
            return _LOAD
        if (
            prb_col[hseq]
            and ltc_col[hseq] > lrb_col[hseq]
            and at >= head_select + SELECT_TO_EXEC + lrb_col[hseq]
        ):
            return _CONV
        return _ADDER

    # Monotone select-frontier pointer: every seq below fq_head has been
    # dispatched, and an entry leaves its scheduler exactly when it issues
    # (sel_col set), so the frontier — the oldest entry still in any
    # scheduler — is the smallest dispatched seq with no select cycle yet.
    fr_ptr = 0

    def _frontier_seq() -> int:
        nonlocal fr_ptr
        p = fr_ptr
        fq = fq_head
        while p < fq and sel_col[p] >= 0:
            p += 1
        fr_ptr = p
        return p if p < fq else -1

    def _replay_stall_range(
        hseq: int, fseq: int, start: int, stop: int, blocked: bool
    ) -> None:
        """Closed-form replay of [start, stop) stall attribution + sampler
        captures — the column port of machine._replay_stall_range."""
        marks = {start, stop}
        if hseq >= 0:
            complete = comp_col[hseq]
            if complete >= 0 and start < complete < stop:
                marks.add(complete)
            select = sel_col[hseq]
            if select >= 0:
                conversion_edge = select + SELECT_TO_EXEC + lrb_col[hseq]
                if start < conversion_edge < stop:
                    marks.add(conversion_edge)
        points = sorted(marks)
        for segment_start, segment_stop in zip(points, points[1:]):
            cause = _classify(hseq, fseq, segment_start, blocked)
            if sampler is None:
                stall_record(cause, segment_stop - segment_start)
                continue
            position = segment_start
            while position < segment_stop:
                boundary = sampler.next_capture
                if position <= boundary < segment_stop:
                    stall_record(cause, boundary + 1 - position)
                    sampler.capture(boundary)
                    position = boundary + 1
                else:
                    stall_record(cause, segment_stop - position)
                    position = segment_stop

    def no_progress_error() -> "SimulationError":
        return SimulationError(
            f"{config.name} on {program.name}: no retirement progress for "
            f"{progress_window} cycles at cycle {cycle} "
            f"(ROB {rob_tail - rob_head}, schedulers "
            f"{[len(act[i]) + len(wtr[i]) for i in range(ns)]})"
        )

    def budget_error() -> "SimulationError":
        return SimulationError(
            f"{config.name} on {program.name}: exceeded {max_cycles} cycles"
        )

    # ---------------------------------------------------------------------
    # The cycle loop (stage order mirrors the object engine exactly).
    # ---------------------------------------------------------------------
    while True:
        # ---- retire ------------------------------------------------------
        retired = 0
        while retired < retire_width and rob_head < rob_tail:
            complete = comp_col[rob_head]
            if complete < 0 or complete >= cycle:
                break
            rob_head += 1
            retired += 1
        if retired:
            stats.instructions += retired
            last_progress_cycle = cycle

        # ---- select + issue (merged sweep per scheduler) -----------------
        selected_any = False
        for s in range(ns):
            acts = act[s]
            wtrs = wtr[s]
            pend = dirty_cur[s]
            if not acts and not wtrs:
                if pend:
                    del pend[:]  # stale marks: every waiter is gone
                continue
            if finite_min[s] > cycle and not pend:
                continue
            if pend:
                pend.sort()  # cross-scheduler appends arrive unsorted
            cur_s = s
            cur_p = -1
            grants = None
            grant_indices = None
            wait_seqs = None
            wait_indices = None
            newmin = _NEVER
            exhausted = False
            na = len(acts)
            ai = 0
            pi = 0
            while True:
                # len(pend) re-read each step: in-sweep marks insort into
                # the unconsumed tail.
                if pi < len(pend) and (ai >= na or pend[pi] < acts[ai]):
                    e = pend[pi]
                    pi += 1
                    cur_p = e
                    # Marked waiter: inline _quick_update.  A stale mark
                    # (the entry was woken after marking) fails the wait
                    # check and falls out; a duplicate refresh is a no-op.
                    producer = wait_col[e]
                    if producer >= 0 and not wstore_col[e]:
                        inherited = cause_col[producer]
                        if inherited is None:
                            inherited = _LOAD if isload_col[producer] else _ADDER
                        if cause_col[e] is not inherited:
                            cause_col[e] = inherited
                            if haswait_col[e]:
                                _mark_waiters(e)
                    continue
                if ai >= na:
                    break
                e = acts[ai]
                index = ai
                ai += 1
                if exhausted:
                    # Select bandwidth exhausted: probe mode, exactly like
                    # the object scheduler — update sleepy losers, count
                    # the cycle contended at the first ready one.
                    if ntry_col[e] > cycle:
                        continue
                    cur_p = e
                    verdict = _eval(e, cycle)
                    if verdict == cycle:
                        cont_counters[s].value += 1
                        break
                    if verdict >= 0:
                        ntry_col[e] = verdict
                    elif wait_seqs is None:
                        wait_seqs = [e]
                        wait_indices = [index]
                    else:
                        wait_seqs.append(e)
                        wait_indices.append(index)
                    continue
                verdict = ntry_col[e]
                if verdict > cycle:
                    if verdict < newmin:
                        newmin = verdict
                    continue
                cur_p = e
                verdict = _eval(e, cycle)
                if verdict == cycle:
                    if grants is None:
                        grants = [e]
                        grant_indices = [index]
                    else:
                        grants.append(e)
                        grant_indices.append(index)
                        if len(grants) == select_width:
                            exhausted = True
                elif verdict >= 0:
                    ntry_col[e] = verdict
                    if verdict < newmin:
                        newmin = verdict
                elif wait_seqs is None:
                    wait_seqs = [e]
                    wait_indices = [index]
                else:
                    wait_seqs.append(e)
                    wait_indices.append(index)
            if pi < len(pend):
                # Contended break mid-walk: the unvisited marks refresh
                # next cycle (the second half of the old two-cycle mark
                # window — those waiters' object twins re-evaluate then).
                dirty_nxt[s].extend(pend[pi:])
                any_dirty_nxt = True
            del pend[:]
            if wait_seqs is not None:
                # Entries that entered inherit mode mid-sweep migrate to
                # the waiter list (before grants issue, so a same-cycle
                # producer grant can wake them right back).
                if grant_indices is None:
                    removals = wait_indices
                else:
                    removals = sorted(grant_indices + wait_indices)
                for index in reversed(removals):
                    del acts[index]
                for e in wait_seqs:
                    insort(wtrs, e)
            elif grants is not None:
                for index in reversed(grant_indices):
                    del acts[index]
            if grants is not None:
                occ_total -= len(grants)
                sel_counters[s].value += len(grants)
                selected_any = True
                for e in grants:
                    _issue(e, cycle, s)
            elif acts or wtrs:
                # Fruitless full sweep: every finite entry was visited, so
                # ``newmin`` is the exact minimum over finite next-tries
                # (inherit entries sit at _NEVER and fell out) — tighten
                # the wake bound.
                finite_min[s] = newmin

        # ---- rename / dispatch ------------------------------------------
        dispatched = 0
        dispatch_blocked = False
        while dispatched < rename_width and fq_head < seq_count:
            e = fq_head
            if fetchc_col[e] + frontend_depth > cycle:
                break
            if rob_tail - rob_head >= rob_size:
                dispatch_blocked = True
                break
            if dependence_steering:
                target = _dependence_target(e)
                if target is None:
                    dispatch_blocked = True
                    break
            else:
                target = steer_cur
                if len(act[target]) + len(wtr[target]) >= sched_capacity:
                    full_counters[target].value += 1
                    dispatch_blocked = True
                    break
            fq_head += 1
            if steer_ing:
                steer_ing = 0
                steer_cur += 1
                if steer_cur == ns:
                    steer_cur = 0
            else:
                steer_ing = 1
            sched_col[e] = target
            clus_col[e] = cluster_of[target]
            # Rename inlined (hot: once per instruction): resolve
            # dependences, formats, and flattened bypass templates.
            instr = instr_col[e]
            entry = memo.get(id(instr))
            if entry is None:
                entry = build_entry(machine, instr)
                memo[id(instr)] = entry
            _, kind, _, move_reg, variants = entry
            if move_reg >= 0:
                variant = variants[1] if reg_is_rb[move_reg] else variants[0]
            else:
                variant = variants
            (
                produces_rb, lat_rb, lat_tc,
                rbm, rbp, rbf, tcm, tcp, tcf,
                src_pairs, dest,
            ) = variant
            kind_col[e] = kind
            prb_col[e] = produces_rb
            lrb_col[e] = lat_rb
            ltc_col[e] = lat_tc
            isload_col[e] = kind == _K_LOAD
            trbm_col[e] = rbm
            trbp_col[e] = rbp
            trbf_col[e] = rbf
            ttcm_col[e] = tcm
            ttcp_col[e] = tcp
            ttcf_col[e] = tcf
            if src_pairs:
                sources = []
                for reg, wants_tc in src_pairs:
                    producer = last_writer[reg]
                    if producer >= 0:
                        sources.append((producer, wants_tc))
                srcs_col[e] = sources
            address = mem_col[e]
            if kind == _K_LOAD:
                if address is not None:
                    sdep_col[e] = last_store.get(address >> 3, -1)
            elif kind == _K_STORE and address is not None:
                last_store[address >> 3] = e
            if dest >= 0:
                last_writer[dest] = e
                reg_is_rb[dest] = produces_rb
            earliest = cycle + rename_latency
            acts = act[target]
            if (not acts and not wtr[target]) or earliest < finite_min[target]:
                finite_min[target] = earliest
            ntry_col[e] = earliest
            acts.append(e)
            occ_total += 1
            rob_tail += 1
            dispatched += 1

        # ---- fetch -------------------------------------------------------
        if not fetch_misp_stalled and seq_count - fq_head < fetch_queue_capacity:
            n, misp_last = fetch.fetch_into(cycle, instr_col, mem_col)
            if misp_last:
                fetch_misp_stalled = True
            if n:
                # Default-valued columns grow by constant-tuple slices: one
                # C-level extend per column per bundle instead of one
                # append per column per instruction.
                zeros = zeros_src[:n]
                minus_ones = m1_src[:n]
                falses = false_src[:n]
                fetchc_col.extend((cycle,) * n)
                misp_col.extend(falses)
                if misp_last:
                    misp_col[-1] = True
                kind_col.extend(zeros)
                sched_col.extend(minus_ones)
                clus_col.extend(zeros)
                sel_col.extend(minus_ones)
                comp_col.extend(minus_ones)
                prb_col.extend(falses)
                lrb_col.extend(zeros)
                ltc_col.extend(zeros)
                isload_col.extend(falses)
                trbm_col.extend(zeros)
                trbp_col.extend(zeros)
                trbf_col.extend(zeros)
                ttcm_col.extend(zeros)
                ttcp_col.extend(zeros)
                ttcf_col.extend(zeros)
                srcs_col.extend(empty_src[:n])
                sdep_col.extend(minus_ones)
                cause_col.extend(none_src[:n])
                wait_col.extend(minus_ones)
                wstore_col.extend(falses)
                ntry_col.extend(zeros)
                haswait_col.extend(falses)
                seq_count += n

        # ---- occupancy sampling ------------------------------------------
        occ_cnt += 1
        occ_tot += occ_total
        if cycle == occ_next:
            occ_samples.append(occ_total)
            if len(occ_samples) > occ_max:
                occ_samples = occupancy_series.samples = occ_samples[::2]
                occ_stride = occupancy_series.stride = occ_stride * 2
            occ_next = cycle - cycle % occ_stride + occ_stride

        # ---- stall attribution -------------------------------------------
        # Consecutive same-cause cycles are batched into one Distribution
        # record; the pending run is flushed before anything reads the
        # stall counts (sampler captures, the skip replay, run end).
        if retired:
            cause = _BASE
        else:
            # _frontier_seq inlined (hot: every non-retiring cycle).
            p = fr_ptr
            while p < fq_head and sel_col[p] >= 0:
                p += 1
            fr_ptr = p
            cause = _classify(
                rob_head if rob_head < rob_tail else -1,
                p if p < fq_head else -1, cycle, dispatch_blocked,
            )
        if cause is pending_cause:
            pending_count += 1
        else:
            if pending_count:
                # Buffered accumulate (enum identity scan over ~6 keys).
                try:
                    ki = stall_keys.index(pending_cause)
                except ValueError:
                    stall_keys.append(pending_cause)
                    stall_vals.append(pending_count)
                else:
                    stall_vals[ki] += pending_count
            pending_cause = cause
            pending_count = 1

        # ---- interval sampling -------------------------------------------
        if cycle == sampler_next:
            try:
                ki = stall_keys.index(pending_cause)
            except ValueError:
                stall_keys.append(pending_cause)
                stall_vals.append(pending_count)
            else:
                stall_vals[ki] += pending_count
            pending_cause = None
            pending_count = 0
            _flush_bypass()
            _sync_views()
            sampler.capture(cycle)
            sampler_next = sampler.next_capture

        # ---- termination -------------------------------------------------
        if (
            fetch.halted
            and fq_head == seq_count
            and rob_head == rob_tail
            and occ_total == 0
        ):
            if pending_count:
                try:
                    ki = stall_keys.index(pending_cause)
                except ValueError:
                    stall_keys.append(pending_cause)
                    stall_vals.append(pending_count)
                else:
                    stall_vals[ki] += pending_count
                pending_count = 0
            break
        cycle += 1
        if any_dirty_nxt:
            # Rotate: marks made behind a sweep become visible now.
            any_dirty_nxt = False
            for dn, dc in zip(dirty_nxt, dirty_cur):
                if dn:
                    dc.extend(dn)
                    del dn[:]
        if cycle - last_progress_cycle > progress_window:
            raise no_progress_error()
        if cycle > max_cycles:
            raise budget_error()
        if not cycle_skip or retired or selected_any or dispatched:
            continue

        # ---- cycle skipping (event-driven fast-forward) ------------------
        wake = _NEVER
        if rob_head < rob_tail:
            head_complete = comp_col[rob_head]
            if head_complete >= 0:
                wake = head_complete + 1
        for s in range(ns):
            if wtr[s]:
                # An inherit entry mirrors a stall cause the object engine
                # refreshes every cycle; its presence pins the scheduler's
                # wake to "now", exactly like the object entries' rolling
                # next_try = cycle + 1.
                wake = cycle
                break
            if act[s] and finite_min[s] < wake:
                wake = finite_min[s]
        if wake <= cycle:
            continue

        dispatch_wait_blocked = False
        blocked_full_index = -1
        if fq_head < seq_count:
            eligible = fetchc_col[fq_head] + frontend_depth
            if eligible > cycle:
                if eligible < wake:
                    wake = eligible
            elif rob_tail - rob_head >= rob_size:
                dispatch_wait_blocked = True
            elif dependence_steering:
                if _dependence_target(fq_head) is None:
                    dispatch_wait_blocked = True
                else:
                    continue  # dispatch can act this cycle
            else:
                target = steer_cur
                if len(act[target]) + len(wtr[target]) < sched_capacity:
                    continue  # dispatch can act this cycle
                dispatch_wait_blocked = True
                blocked_full_index = target

        fetch_counts = False
        if seq_count - fq_head < fetch_queue_capacity:
            fetch_wake, fetch_counts = fetch.next_event_cycle(cycle)
            if fetch_wake is not None:
                if fetch_wake <= cycle:
                    continue  # fetch can act this cycle
                if fetch_wake < wake:
                    wake = fetch_wake

        if wake <= cycle:
            continue
        stop = min(wake, last_progress_cycle + progress_window + 1, max_cycles + 1)
        span = stop - cycle

        if blocked_full_index >= 0:
            full_counters[blocked_full_index].value += span
        if fetch_counts:
            fetch.note_skipped_stalls(span)
        if occ_cnt:
            occupancy_series.count += occ_cnt
            occupancy_series.total += occ_tot
            occ_cnt = 0
            occ_tot = 0
        occupancy_series.record_run(cycle, stop, occ_total)
        occ_samples = occupancy_series.samples
        occ_stride = occupancy_series.stride
        occ_next = stop + (-stop) % occ_stride
        if pending_count:
            try:
                ki = stall_keys.index(pending_cause)
            except ValueError:
                stall_keys.append(pending_cause)
                stall_vals.append(pending_count)
            else:
                stall_vals[ki] += pending_count
            pending_cause = None
            pending_count = 0
        _flush_bypass()
        if sampler is not None:
            _sync_views()
        _replay_stall_range(
            rob_head if rob_head < rob_tail else -1,
            _frontier_seq(), cycle, stop, dispatch_wait_blocked,
        )
        if sampler is not None:
            sampler_next = sampler.next_capture
        skipped_cycles += span
        cycle = stop
        if any_dirty_nxt:
            # Live marks pin wake to "now" (their waiters sit in wtr), so
            # anything still queued across a skip is stale; rotate it out
            # for the validity check to discard.
            any_dirty_nxt = False
            for dn, dc in zip(dirty_nxt, dirty_cur):
                if dn:
                    dc.extend(dn)
                    del dn[:]
        if cycle - last_progress_cycle > progress_window:
            raise no_progress_error()
        if cycle > max_cycles:
            raise budget_error()

    # ---- end of run ------------------------------------------------------
    _flush_bypass()
    machine.skipped_cycles = skipped_cycles
    stats.cycles = cycle + 1
    stats.branches = fetch.branches
    stats.mispredictions = fetch.mispredictions
    stats.fetch_stall_cycles = fetch.fetch_stall_cycles
    stats.dcache_hits = hierarchy.dcache.hits
    stats.dcache_misses = hierarchy.dcache.misses
    stats.icache_misses = hierarchy.icache.misses
    stats.l2_misses = hierarchy.l2.misses
    if occ_cnt:
        occupancy_series.count += occ_cnt
        occupancy_series.total += occ_tot
    stats.scheduler_occupancy_samples = occupancy_series.count
    stats.scheduler_occupancy_sum = occupancy_series.total
    if sampler is not None:
        _sync_views()
        stats.timeline = sampler.finalize(cycle)
    log.debug(
        "finished %s on %s (soa): %d instructions in %d cycles (IPC %.3f)",
        config.name, program.name, stats.instructions, stats.cycles, stats.ipc,
    )
    return stats


# Batched lockstep simulation: N configs over one decoded program, sharing
# the fetch probe, rename plans, and steering columns (repro.core.batch).
# Imported at the bottom because batch.py reuses this module's kind codes
# and static-entry memoization at call time.
from repro.core.batch import batchable, run_soa_batch  # noqa: E402,F401
