"""Simulation statistics: everything the paper's figures report.

* IPC (Figs. 9-12, 14);
* the four bypass cases of Fig. 13 (which format was forwarded to which
  kind of consumer, for the last-arriving bypassed source);
* bypass-level usage (§5.2: none / first level / other level);
* branch prediction, cache, and occupancy counters for diagnostics.

Backed by :class:`repro.obs.metrics.MetricsRegistry`: the Fig. 13 / §5.2
distributions, the per-level bypass histogram, the scheduler occupancy
time-series, and the per-scheduler counters all live in
``SimStats.metrics`` and serialize generically through
:meth:`SimStats.to_dict` / :meth:`SimStats.from_dict` — adding a counter
anywhere in the machine no longer requires touching persistence code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields

from repro.obs.explain import CPI_STACK_METRIC, CPIStack, StallCause
from repro.obs.metrics import MetricsRegistry
from repro.utils.stats import Distribution

#: Sampling stride (cycles) for the scheduler-occupancy time-series.
OCCUPANCY_STRIDE = 64


class BypassCase(enum.Enum):
    """Fig. 13's four forwarding cases (producer format -> consumer kind)."""

    TC_TO_TC = "TC result to TC operation"
    TC_TO_RB = "TC result to RB operation"
    RB_TO_RB = "RB result to RB operation"
    RB_TO_TC = "RB result to TC operation (format conversion)"


class BypassLevelUse(enum.Enum):
    """§5.2's per-instruction source-delivery buckets."""

    NONE = "no source off the bypass network"
    FIRST_LEVEL = "a source from the first-level bypass"
    OTHER_LEVEL = "a source from another bypass level"


@dataclass
class SimStats:
    """Counters filled in by one simulation run."""

    machine: str = ""
    workload: str = ""

    cycles: int = 0
    instructions: int = 0

    branches: int = 0
    mispredictions: int = 0
    fetch_stall_cycles: int = 0

    dcache_hits: int = 0
    dcache_misses: int = 0
    icache_misses: int = 0
    l2_misses: int = 0

    #: bypassed sources that crossed the cluster boundary (8-wide machines)
    cross_cluster_bypasses: int = 0
    #: all bypassed sources observed (denominator for the above)
    bypassed_sources: int = 0
    #: Fig. 13 top number: instructions with >= 1 bypassed source.
    instructions_with_bypass: int = 0

    #: Exact whole-run occupancy accumulators (kept as plain scalars for
    #: back-compat; mirrored from the registry's sampled time-series).
    scheduler_occupancy_samples: int = 0
    scheduler_occupancy_sum: int = 0

    #: Everything else: distributions, histograms, time-series, counters.
    metrics: MetricsRegistry = field(
        default_factory=MetricsRegistry, repr=False, compare=False
    )

    #: Fig. 13: last-arriving bypassed source cases (registry-backed).
    bypass_cases: Distribution = field(init=False, repr=False, compare=False)
    #: §5.2 buckets over all retired instructions (registry-backed).
    bypass_levels: Distribution = field(init=False, repr=False, compare=False)
    #: Per-cycle stall attribution (one StallCause per simulated cycle).
    stall_causes: Distribution = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.bypass_cases = self.metrics.distribution("bypass.cases", keys=BypassCase)
        self.bypass_levels = self.metrics.distribution("bypass.levels", keys=BypassLevelUse)
        self.stall_causes = self.metrics.distribution(CPI_STACK_METRIC, keys=StallCause)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def dcache_hit_rate(self) -> float:
        total = self.dcache_hits + self.dcache_misses
        return self.dcache_hits / total if total else 0.0

    def cross_cluster_fraction(self) -> float:
        """Fraction of bypassed sources forwarded across clusters."""
        if not self.bypassed_sources:
            return 0.0
        return self.cross_cluster_bypasses / self.bypassed_sources

    def conversion_bypass_fraction(self) -> float:
        """Fig. 13's bottom number: fraction of bypasses needing RB -> TC."""
        return self.bypass_cases.fraction(BypassCase.RB_TO_TC)

    def bypassed_instruction_fraction(self) -> float:
        """Fig. 13's top number."""
        if not self.instructions:
            return 0.0
        return self.instructions_with_bypass / self.instructions

    def cpi_stack(self) -> CPIStack:
        """The run's CPI stack (see :mod:`repro.obs.explain`)."""
        return CPIStack.from_stats(self)

    def mean_scheduler_occupancy(self) -> float:
        if not self.scheduler_occupancy_samples:
            return 0.0
        return self.scheduler_occupancy_sum / self.scheduler_occupancy_samples

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot: scalar dataclass fields + the registry.

        The scalar list is derived by introspection, so new counters
        added to the dataclass (or recorded into ``metrics``) persist
        without touching this method.
        """
        entry: dict = {}
        for spec in fields(self):
            if spec.name == "metrics" or not spec.init:
                continue
            entry[spec.name] = getattr(self, spec.name)
        entry["metrics"] = self.metrics.as_dict()
        return entry

    @classmethod
    def from_dict(cls, entry: dict) -> "SimStats":
        """Rebuild from :meth:`to_dict` output.

        Distribution keys decode through the enum classes this class
        registers in ``__post_init__``; scalar fields absent from the
        entry keep their defaults (forward compatibility for newly added
        counters).
        """
        stats = cls()
        for spec in fields(cls):
            if spec.name == "metrics" or not spec.init:
                continue
            if spec.name in entry:
                setattr(stats, spec.name, entry[spec.name])
        stats.metrics.load(entry.get("metrics", {}))
        if "timeline" in entry:
            # The interval time-series travels as a sibling key next to
            # the SimStats fields (the cache and the pool boundary embed
            # it there); reattach it as the same dynamic attribute
            # Machine.run uses, keeping it out of the dataclass schema.
            from repro.obs.timeline import Timeline

            stats.timeline = Timeline.from_dict(entry["timeline"])
        return stats

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"{self.machine} on {self.workload}:",
            f"  IPC {self.ipc:.3f} ({self.instructions} instructions, {self.cycles} cycles)",
            f"  branch mispredict {self.misprediction_rate:.2%} "
            f"({self.mispredictions}/{self.branches})",
            f"  D-cache hit rate {self.dcache_hit_rate:.2%}",
        ]
        if self.bypass_cases.total:
            lines.append(
                f"  bypassed-instr fraction {self.bypassed_instruction_fraction():.2%}, "
                f"RB->TC conversions {self.conversion_bypass_fraction():.2%} of bypasses"
            )
        return "\n".join(lines)
