"""In-flight instruction records and the reorder buffer."""

from __future__ import annotations

from collections import deque

from repro.backend.bypass import AvailabilityTemplate
from repro.backend.formats import DataFormat
from repro.isa.instruction import Instruction
from repro.isa.semantics import ExecResult


class DynInstr:
    """One dynamic (in-flight) instruction.

    Producer-side timing lives here: once selected, ``select_cycle`` plus
    the per-consumer-format availability templates define when dependents
    can go (the Fig. 8 shift register).  ``lat_rb`` / ``lat_tc`` record the
    underlying execution latencies so statistics can tell a bypass level
    from a register-file read.
    """

    __slots__ = (
        "seq", "instr", "result", "fetch_cycle", "mispredicted",
        "scheduler", "cluster", "insert_cycle",
        "select_cycle", "complete_cycle", "retire_cycle",
        "produces_rb", "templates", "tmpl_rb", "tmpl_tc", "lat_rb", "lat_tc",
        "sources", "store_dep", "is_load_producer",
        "rename_cycle", "stall_cause",
    )

    def __init__(
        self,
        seq: int,
        instr: Instruction,
        result: ExecResult,
        fetch_cycle: int,
        mispredicted: bool,
    ) -> None:
        self.seq = seq
        self.instr = instr
        self.result = result
        self.fetch_cycle = fetch_cycle
        self.mispredicted = mispredicted

        self.scheduler = -1
        self.cluster = 0
        self.insert_cycle = -1
        self.rename_cycle = -1
        self.select_cycle: int | None = None
        self.complete_cycle: int | None = None
        self.retire_cycle: int | None = None

        self.produces_rb = False
        self.templates: dict[DataFormat, AvailabilityTemplate] | None = None
        # Per-consumer-format templates flattened to attributes: the
        # scheduler's readiness callback runs once per candidate source per
        # cycle, and an attribute load is much cheaper than an enum-keyed
        # dict lookup.  Kept in sync with ``templates`` by set_templates().
        self.tmpl_rb: AvailabilityTemplate | None = None
        self.tmpl_tc: AvailabilityTemplate | None = None
        self.lat_rb = 0
        self.lat_tc = 0

        # (producer, format-the-consumer-reads-in) per register source with
        # a real in-flight producer dependence.
        self.sources: list[tuple["DynInstr", DataFormat]] = []
        self.store_dep: "DynInstr | None" = None
        # ``instr.spec.is_load`` flattened for the readiness hot loop.
        self.is_load_producer = False

        # Why the scheduler most recently refused this instruction (a
        # StallCause, set by the readiness callback; None once ready).
        self.stall_cause = None

    def set_templates(
        self, templates: dict[DataFormat, AvailabilityTemplate] | None
    ) -> None:
        """Install availability templates, mirroring them to attributes."""
        self.templates = templates
        if templates is None:
            self.tmpl_rb = self.tmpl_tc = None
        else:
            self.tmpl_rb = templates[DataFormat.RB]
            self.tmpl_tc = templates[DataFormat.TC]

    def __repr__(self) -> str:
        return f"DynInstr(#{self.seq} {self.instr!r} sel={self.select_cycle})"


class ReorderBuffer:
    """Bounded in-order retirement window."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ROB capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: deque[DynInstr] = deque()
        self.retired = 0

    def has_room(self) -> bool:
        return len(self._entries) < self.capacity

    def push(self, record: DynInstr) -> None:
        if not self.has_room():
            raise RuntimeError("ROB overflow")
        self._entries.append(record)

    def retire_ready(self, cycle: int, width: int) -> list[DynInstr]:
        """Retire up to ``width`` completed instructions, oldest first.

        An instruction retires the cycle after its write-back completes.
        """
        retired: list[DynInstr] = []
        while (
            len(retired) < width
            and self._entries
            and self._entries[0].complete_cycle is not None
            and self._entries[0].complete_cycle < cycle
        ):
            retired.append(self._entries.popleft())
        self.retired += len(retired)
        return retired

    @property
    def head(self) -> DynInstr | None:
        """The oldest unretired instruction (None when empty)."""
        return self._entries[0] if self._entries else None

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
