"""The out-of-order execution-core simulator (paper Sections 4-5).

:class:`~repro.core.machine.Machine` ties the substrates together: the
fetch unit drives the correct path through the hybrid predictor and
I-cache; rename steers groups of two instructions round-robin into
select-2 schedulers; the wakeup logic evaluates each source against its
producer's availability template (full or limited bypass, with holes);
loads walk the cache hierarchy; retirement drains the ROB in order.

:mod:`~repro.core.presets` builds the paper's eight machines (Baseline /
RB-limited / RB-full / Ideal at 4- and 8-wide) and the Fig. 14
limited-bypass variants of the Ideal machine.
"""

from repro.core.config import MachineConfig
from repro.core.machine import Machine, simulate
from repro.core.presets import (
    all_paper_machines,
    baseline,
    ideal,
    ideal_limited,
    rb_full,
    rb_limited,
)
from repro.core.statistics import BypassCase, SimStats

__all__ = [
    "MachineConfig",
    "Machine",
    "simulate",
    "SimStats",
    "BypassCase",
    "baseline",
    "rb_limited",
    "rb_full",
    "ideal",
    "ideal_limited",
    "all_paper_machines",
]
