"""The service's job queue: submission, coalescing, and batch formation.

Jobs are keyed by ``(machine-config name, workload)`` — the same identity
the result cache uses — so a request that duplicates work already queued
or in flight *coalesces* onto the existing job instead of simulating
twice: both requests await the same :class:`asyncio.Future`.  The queue
hands the dispatcher batches (up to ``max_batch`` jobs, gathered for a
short window so near-simultaneous requests share one process-pool
dispatch) and exposes its depth as a gauge.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.core.config import MachineConfig
from repro.harness.runner import SimJob
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceContext, Tracer


@dataclass
class QueuedJob:
    """One unit of queued simulation work plus its completion future."""

    config: MachineConfig
    workload: str
    future: asyncio.Future = field(repr=False)
    #: queue-assigned identity, unique per service instance — the handle
    #: behind GET /jobs/<id> and /jobs/<id>/stream (0 = not yet assigned)
    job_id: int = 0
    #: requests waiting on this job (1 + coalesced duplicates)
    waiters: int = 1
    #: dispatch attempts so far (filled in by the dispatcher)
    attempts: int = 0
    #: "serve.job" span covering submit -> resolve (tracing enabled only)
    job_span: Span | None = field(default=None, repr=False)
    #: "serve.queue" span covering submit -> batch drain
    queue_span: Span | None = field(default=None, repr=False)

    @property
    def key(self) -> tuple[str, str]:
        return (self.config.name, self.workload)

    def sim_job(
        self, trace: TraceContext | None = None, row_sink=None
    ) -> SimJob:
        return SimJob(self.config, self.workload, trace=trace, row_sink=row_sink)


class JobQueue:
    """Asyncio job queue with duplicate coalescing and batch draining."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self._submitted = self.metrics.counter("serve.jobs.submitted")
        self._coalesced = self.metrics.counter("serve.jobs.coalesced")
        self._completed = self.metrics.counter("serve.jobs.completed")
        self._failed = self.metrics.counter("serve.jobs.failed")
        self._depth = self.metrics.gauge("serve.queue.depth")
        self._in_flight = self.metrics.gauge("serve.jobs.in_flight")
        self._pending: list[QueuedJob] = []
        #: every live job (queued or dispatched), by key — the coalescing map
        self._active: dict[tuple[str, str], QueuedJob] = {}
        self._has_pending = asyncio.Event()
        self._job_seq = 0

    # -- submission --------------------------------------------------------

    def is_live(self, key: tuple[str, str]) -> bool:
        """True when a job with this key is queued or in flight."""
        live = self._active.get(key)
        return live is not None and not live.future.done()

    def submit(
        self,
        config: MachineConfig,
        workload: str,
        parent: TraceContext | None = None,
    ) -> QueuedJob:
        """Enqueue one job, coalescing onto a live duplicate if present.

        ``parent`` is the submitting request's trace context; with a
        tracer attached, a new job opens a ``serve.job`` span (ended at
        resolve/fail) plus a ``serve.queue`` span (ended at batch drain),
        while a coalesced duplicate records the second request's trace id
        in the live job's ``linked_traces`` attribute instead.
        """
        key = (config.name, workload)
        live = self._active.get(key)
        if live is not None and not live.future.done():
            live.waiters += 1
            self._coalesced.inc()
            if parent is not None and live.job_span is not None:
                linked = live.job_span.attributes.setdefault("linked_traces", [])
                if parent.trace_id not in linked:
                    linked.append(parent.trace_id)
            return live
        self._job_seq += 1
        job = QueuedJob(
            config=config,
            workload=workload,
            future=asyncio.get_running_loop().create_future(),
            job_id=self._job_seq,
        )
        if self.tracer is not None:
            job.job_span = self.tracer.start(
                "serve.job", parent=parent,
                attributes={"machine": config.name, "workload": workload},
            )
            job.queue_span = self.tracer.start(
                "serve.queue", parent=job.job_span.context
            )
        self._active[key] = job
        self._pending.append(job)
        self._submitted.inc()
        self._depth.set(len(self._pending))
        self._has_pending.set()
        return job

    # -- batch draining (dispatcher side) ----------------------------------

    async def next_batch(self, max_batch: int, window: float) -> list[QueuedJob]:
        """Wait for work, gather it for ``window`` seconds, drain a batch."""
        await self._has_pending.wait()
        if window > 0 and len(self._pending) < max_batch:
            await asyncio.sleep(window)
        batch = self._pending[:max_batch]
        del self._pending[:len(batch)]
        if not self._pending:
            self._has_pending.clear()
        self._depth.set(len(self._pending))
        self._in_flight.set(len(batch))
        if self.tracer is not None:
            for job in batch:
                if job.queue_span is not None:
                    self.tracer.end(job.queue_span, batch_size=len(batch))
                    job.queue_span = None
        return batch

    def resolve(self, job: QueuedJob, result: object) -> None:
        """Complete a job successfully and retire it from the live map."""
        if not job.future.done():
            job.future.set_result(result)
        self._completed.inc()
        self._end_job_span(job, ok=True)
        self._retire(job)

    def fail(self, job: QueuedJob, error: BaseException) -> None:
        """Complete a job with an error and retire it from the live map."""
        if not job.future.done():
            job.future.set_exception(error)
        self._failed.inc()
        self._end_job_span(job, ok=False, error=repr(error))
        self._retire(job)

    def _end_job_span(self, job: QueuedJob, **attributes: object) -> None:
        if self.tracer is None or job.job_span is None:
            return
        # A job failed before dispatch still has an open queue span.
        if job.queue_span is not None:
            self.tracer.end(job.queue_span)
            job.queue_span = None
        self.tracer.end(job.job_span, attempts=job.attempts, **attributes)
        job.job_span = None

    def _retire(self, job: QueuedJob) -> None:
        if self._active.get(job.key) is job:
            del self._active[job.key]
        self._in_flight.set(max(0, self._in_flight.value - 1))

    # -- introspection -----------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs queued but not yet dispatched."""
        return len(self._pending)

    @property
    def live(self) -> int:
        """Jobs queued or in flight."""
        return len(self._active)
