"""The service's job queue: submission, coalescing, and batch formation.

Jobs are keyed by ``(machine-config name, workload)`` — the same identity
the result cache uses — so a request that duplicates work already queued
or in flight *coalesces* onto the existing job instead of simulating
twice: both requests await the same :class:`asyncio.Future`.  The queue
hands the dispatcher batches (up to ``max_batch`` jobs, gathered for a
short window so near-simultaneous requests share one process-pool
dispatch) and exposes its depth as a gauge.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.core.config import MachineConfig
from repro.harness.runner import SimJob
from repro.obs.metrics import MetricsRegistry


@dataclass
class QueuedJob:
    """One unit of queued simulation work plus its completion future."""

    config: MachineConfig
    workload: str
    future: asyncio.Future = field(repr=False)
    #: requests waiting on this job (1 + coalesced duplicates)
    waiters: int = 1
    #: dispatch attempts so far (filled in by the dispatcher)
    attempts: int = 0

    @property
    def key(self) -> tuple[str, str]:
        return (self.config.name, self.workload)

    def sim_job(self) -> SimJob:
        return SimJob(self.config, self.workload)


class JobQueue:
    """Asyncio job queue with duplicate coalescing and batch draining."""

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._submitted = self.metrics.counter("serve.jobs.submitted")
        self._coalesced = self.metrics.counter("serve.jobs.coalesced")
        self._completed = self.metrics.counter("serve.jobs.completed")
        self._failed = self.metrics.counter("serve.jobs.failed")
        self._depth = self.metrics.gauge("serve.queue.depth")
        self._in_flight = self.metrics.gauge("serve.jobs.in_flight")
        self._pending: list[QueuedJob] = []
        #: every live job (queued or dispatched), by key — the coalescing map
        self._active: dict[tuple[str, str], QueuedJob] = {}
        self._has_pending = asyncio.Event()

    # -- submission --------------------------------------------------------

    def is_live(self, key: tuple[str, str]) -> bool:
        """True when a job with this key is queued or in flight."""
        live = self._active.get(key)
        return live is not None and not live.future.done()

    def submit(self, config: MachineConfig, workload: str) -> QueuedJob:
        """Enqueue one job, coalescing onto a live duplicate if present."""
        key = (config.name, workload)
        live = self._active.get(key)
        if live is not None and not live.future.done():
            live.waiters += 1
            self._coalesced.inc()
            return live
        job = QueuedJob(
            config=config,
            workload=workload,
            future=asyncio.get_running_loop().create_future(),
        )
        self._active[key] = job
        self._pending.append(job)
        self._submitted.inc()
        self._depth.set(len(self._pending))
        self._has_pending.set()
        return job

    # -- batch draining (dispatcher side) ----------------------------------

    async def next_batch(self, max_batch: int, window: float) -> list[QueuedJob]:
        """Wait for work, gather it for ``window`` seconds, drain a batch."""
        await self._has_pending.wait()
        if window > 0 and len(self._pending) < max_batch:
            await asyncio.sleep(window)
        batch = self._pending[:max_batch]
        del self._pending[:len(batch)]
        if not self._pending:
            self._has_pending.clear()
        self._depth.set(len(self._pending))
        self._in_flight.set(len(batch))
        return batch

    def resolve(self, job: QueuedJob, result: object) -> None:
        """Complete a job successfully and retire it from the live map."""
        if not job.future.done():
            job.future.set_result(result)
        self._completed.inc()
        self._retire(job)

    def fail(self, job: QueuedJob, error: BaseException) -> None:
        """Complete a job with an error and retire it from the live map."""
        if not job.future.done():
            job.future.set_exception(error)
        self._failed.inc()
        self._retire(job)

    def _retire(self, job: QueuedJob) -> None:
        if self._active.get(job.key) is job:
            del self._active[job.key]
        self._in_flight.set(max(0, self._in_flight.value - 1))

    # -- introspection -----------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs queued but not yet dispatched."""
        return len(self._pending)

    @property
    def live(self) -> int:
        """Jobs queued or in flight."""
        return len(self._active)
