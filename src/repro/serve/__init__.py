"""``repro.serve`` — the fault-tolerant batch-simulation service.

A long-lived asyncio service that accepts (machine, workload,
config-override) jobs over a local HTTP/JSON API, coalesces duplicate
requests, batches work onto the process-pool runner with per-batch
timeouts and bounded retry, degrades to serial execution when the pool
is unhealthy, and answers repeat traffic from the sharded result cache.
See ``DESIGN.md`` §10 and the README's *Serving* section.
"""

from repro.serve.batch import (
    HEALTH_DEGRADED,
    HEALTH_OK,
    BatchDispatcher,
    ServiceEvents,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.queue import JobQueue, QueuedJob
from repro.serve.server import (
    MAX_JOBS_PER_REQUEST,
    SERVE_VERSION,
    BadRequest,
    ServeConfig,
    SimulationService,
    run_service,
)

__all__ = [
    "HEALTH_DEGRADED",
    "HEALTH_OK",
    "BatchDispatcher",
    "ServiceEvents",
    "ServeClient",
    "ServeError",
    "JobQueue",
    "QueuedJob",
    "MAX_JOBS_PER_REQUEST",
    "SERVE_VERSION",
    "BadRequest",
    "ServeConfig",
    "SimulationService",
    "run_service",
]
