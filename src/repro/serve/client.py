"""A small blocking client for the ``repro serve`` HTTP/JSON API.

Stdlib-only (:mod:`http.client`), used by the end-to-end tests and as
the reference for talking to the service from scripts::

    from repro.serve.client import ServeClient

    client = ServeClient("127.0.0.1", 8321)
    reply = client.submit([{"machine": "ideal", "workload": "ijpeg", "width": 4}])
    print(reply["results"][0]["ipc"])
"""

from __future__ import annotations

import http.client
import json


class ServeError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: object) -> None:
        super().__init__(f"HTTP {status}: {payload!r}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Blocking JSON-over-HTTP client for one service instance."""

    def __init__(self, host: str, port: int, timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = raw.decode("latin1")
            if response.status >= 300:
                raise ServeError(response.status, decoded)
            return decoded
        finally:
            connection.close()

    # -- API calls ---------------------------------------------------------

    def submit(self, jobs: list[dict]) -> dict:
        """POST /jobs: simulate a batch; blocks until the reply arrives."""
        return self._request("POST", "/jobs", {"jobs": jobs})

    def submit_async(self, jobs: list[dict]) -> dict:
        """POST /jobs with ``"wait": false``: returns job ids immediately.

        The reply's ``jobs`` array carries one ``job_id`` (and stream
        URL) per submitted job; follow progress with :meth:`stream`.
        """
        return self._request("POST", "/jobs", {"jobs": jobs, "wait": False})

    def job_status(self, job_id: int) -> dict:
        """GET /jobs/<id>: one job's stream status."""
        return self._request("GET", f"/jobs/{job_id}")

    def stream(self, job_id: int):
        """GET /jobs/<id>/stream: yield SSE events until the job ends.

        A generator of event dicts (each carries ``event`` and ``seq``
        plus the event's payload); heartbeat comments are skipped.  The
        final yielded event is the terminal ``done``/``failed``.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/jobs/{job_id}/stream")
            response = connection.getresponse()
            if response.status >= 300:
                raw = response.read()
                try:
                    decoded = json.loads(raw.decode() or "null")
                except (UnicodeDecodeError, json.JSONDecodeError):
                    decoded = raw.decode("latin1")
                raise ServeError(response.status, decoded)
            data_lines: list[str] = []
            while True:
                line = response.readline()
                if not line:  # server closed: stream over
                    return
                text = line.decode().rstrip("\r\n")
                if not text:  # blank line terminates one SSE frame
                    if data_lines:
                        yield json.loads("\n".join(data_lines))
                        data_lines = []
                    continue
                if text.startswith(":"):  # heartbeat comment
                    continue
                field_name, _, value = text.partition(":")
                if field_name == "data":
                    data_lines.append(value.lstrip(" "))
        finally:
            connection.close()

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """GET /metrics?format=prometheus: text exposition format."""
        return self._request("GET", "/metrics?format=prometheus")

    def events(self) -> dict:
        return self._request("GET", "/events")

    def traces(self) -> dict:
        """GET /trace: ids of every trace the service has recorded."""
        return self._request("GET", "/trace")

    def trace(self, trace_id: str, format: str | None = None) -> dict:
        """GET /trace/<id>: one request's span tree (``format="chrome"``
        for a Chrome ``trace_event`` document)."""
        path = f"/trace/{trace_id}"
        if format is not None:
            path += f"?format={format}"
        return self._request("GET", path)
