"""The ``repro serve`` HTTP/JSON batch-simulation service.

A small asyncio HTTP server (stdlib only — the container has no web
framework, and none is needed for a line-protocol this simple) exposing:

``POST /jobs``
    Submit a batch of (machine, workload, config-override) jobs; the
    response carries per-job results once every job completes, fails, or
    the request timeout expires.  Duplicate jobs — inside one request or
    across concurrent requests — are coalesced onto one simulation.
``GET /healthz``
    Liveness + pool health: ``ok`` or ``degraded``, with the transition
    history (so a probe can see *degraded-then-recovered*, not just the
    current state) and queue depth.
``GET /metrics``
    The service and runner metrics registries (counters, gauges) as JSON,
    or Prometheus text exposition with ``?format=prometheus``.
``GET /events``
    The newest service-plane events (requests, batches, retries, health
    transitions) from the event bus.
``GET /trace`` / ``GET /trace/<trace_id>``
    Distributed-tracing spans: every ``/jobs`` response carries a
    ``trace_id`` whose span tree (request -> job -> queue/dispatch ->
    pool worker -> machine run) is served here, as the span-list export
    or as Chrome ``trace_event`` JSON with ``?format=chrome``.
``GET /jobs/<id>`` / ``GET /jobs/<id>/stream``
    Per-job status and a live Server-Sent-Events stream.  A ``POST
    /jobs`` with ``"wait": false`` returns immediately with one
    ``job_id`` per job; the stream endpoint replays that job's buffered
    events (dispatch lifecycle, interval-timeline rows) and follows new
    ones until the terminal ``done``/``failed`` event.  ``repro watch``
    is the reference client.

Results are served from — and new results persisted to — the sharded
:class:`~repro.harness.runner.ResultCache`, so a restarted service
answers repeat traffic without re-simulating.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path

from urllib.parse import parse_qs

from repro.core.config import MachineConfig
from repro.core.presets import resolve_machine
from repro.harness.runner import SimulationRunner
from repro.obs.events import EventBus
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, prometheus_text
from repro.obs.trace import Tracer, export_chrome, export_spans
from repro.serve.batch import BatchDispatcher, ServiceEvents
from repro.serve.queue import JobQueue, QueuedJob
from repro.serve.stream import JobStream, JobStreams

log = get_logger(__name__)

#: Version stamped into every /jobs response (see schemas/serve.schema.json).
SERVE_VERSION = 1

#: Hard cap on jobs per request: a single request cannot monopolise the
#: queue (submit several requests instead; duplicates coalesce anyway).
MAX_JOBS_PER_REQUEST = 64

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    504: "Gateway Timeout",
}


class BadRequest(ValueError):
    """A request the service refuses, with a client-facing message."""


@dataclass
class _EventStream:
    """Sentinel payload: tells the connection handler to switch to SSE."""

    stream: JobStream


def _consume_exception(future: asyncio.Future) -> None:
    """Observe a deferred job future's exception (the stream reports it)."""
    if not future.cancelled():
        future.exception()


@dataclass
class ServeConfig:
    """Everything tunable about one service instance."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = pick an ephemeral port
    cache_dir: Path | str | None = None  # None = .repro_cache/serve under the repo
    cache_shards: int = 16
    pool_jobs: int = 2
    max_batch: int = 8
    batch_window: float = 0.05
    job_timeout: float = 300.0
    max_retries: int = 3
    backoff_base: float = 0.1
    backoff_cap: float = 2.0
    request_timeout: float = 600.0
    event_buffer: int = 4096
    default_width: int = 4
    sse_heartbeat: float = 15.0


def _parse_job(entry: object, index: int, default_width: int) -> tuple[MachineConfig, str]:
    """Validate one request job entry -> (config, workload)."""
    if not isinstance(entry, dict):
        raise BadRequest(f"jobs[{index}]: expected an object, got {type(entry).__name__}")
    unknown = set(entry) - {"machine", "workload", "width", "steering"}
    if unknown:
        raise BadRequest(f"jobs[{index}]: unknown fields {sorted(unknown)}")
    machine = entry.get("machine")
    workload = entry.get("workload")
    if not isinstance(machine, str) or not machine:
        raise BadRequest(f"jobs[{index}].machine: expected a machine name string")
    if not isinstance(workload, str) or not workload:
        raise BadRequest(f"jobs[{index}].workload: expected a workload name string")
    width = entry.get("width", default_width)
    if width not in (4, 8):
        raise BadRequest(f"jobs[{index}].width: expected 4 or 8, got {width!r}")
    steering = entry.get("steering")
    if steering is not None and steering not in ("round_robin", "dependence"):
        raise BadRequest(
            f"jobs[{index}].steering: expected round_robin or dependence, got {steering!r}"
        )
    try:
        config = resolve_machine(machine, width, steering=steering)
    except ValueError as exc:
        raise BadRequest(f"jobs[{index}]: {exc}") from None
    return config, workload


class SimulationService:
    """One service instance: queue + dispatcher + HTTP frontend."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.metrics = MetricsRegistry()
        self.bus = EventBus(capacity=self.config.event_buffer)
        self.events = ServiceEvents(self.bus)
        self.tracer = Tracer(bus=self.bus)
        cache_dir = self.config.cache_dir
        if cache_dir is None:
            cache_dir = Path(__file__).resolve().parents[3] / ".repro_cache" / "serve"
        self.runner = SimulationRunner(
            cache_path=cache_dir, shards=self.config.cache_shards,
            tracer=self.tracer,
        )
        self.queue = JobQueue(self.metrics, tracer=self.tracer)
        self.dispatcher = BatchDispatcher(
            self.runner, self.queue, self.metrics, self.events, self.tracer,
            pool_jobs=self.config.pool_jobs,
            max_batch=self.config.max_batch,
            batch_window=self.config.batch_window,
            job_timeout=self.config.job_timeout,
            max_retries=self.config.max_retries,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
        )
        self.streams = JobStreams()
        self.dispatcher.job_listener = self._on_job_event
        self._requests = self.metrics.counter("serve.requests")
        self._bad_requests = self.metrics.counter("serve.requests.bad")
        self._request_seq = 0
        self._server: asyncio.AbstractServer | None = None
        self._dispatch_task: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self.streams.bind_loop(asyncio.get_running_loop())
        self._dispatch_task = asyncio.create_task(
            self.dispatcher.run(), name="repro-serve-dispatch"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        log.info("repro serve listening on %s:%d", self.config.host, self.port)
        self.events.emit("service:start", port=self.port)

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        self.events.emit("service:stop")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            try:
                await self._dispatch_task
            except asyncio.CancelledError:
                pass
        self.runner.flush()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- job streaming -----------------------------------------------------

    def _on_job_event(self, job: QueuedJob, event: str, **data: object) -> None:
        """The dispatcher's ``job_listener``: route lifecycle into streams.

        ``dispatch``/``retry``/``done``/``failed`` arrive on the event
        loop; ``row`` arrives on the runner's worker thread.  Both are
        safe — :class:`JobStreams` marshals every mutation onto the loop.
        """
        if event == "done":
            stats = data.pop("stats")
            summary = {
                "machine": job.config.name,
                "workload": job.workload,
                "cycles": stats.cycles,
                "instructions": stats.instructions,
                "ipc": round(stats.ipc, 6),
                "attempts": job.attempts,
            }
            timeline = getattr(stats, "timeline", None)
            rows = None
            if timeline is not None:
                rows = [row.to_dict() for row in timeline.rows]
            self.streams.finish(job.job_id, True, summary, rows)
        elif event == "failed":
            self.streams.finish(job.job_id, False, {
                "machine": job.config.name,
                "workload": job.workload,
                **data,
            })
        else:
            self.streams.publish(job.job_id, event, **data)

    async def _write_sse(
        self, writer: asyncio.StreamWriter, stream: JobStream
    ) -> None:
        """Serve one SSE subscription: replay the buffer, follow to done."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        try:
            await writer.drain()
            async for event in stream.follow(self.config.sse_heartbeat):
                if event is None:
                    writer.write(b": ping\r\n\r\n")
                else:
                    frame = (
                        f"event: {event['event']}\n"
                        f"data: {json.dumps(event)}\n\n"
                    )
                    writer.write(frame.encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            log.info("stream subscriber for job %d disconnected", stream.job_id)

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            status, payload = await self._route(method, path, body)
        except BadRequest as exc:
            self._bad_requests.inc()
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # the service must outlive any request
            log.error("request handling failed: %r", exc)
            status, payload = 500, {"error": repr(exc)}
        try:
            if isinstance(payload, _EventStream):
                await self._write_sse(writer, payload.stream)
                return
            if isinstance(payload, str):
                # Text responses (Prometheus exposition format 0.0.4).
                body_bytes = payload.encode()
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body_bytes = json.dumps(payload, indent=2).encode() + b"\n"
                content_type = "application/json"
            writer.write(
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body_bytes)}\r\n"
                f"Connection: close\r\n\r\n".encode() + body_bytes
            )
            await writer.drain()
        finally:
            writer.close()

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin1").split()
        if len(parts) < 2:
            raise BadRequest(f"malformed request line {line!r}")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise BadRequest(f"bad Content-Length {value.strip()!r}") from None
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict | str]:
        self._requests.inc()
        path, _, query = path.partition("?")
        params = parse_qs(query)
        if path in ("/jobs", "/simulate"):
            if method != "POST":
                return 405, {"error": f"{path} requires POST"}
            return await self._handle_jobs(body)
        if method != "GET":
            return 405, {"error": f"{path} requires GET"}
        if path == "/healthz":
            return 200, self.healthz_payload()
        if path == "/metrics":
            fmt = params.get("format", ["json"])[0]
            if fmt == "prometheus":
                return 200, self.metrics_prometheus()
            if fmt != "json":
                raise BadRequest(f"unknown metrics format {fmt!r}; try json or prometheus")
            return 200, self.metrics_payload()
        if path == "/events":
            return 200, {"events": self.events.snapshot(newest=256)}
        if path == "/trace":
            return 200, {"traces": self.tracer.trace_ids()}
        if path.startswith("/trace/"):
            return self._handle_trace(path[len("/trace/"):],
                                      params.get("format", ["spans"])[0])
        if path.startswith("/jobs/"):
            return self._handle_job_get(path[len("/jobs/"):])
        return 404, {
            "error": f"no route {path!r}; try /jobs /healthz /metrics /events /trace"
        }

    def _handle_job_get(
        self, rest: str
    ) -> tuple[int, dict | _EventStream]:
        streaming = rest.endswith("/stream")
        if streaming:
            rest = rest[: -len("/stream")]
        try:
            job_id = int(rest)
        except ValueError:
            raise BadRequest(
                f"bad job id {rest!r}; expected an integer"
            ) from None
        stream = self.streams.get(job_id)
        if stream is None:
            return 404, {"error": f"unknown job {job_id}"}
        if streaming:
            return 200, _EventStream(stream)
        return 200, stream.status()

    def _handle_trace(self, trace_id: str, fmt: str) -> tuple[int, dict]:
        spans = self.tracer.spans(trace_id)
        if not spans:
            return 404, {"error": f"unknown trace {trace_id!r}"}
        if fmt == "chrome":
            return 200, export_chrome(spans, meta={"trace_id": trace_id})
        if fmt != "spans":
            raise BadRequest(f"unknown trace format {fmt!r}; try spans or chrome")
        return 200, export_spans(trace_id, spans)

    # -- endpoints ---------------------------------------------------------

    async def _handle_jobs(self, body: bytes) -> tuple[int, dict]:
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        jobs_spec = payload.get("jobs")
        if not isinstance(jobs_spec, list) or not jobs_spec:
            raise BadRequest('request needs a non-empty "jobs" array')
        if len(jobs_spec) > MAX_JOBS_PER_REQUEST:
            raise BadRequest(
                f"too many jobs in one request ({len(jobs_spec)} > {MAX_JOBS_PER_REQUEST})"
            )
        parsed = [
            _parse_job(entry, index, self.config.default_width)
            for index, entry in enumerate(jobs_spec)
        ]
        wait = payload.get("wait", True)
        if not isinstance(wait, bool):
            raise BadRequest(f'"wait" must be a boolean, got {wait!r}')
        self._request_seq += 1
        request_id = self._request_seq
        self.events.emit("request", seq=request_id, jobs=len(parsed))
        request_span = self.tracer.start(
            "serve.request",
            attributes={"request_id": request_id, "jobs": len(parsed)},
        )

        all_ok = True
        try:
            submitted: list[tuple[QueuedJob, bool]] = []
            for config, workload in parsed:
                coalesced = self.queue.is_live((config.name, workload))
                job = self.queue.submit(
                    config, workload, parent=request_span.context
                )
                self.streams.ensure(job.job_id, config.name, workload)
                submitted.append((job, coalesced))

            if not wait:
                # Async submit: hand back job ids + stream URLs now; the
                # futures' outcomes are observed via the streams, so
                # consume their exceptions to keep asyncio quiet.
                jobs_out = []
                for job, coalesced in submitted:
                    job.future.add_done_callback(_consume_exception)
                    jobs_out.append({
                        "machine": job.config.name,
                        "workload": job.workload,
                        "job_id": job.job_id,
                        "coalesced": coalesced,
                        "stream": f"/jobs/{job.job_id}/stream",
                    })
                return 200, {
                    "version": SERVE_VERSION,
                    "request_id": request_id,
                    "trace_id": request_span.trace_id,
                    "ok": True,
                    "jobs": jobs_out,
                }

            futures = [asyncio.shield(job.future) for job, _ in submitted]
            try:
                outcomes = await asyncio.wait_for(
                    asyncio.gather(*futures, return_exceptions=True),
                    timeout=self.config.request_timeout,
                )
            except asyncio.TimeoutError:
                outcomes = [
                    job.future.result() if job.future.done() and not job.future.exception()
                    else TimeoutError(
                        f"request exceeded the {self.config.request_timeout}s timeout"
                    )
                    for job, _ in submitted
                ]
            results = []
            for (job, coalesced), outcome in zip(submitted, outcomes):
                entry: dict = {
                    "machine": job.config.name,
                    "workload": job.workload,
                    "job_id": job.job_id,
                    "attempts": job.attempts,
                    "coalesced": coalesced,
                }
                if isinstance(outcome, BaseException):
                    all_ok = False
                    entry["ok"] = False
                    entry["error"] = repr(outcome)
                else:
                    entry["ok"] = True
                    entry["ipc"] = outcome.ipc
                    entry["stats"] = outcome.to_dict()
                results.append(entry)
        finally:
            self.tracer.end(request_span, ok=all_ok)
        response = {
            "version": SERVE_VERSION,
            "request_id": request_id,
            "trace_id": request_span.trace_id,
            "ok": all_ok,
            "results": results,
        }
        return 200, response

    def healthz_payload(self) -> dict:
        return {
            "status": self.dispatcher.status,
            "history": list(self.dispatcher.health_history),
            "queue_depth": self.queue.depth,
            "live_jobs": self.queue.live,
            "batches_dispatched": self.metrics.counter("serve.batches.dispatched").value,
        }

    def _refresh_gauges(self) -> None:
        """Point-in-time levels sampled at metrics render."""
        self.metrics.gauge("serve.queue.depth").set(self.queue.depth)
        self.metrics.gauge("events.buffered").set(len(self.bus.events))
        self.metrics.gauge("events.dropped").set(self.bus.dropped)
        self.metrics.gauge("trace.spans").set(len(self.tracer.spans()))

    def metrics_payload(self) -> dict:
        self._refresh_gauges()
        return {
            "service": self.metrics.as_dict(),
            "runner": self.runner.metrics.as_dict(),
        }

    def metrics_prometheus(self) -> str:
        self._refresh_gauges()
        return prometheus_text(
            {"service": self.metrics, "runner": self.runner.metrics}
        )


async def run_service(config: ServeConfig, announce=print) -> None:
    """Start a service and serve until cancelled (the CLI entry point)."""
    service = SimulationService(config)
    await service.start()
    announce(
        f"repro serve listening on http://{config.host}:{service.port} "
        f"(pool_jobs={config.pool_jobs}, shards={config.cache_shards}, "
        f"cache={service.runner.cache.path})"
    )
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.stop()
