"""Batch dispatch: process-pool execution, retries, and degradation.

The dispatcher drains batches from the :class:`~repro.serve.queue.JobQueue`
and pushes them through :meth:`SimulationRunner.run_jobs` on a worker
thread (the runner is synchronous; the event loop must stay free to
accept requests).  Failure policy, in order:

* a batch failure (worker crash, broken pool, batch timeout) is retried
  with exponential backoff, up to ``max_retries`` attempts — results
  that *did* complete before the failure were already merged into the
  result cache by the runner, so a retry only re-simulates the jobs that
  actually died;
* a failure while using the process pool marks the service **degraded**:
  subsequent batches run serially in-process (slower, but immune to
  worker death) until a successful serial batch earns a **probe** of the
  pool, and a successful pool batch marks the service recovered;
* a batch that exhausts its retries fails its jobs' futures — the
  service itself never dies with a batch.

Every dispatch, retry, and health transition is counted in the metrics
registry and emitted on the service event bus.
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterable

from repro.harness.runner import MatrixCancelled, SimulationRunner
from repro.obs.events import EventBus, EventKind, TraceEvent
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.serve.queue import JobQueue, QueuedJob

log = get_logger(__name__)

#: /healthz status strings.
HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"


class ServiceEvents:
    """Service-plane event emission onto a (optional) trace event bus.

    ``cycle`` carries a monotonic service tick and ``seq`` the batch or
    request id, so the existing bus, sinks, and sort order apply
    unchanged; :meth:`snapshot` serves the ``/events`` endpoint.
    """

    def __init__(self, bus: EventBus | None = None) -> None:
        self.bus = bus
        self._tick = 0

    def emit(self, text: str, seq: int = 0, **args: object) -> None:
        if self.bus is None:
            return
        self._tick += 1
        self.bus.emit(TraceEvent(
            cycle=self._tick, kind=EventKind.SERVICE, seq=seq,
            text=text, args=dict(args) if args else None,
        ))

    def snapshot(self, newest: int | None = None) -> list[dict]:
        if self.bus is None:
            return []
        events = sorted(self.bus.events, key=TraceEvent.sort_key)
        if newest is not None:
            events = events[-newest:]
        return [event.to_dict() for event in events]


class BatchDispatcher:
    """Owns batch execution, retry policy, and pool-health state."""

    def __init__(
        self,
        runner: SimulationRunner,
        queue: JobQueue,
        metrics: MetricsRegistry | None = None,
        events: ServiceEvents | None = None,
        tracer: Tracer | None = None,
        *,
        pool_jobs: int = 2,
        max_batch: int = 8,
        batch_window: float = 0.05,
        job_timeout: float = 300.0,
        max_retries: int = 3,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        self.runner = runner
        self.queue = queue
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else ServiceEvents()
        self.tracer = tracer
        self.pool_jobs = pool_jobs
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

        self.healthy = True
        self._probe_pool = False
        #: health transition history, newest last (starts "ok")
        self.health_history: list[str] = [HEALTH_OK]
        #: per-job lifecycle observer ``(job, event, **data)`` — the live
        #: streaming hook (events: dispatch / retry / done / failed; plus
        #: "row" with each timeline row, called from the worker thread).
        #: Listener errors are logged, never allowed to kill a batch.
        self.job_listener = None

        self._dispatched = self.metrics.counter("serve.batches.dispatched")
        self._batch_retries = self.metrics.counter("serve.batches.retried")
        self._batch_failures = self.metrics.counter("serve.batches.failed")
        self._retries = self.metrics.counter("serve.retries")
        self._degraded_batches = self.metrics.counter("serve.batches.degraded")
        self._degradations = self.metrics.counter("serve.health.degradations")
        self._recoveries = self.metrics.counter("serve.health.recoveries")
        self._batch_seq = 0

    @property
    def status(self) -> str:
        return HEALTH_OK if self.healthy else HEALTH_DEGRADED

    # -- health ------------------------------------------------------------

    def _record_health(self, healthy: bool) -> None:
        if healthy == self.healthy:
            return
        self.healthy = healthy
        status = self.status
        self.health_history.append(status)
        if healthy:
            self._recoveries.inc()
        else:
            self._degradations.inc()
        self.events.emit(f"health:{status}")
        log.warning("service health -> %s", status)

    # -- the dispatch loop -------------------------------------------------

    async def run(self) -> None:
        """Drain and dispatch batches until cancelled."""
        while True:
            batch = await self.queue.next_batch(self.max_batch, self.batch_window)
            if batch:
                await self.dispatch(batch)

    def backoff(self, attempt: int) -> float:
        """Exponential backoff delay before retry ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))

    def _notify(self, job: QueuedJob, event: str, **data: object) -> None:
        listener = self.job_listener
        if listener is None:
            return
        try:
            listener(job, event, **data)
        except Exception as exc:
            log.error("job listener failed on %s: %r", event, exc)

    def _row_sink(self, job: QueuedJob):
        """A per-job timeline-row callback, or None without a listener.

        Only the runner's *serial* path invokes it (callables cannot
        cross the process-pool boundary); it fires on the dispatcher's
        worker thread, so listeners must be thread-safe.
        """
        listener = self.job_listener
        if listener is None:
            return None

        def sink(row, _job=job):
            try:
                listener(_job, "row", row=row.to_dict())
            except Exception as exc:  # never let streaming kill a run
                log.error("row listener failed: %r", exc)

        return sink

    async def dispatch(self, batch: list[QueuedJob]) -> None:
        """Execute one batch to completion (or exhaustion of retries)."""
        self._batch_seq += 1
        batch_id = self._batch_seq
        self._dispatched.inc()
        self.events.emit(
            "batch:dispatch", seq=batch_id,
            jobs=len(batch), keys=[f"{m}::{w}" for m, w in (j.key for j in batch)],
        )
        attempt = 0
        last_error: BaseException | None = None
        while True:
            attempt += 1
            use_pool = self.pool_jobs > 1 and (self.healthy or self._probe_pool)
            if not use_pool:
                self._degraded_batches.inc()
            for job in batch:
                job.attempts = attempt
            mode = "pool" if use_pool else "serial"
            # One "serve.dispatch" span per job per attempt; its context
            # rides the SimJob across the pool boundary so the worker's
            # "pool.worker" span parents to this attempt specifically.
            dispatch_spans: list[Span] = []
            sim_jobs = []
            for job in batch:
                trace_ctx = None
                if self.tracer is not None and job.job_span is not None:
                    span = self.tracer.start(
                        "serve.dispatch", parent=job.job_span.context,
                        attributes={"batch": batch_id, "attempt": attempt,
                                    "mode": mode},
                    )
                    dispatch_spans.append(span)
                    trace_ctx = span.context
                self._notify(
                    job, "dispatch", batch=batch_id, attempt=attempt, mode=mode
                )
                sim_jobs.append(
                    job.sim_job(trace=trace_ctx, row_sink=self._row_sink(job))
                )
            try:
                results = await asyncio.to_thread(self._execute, sim_jobs, use_pool)
            except MatrixCancelled as exc:
                self._end_dispatch_spans(dispatch_spans, ok=False, error=repr(exc))
                for job in batch:
                    self._notify(job, "failed", error=repr(exc))
                    self.queue.fail(job, exc)
                return
            except Exception as exc:
                self._end_dispatch_spans(dispatch_spans, ok=False, error=repr(exc))
                last_error = exc
                if use_pool:
                    self._record_health(False)
                    self._probe_pool = False
                if attempt > self.max_retries:
                    self._batch_failures.inc()
                    self.events.emit(
                        "batch:failed", seq=batch_id,
                        attempts=attempt, error=repr(exc),
                    )
                    log.error("batch %d failed after %d attempts: %r",
                              batch_id, attempt, exc)
                    for job in batch:
                        self._notify(job, "failed", error=repr(exc))
                        self.queue.fail(job, exc)
                    return
                self._retries.inc()
                self._batch_retries.inc()
                delay = self.backoff(attempt)
                for job in batch:
                    self._notify(
                        job, "retry", attempt=attempt, delay=delay,
                        error=repr(exc),
                    )
                self.events.emit(
                    "batch:retry", seq=batch_id,
                    attempt=attempt, delay=delay, mode="pool" if use_pool else "serial",
                    error=repr(exc),
                )
                log.warning(
                    "batch %d attempt %d failed (%r); retrying in %.2fs (%s)",
                    batch_id, attempt, exc, delay,
                    "serial" if not self.healthy else "pool",
                )
                await asyncio.sleep(delay)
                continue
            # Success.
            self._end_dispatch_spans(dispatch_spans, ok=True)
            if use_pool:
                self._record_health(True)
                self._probe_pool = False
            elif not self.healthy:
                # A clean serial batch earns one probe of the pool.
                self._probe_pool = True
            self.events.emit(
                "batch:done", seq=batch_id, attempts=attempt, mode=mode,
            )
            for job in batch:
                self._notify(job, "done", stats=results[job.key])
                self.queue.resolve(job, results[job.key])
            return

    def _end_dispatch_spans(self, spans: list[Span], **attributes: object) -> None:
        if self.tracer is None:
            return
        for span in spans:
            self.tracer.end(span, **attributes)

    def _execute(self, sim_jobs: Iterable, use_pool: bool):
        """Synchronous batch execution — runs on a worker thread."""
        if use_pool:
            # The dispatcher owns the pool-vs-serial decision (it has its
            # own health degradation); don't let the runner second-guess
            # it on narrow hosts.
            return self.runner.run_jobs(
                list(sim_jobs), jobs=self.pool_jobs, timeout=self.job_timeout,
                force_pool=True,
            )
        return self.runner.run_jobs(list(sim_jobs), jobs=None)
