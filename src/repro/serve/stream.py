"""Per-job live event streams behind ``GET /jobs/<id>/stream``.

Each submitted job gets a :class:`JobStream`: a bounded, append-only
buffer of JSON-ready events (timeline rows from the simulator, dispatch
lifecycle from the batch dispatcher) plus an asyncio wakeup for
subscribers.  A subscriber that connects mid-run replays the buffer and
then follows live events until the job finishes; one that connects after
completion replays the whole history and sees the terminal event
immediately — the endpoint never blocks on a job that is already done.

Publishing is thread-safe: simulator row callbacks fire on the
dispatcher's worker thread, so every mutation is marshalled onto the
service event loop with ``call_soon_threadsafe``.  Because the loop runs
callbacks in FIFO order, rows enqueued during a batch are guaranteed to
land in the buffer before the batch's completion callback resumes the
dispatcher — the ``done`` event can therefore trust ``rows_streamed``
and replay only the timeline rows that never streamed live (pool-mode
and cache-hit jobs stream nothing until completion).
"""

from __future__ import annotations

import asyncio
from collections import deque

#: Upper bound on buffered events per stream; further events are counted
#: in ``JobStream.dropped`` instead of buffered (a default-stride run is
#: well under a hundred rows, so this only guards pathological configs).
MAX_EVENTS = 8192

#: Finished streams kept for late subscribers before eviction.
MAX_FINISHED = 128


class JobStream:
    """One job's buffered event history + live wakeup."""

    __slots__ = (
        "job_id", "machine", "workload", "events", "done", "ok",
        "rows_streamed", "dropped", "wake",
    )

    def __init__(self, job_id: int, machine: str, workload: str) -> None:
        self.job_id = job_id
        self.machine = machine
        self.workload = workload
        self.events: list[dict] = []
        self.done = False
        #: terminal outcome; None until the job finishes
        self.ok: bool | None = None
        #: "row" events buffered so far (the replay-at-done watermark)
        self.rows_streamed = 0
        self.dropped = 0
        self.wake = asyncio.Event()

    def status(self) -> dict:
        """The ``GET /jobs/<id>`` payload."""
        return {
            "job_id": self.job_id,
            "machine": self.machine,
            "workload": self.workload,
            "done": self.done,
            "ok": self.ok,
            "events_buffered": len(self.events),
            "rows_streamed": self.rows_streamed,
            "events_dropped": self.dropped,
        }

    def _append(self, event: str, data: dict) -> None:
        if len(self.events) >= MAX_EVENTS:
            self.dropped += 1
        else:
            entry = {"event": event, "seq": len(self.events)}
            entry.update(data)
            self.events.append(entry)
            if event == "row":
                self.rows_streamed += 1
        self.wake.set()

    async def follow(self, heartbeat: float = 15.0):
        """Replay buffered events, then yield live ones until the job ends.

        Yields each buffered event dict in order; yields ``None`` as a
        heartbeat marker when ``heartbeat`` seconds pass without a new
        event (the SSE writer turns it into a comment line, keeping the
        connection visibly alive).  Returns once every event up to and
        including the terminal one has been yielded.
        """
        index = 0
        while True:
            while index < len(self.events):
                yield self.events[index]
                index += 1
            if self.done:
                return
            self.wake.clear()
            # Re-check after clearing: a publish between the drain above
            # and the clear must not be slept through.
            if index < len(self.events) or self.done:
                continue
            try:
                await asyncio.wait_for(self.wake.wait(), heartbeat)
            except asyncio.TimeoutError:
                yield None


class JobStreams:
    """The service's stream table: open, publish, finish, evict."""

    def __init__(self, max_finished: int = MAX_FINISHED) -> None:
        self._streams: dict[int, JobStream] = {}
        self._finished: deque[int] = deque()
        self.max_finished = max_finished
        self._loop: asyncio.AbstractEventLoop | None = None

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Remember the service loop; publishers may be on other threads."""
        self._loop = loop

    def ensure(self, job_id: int, machine: str, workload: str) -> JobStream:
        """The stream for ``job_id``, created on first use.

        Idempotent, so coalesced duplicate submissions share the live
        job's stream.
        """
        stream = self._streams.get(job_id)
        if stream is None:
            stream = self._streams[job_id] = JobStream(job_id, machine, workload)
        return stream

    def get(self, job_id: int) -> JobStream | None:
        return self._streams.get(job_id)

    def __len__(self) -> int:
        return len(self._streams)

    # -- publishing (any thread) -------------------------------------------

    def _submit(self, callback, *args) -> None:
        # call_soon_threadsafe is safe from the loop thread too, and it
        # serializes every mutation onto the loop in FIFO order — which
        # is what lets finish() trust the rows_streamed watermark.
        if self._loop is None or self._loop.is_closed():
            callback(*args)
            return
        self._loop.call_soon_threadsafe(callback, *args)

    def publish(self, job_id: int, event: str, **data: object) -> None:
        """Append one event to a job's stream (no-op for unknown jobs)."""
        self._submit(self._do_publish, job_id, event, data)

    def _do_publish(self, job_id: int, event: str, data: dict) -> None:
        stream = self._streams.get(job_id)
        if stream is not None and not stream.done:
            stream._append(event, data)

    def finish(
        self,
        job_id: int,
        ok: bool,
        summary: dict,
        rows: list[dict] | None = None,
    ) -> None:
        """Terminate a stream: replay unstreamed rows, emit the terminal event.

        ``rows`` is the job's complete timeline (serialized rows); any
        suffix beyond the live-streamed watermark is replayed so pool-mode
        and cache-hit jobs still deliver their timeline.  If mid-run
        decimation shrank the row list below the watermark, the live rows
        the client already holds are *finer-grained* than the final list,
        so nothing is replayed.
        """
        self._submit(self._do_finish, job_id, ok, summary, rows)

    def _do_finish(
        self, job_id: int, ok: bool, summary: dict, rows: list[dict] | None
    ) -> None:
        stream = self._streams.get(job_id)
        if stream is None or stream.done:
            return
        if rows is not None and len(rows) >= stream.rows_streamed:
            for row in rows[stream.rows_streamed:]:
                stream._append("row", {"row": row})
        data = dict(summary)
        if stream.dropped:
            data["events_dropped"] = stream.dropped
        stream._append("done" if ok else "failed", data)
        stream.done = True
        stream.ok = ok
        stream.wake.set()
        self._finished.append(job_id)
        while len(self._finished) > self.max_finished:
            evicted = self._finished.popleft()
            self._streams.pop(evicted, None)
