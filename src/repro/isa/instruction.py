"""The decoded instruction record shared by the interpreter and simulator."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.isa.opcodes import Opcode, OpSpec, spec_of

#: Architectural register count; register 31 always reads as zero (Alpha style).
NUM_REGS = 32
ZERO_REG = 31
RETURN_ADDRESS_REG = 26
STACK_POINTER_REG = 30


@dataclass(frozen=True)
class Operand:
    """A source operand: either a register or an immediate."""

    reg: int | None = None
    imm: int | None = None

    def __post_init__(self) -> None:
        if (self.reg is None) == (self.imm is None):
            raise ValueError("operand must be exactly one of register or immediate")
        if self.reg is not None and not 0 <= self.reg < NUM_REGS:
            raise ValueError(f"register r{self.reg} out of range")

    @property
    def is_reg(self) -> bool:
        return self.reg is not None

    def __repr__(self) -> str:
        return f"r{self.reg}" if self.is_reg else f"#{self.imm}"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction at a fixed text address.

    ``sources`` lists the register operands in the order of the opcode's
    ``operand_formats`` spec (so the timing model can pair each source with
    its format requirement).  The hardwired zero register is kept in the
    list for semantics but produces no dependence in the timing model.
    For conditional moves, the destination appears as the trailing source
    (old-value semantics).
    """

    address: int
    opcode: Opcode
    dest: int | None = None
    sources: tuple[Operand, ...] = ()
    imm: int | None = None          # displacement for MEM syntax
    target: int | None = None       # resolved branch/call target address
    text: str = ""                  # original assembly, for diagnostics

    # cached_property writes to the instance __dict__ directly, which a
    # frozen dataclass permits — instructions are immutable and decoded
    # once per program, but their spec is consulted on every dynamic use.
    @cached_property
    def spec(self) -> OpSpec:
        return spec_of(self.opcode)

    def source_regs(self) -> tuple[int, ...]:
        """Register numbers of all register sources (zero register included)."""
        return tuple(op.reg for op in self.sources if op.is_reg)

    def __repr__(self) -> str:
        body = self.text or self.opcode.value
        return f"[{self.address:#x}] {body}"
