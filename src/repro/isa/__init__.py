"""A mini Alpha-like 64-bit integer ISA (paper §3.6, Table 1).

This is the workload substrate: the paper runs SPECint on the Alpha ISA;
we define an Alpha-*like* instruction set with the same fixed-point
instruction classes, operand formats, and redundant-binary capability
split (which operations can consume/produce redundant binary values), a
two-pass assembler for writing benchmark kernels, and an architectural
interpreter used both standalone and as the functional core of the timing
simulator.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.classify import FormatClass, TABLE1_ROWS, classify, instruction_mix
from repro.isa.instruction import Instruction, Operand
from repro.isa.opcodes import (
    LatencyClass,
    Opcode,
    OperandFormat,
    OpSpec,
    ResultFormat,
    spec_of,
)
from repro.isa.program import DATA_BASE, STACK_TOP, TEXT_BASE, Program
from repro.isa.semantics import ArchState, ExecResult, run_program

__all__ = [
    "Opcode",
    "OpSpec",
    "LatencyClass",
    "OperandFormat",
    "ResultFormat",
    "spec_of",
    "Instruction",
    "Operand",
    "assemble",
    "AssemblyError",
    "Program",
    "TEXT_BASE",
    "DATA_BASE",
    "STACK_TOP",
    "ArchState",
    "ExecResult",
    "run_program",
    "FormatClass",
    "TABLE1_ROWS",
    "classify",
    "instruction_mix",
]
