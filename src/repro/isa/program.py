"""The assembled program container: text, data, and symbols."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction

#: Layout constants.  Instructions are 4 bytes apart (Alpha-style), text and
#: data live in disjoint regions, and the stack grows down from STACK_TOP.
TEXT_BASE = 0x1_0000
DATA_BASE = 0x40_0000
STACK_TOP = 0x7F_F000
INSTRUCTION_BYTES = 4


@dataclass
class Program:
    """An assembled program ready to run or simulate."""

    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)
    data: bytes = b""
    data_base: int = DATA_BASE
    entry: int = TEXT_BASE
    name: str = "program"

    def __post_init__(self) -> None:
        self._by_address = {instr.address: instr for instr in self.instructions}

    def at(self, address: int) -> Instruction | None:
        """The instruction at ``address``, or None if outside the text."""
        return self._by_address.get(address)

    @property
    def text_end(self) -> int:
        """First address past the text section."""
        if not self.instructions:
            return TEXT_BASE
        return self.instructions[-1].address + INSTRUCTION_BYTES

    def label_address(self, label: str) -> int:
        """Resolve a label to its address."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"no label {label!r} in program {self.name!r}") from None

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.instructions)} instructions, "
            f"{len(self.data)} data bytes)"
        )
